//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this reproduction is fully offline, so the real
//! `proptest` cannot be fetched. This shim implements the subset of its API the
//! workspace's property tests use — the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, ranges / tuples / [`Just`] / [`prop_oneof!`] / `collection::vec` /
//! `any::<T>()` as strategies, `prop_assert!` / `prop_assert_eq!`, and
//! `ProptestConfig { cases }` — as plain random sampling.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its generated inputs verbatim;
//! * **deterministic seeding** — every test function draws from the same fixed
//!   seed, so CI failures reproduce locally (`PROPTEST_CASES` overrides the case
//!   count for quick local runs);
//! * value streams do not match the real proptest's.

#![warn(missing_docs)]

/// Test-case plumbing: the failure type the `prop_assert*` macros return and the
/// deterministic RNG behind every strategy.
pub mod test_runner {
    use std::fmt;

    /// Why a single generated case failed.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion / rejected case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 stream feeding every strategy.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed RNG used by the [`proptest!`](crate::proptest) macro.
        pub fn deterministic() -> Self {
            Self {
                state: 0x5EED_CAFE_F00D_D00D,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Per-run configuration (only the `cases` knob is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to generate per test.
        pub cases: u32,
        /// Accepted for API compatibility with the real crate; this shim never
        /// shrinks, so the value is ignored.
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }

        /// The case count, honouring a `PROPTEST_CASES` environment override.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
                .max(1)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (the real crate's `prop_map`).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy so heterogeneous strategies can share a
        /// container (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// The `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A weighted choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs a positive weight"
            );
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut roll = rng.below(total);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if roll < weight {
                    return arm.new_value(rng);
                }
                roll -= weight;
            }
            unreachable!("weighted draw out of bounds")
        }
    }

    /// Full-range strategy behind [`any`](crate::arbitrary::any).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct FullRange<T> {
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! impl_full_range {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for FullRange<bool> {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use crate::strategy::FullRange;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// That canonical strategy.
        type Strategy;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;

                fn arbitrary() -> Self::Strategy {
                    FullRange::default()
                }
            }
        )*};
    }

    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// The canonical strategy for `T` (the real crate's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` module alias the real prelude exposes.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a property, failing the case (not the process)
/// when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property, failing the case with both values when
/// they differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` becomes
/// a `#[test]` that runs `body` over `cases` random draws of its arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.effective_cases();
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: $crate::test_runner::TestCaseResult =
                        (move || -> $crate::test_runner::TestCaseResult {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property failed at case {}/{}: {}\n  inputs: {}",
                            case + 1,
                            cases,
                            err,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in 5u8..9) {
            prop_assert!(x < 100);
            prop_assert!((5..9).contains(&y));
        }

        #[test]
        fn mapped_and_union_strategies_compose(
            v in crate::collection::vec(prop_oneof![2 => (0u64..10).prop_map(|n| n * 2), 1 => Just(99u64)], 1..50)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for item in &v {
                prop_assert!(*item == 99 || (*item % 2 == 0 && *item < 20), "unexpected {item}");
            }
        }

        #[test]
        fn tuples_and_any_work(pair in ((0u64..4), any::<u64>())) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.0, pair.0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
