//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this reproduction is fully offline, so the real
//! `rand` crate cannot be fetched. This shim implements exactly the API surface
//! the workspace uses — `SmallRng` + `SeedableRng::seed_from_u64`, `thread_rng`,
//! and the `Rng` methods `gen_range`/`gen_bool` — on top of a SplitMix64-seeded
//! xoshiro256++ generator. It is **not** cryptographically secure and makes no
//! attempt to match the real crate's value streams; the workspace only needs
//! deterministic, well-mixed uniform draws.

#![warn(missing_docs)]

use std::ops::Range;

/// Uniformly samplable primitive types (the subset of `rand`'s `SampleUniform`
/// this workspace needs).
pub trait SampleUniform: Copy {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Multiply-shift rejection-free mapping (Lemire); the tiny modulo
                // bias is irrelevant for workload generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a 64-bit seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Small, fast PRNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small state, fast, high-quality for simulation workloads.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            // SplitMix64 expansion, as the xoshiro authors recommend for seeding.
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// A per-call generator seeded from ambient entropy (time + a process-wide
/// counter), standing in for `rand::thread_rng()`.
pub fn thread_rng() -> rngs::SmallRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let unique = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    rngs::SmallRng::seed_from_u64(nanos ^ unique)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(0..100);
            assert!(v < 100);
            let w = rng.gen_range(10u64..20);
            assert!((10..20).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn thread_rng_produces_varied_values() {
        let mut rng = super::thread_rng();
        let a = rng.gen_range(0u64..u64::MAX);
        let b = rng.gen_range(0u64..u64::MAX);
        assert_ne!(a, b);
    }
}
