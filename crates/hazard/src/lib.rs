//! # hazard — classic hazard pointers
//!
//! The HP baseline of the QSense paper: Michael's hazard-pointer scheme
//! (*Hazard pointers: Safe memory reclamation for lock-free objects*, IEEE TPDS 2004)
//! exactly as the paper describes it in §3.2, **including the per-node memory fence**
//! between publishing a hazard pointer and re-validating the protected node
//! (Algorithm 1, line 3). That fence is the cost the whole paper is about: it is paid
//! once per node *traversed*, which is why HP loses up to 75–80% of throughput on
//! read-heavy traversal workloads and why Cadence/QSense exist.
//!
//! Layout: every registered thread owns `K` single-writer multi-reader hazard-pointer
//! slots in a shared [`Registry`]. Retired nodes accumulate in a thread-local
//! segment-chain bag ([`reclaim_core::SegBag`]); every `R` retirements the owner
//! runs [`scan`](HazardHandle::flush),
//! which snapshots all `N·K` hazard pointers and frees every retired node not present
//! in the snapshot (Michael's wait-free scan).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod scheme;

pub use scheme::{Hazard, HazardHandle};

#[cfg(test)]
// Sanctioned raw-protocol site: these tests exercise the scheme's own
// `protect`/retire interface below the guard layer.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use reclaim_core::{retire_box, Smr, SmrConfig, SmrHandle};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>) -> *mut Tracked {
        Box::into_raw(Box::new(Tracked(Arc::clone(drops))))
    }

    #[test]
    fn unprotected_nodes_are_freed_by_scan() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Hazard::new(SmrConfig::default().with_scan_threshold(4));
        let mut handle = scheme.register();
        for _ in 0..8 {
            handle.begin_op();
            let ptr = tracked(&drops);
            // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
            unsafe { retire_box(&mut handle, ptr) };
            handle.end_op();
        }
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 8);
        let snap = scheme.stats();
        assert_eq!(snap.retired, 8);
        assert_eq!(snap.freed, 8);
        assert!(snap.scans >= 1);
    }

    #[test]
    fn protected_node_survives_scan_until_cleared() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Hazard::new(SmrConfig::default().with_hp_per_thread(2));
        let mut owner = scheme.register();
        let mut reader = scheme.register();

        let ptr = tracked(&drops);
        reader.begin_op();
        reader.protect(0, ptr.cast());

        owner.begin_op();
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box(&mut owner, ptr) };
        owner.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "node protected by another thread's hazard pointer must not be freed"
        );
        assert_eq!(owner.local_in_limbo(), 1);

        reader.clear_protections();
        reader.end_op();
        owner.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(owner.local_in_limbo(), 0);
    }

    #[test]
    fn own_protection_does_not_block_own_reclamation_of_other_nodes() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Hazard::new(SmrConfig::default());
        let mut handle = scheme.register();
        let protected = tracked(&drops);
        handle.protect(0, protected.cast());
        let unprotected = tracked(&drops);
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box(&mut handle, unprotected) };
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // Clean up the still-live protected node: retire it too.
        handle.clear_protections();
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box(&mut handle, protected) };
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn scan_threshold_triggers_automatic_scans() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Hazard::new(SmrConfig::default().with_scan_threshold(10));
        let mut handle = scheme.register();
        for _ in 0..9 {
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "below threshold: no scan yet"
        );
        // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
        unsafe { retire_box(&mut handle, tracked(&drops)) };
        assert_eq!(
            drops.load(Ordering::SeqCst),
            10,
            "threshold reached: scan runs"
        );
    }

    #[test]
    fn handle_drop_parks_protected_leftovers_and_scheme_drop_frees_them() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Hazard::new(SmrConfig::default());
        let mut blocker = scheme.register();
        let ptr = tracked(&drops);
        blocker.protect(0, ptr.cast());
        {
            let mut owner = scheme.register();
            // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
            unsafe { retire_box(&mut owner, ptr) };
            // owner drops here while the node is still protected by `blocker`.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(blocker);
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn traversal_fences_are_counted() {
        let scheme = Hazard::new(SmrConfig::default());
        let mut handle = scheme.register();
        for i in 0..100 {
            handle.protect(0, (0x1000 + i) as *mut u8);
        }
        handle.flush();
        assert_eq!(scheme.stats().traversal_fences, 100);
    }

    #[test]
    fn protect_out_of_range_panics() {
        let scheme = Hazard::new(SmrConfig::default().with_hp_per_thread(2));
        let mut handle = scheme.register();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle.protect(2, 0x1000 as *mut u8);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn registration_beyond_capacity_panics() {
        let scheme = Hazard::new(SmrConfig::default().with_max_threads(1));
        let _h = scheme.register();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = scheme.register();
        }));
        assert!(result.is_err());
    }

    #[test]
    fn concurrent_retire_and_protect_stress() {
        // A lightweight cross-thread stress: one shared "slot" of published nodes;
        // readers protect and validate, a writer swaps nodes out and retires them.
        use std::sync::atomic::AtomicPtr;
        let drops = Arc::new(AtomicUsize::new(0));
        let allocated = Arc::new(AtomicUsize::new(0));
        let scheme = Hazard::new(
            SmrConfig::default()
                .with_max_threads(4)
                .with_scan_threshold(16),
        );
        let slot: Arc<AtomicPtr<Tracked>> = Arc::new(AtomicPtr::new(std::ptr::null_mut()));

        let writer = {
            let scheme = Arc::clone(&scheme);
            let slot = Arc::clone(&slot);
            let drops = Arc::clone(&drops);
            let allocated = Arc::clone(&allocated);
            thread::spawn(move || {
                let mut handle = scheme.register();
                for _ in 0..2000 {
                    let fresh = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
                    allocated.fetch_add(1, Ordering::SeqCst);
                    let old = slot.swap(fresh, Ordering::AcqRel);
                    if !old.is_null() {
                        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
                        unsafe { retire_box(&mut handle, old) };
                    }
                }
                // Unpublish the final node and retire it as well.
                let last = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
                if !last.is_null() {
                    // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
                    unsafe { retire_box(&mut handle, last) };
                }
                handle.flush();
            })
        };

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let scheme = Arc::clone(&scheme);
                let slot = Arc::clone(&slot);
                thread::spawn(move || {
                    let mut handle = scheme.register();
                    let mut observed = 0usize;
                    for _ in 0..2000 {
                        handle.begin_op();
                        loop {
                            let p = slot.load(Ordering::Acquire);
                            if p.is_null() {
                                break;
                            }
                            handle.protect(0, p.cast());
                            // Validate: still published after the fence?
                            if slot.load(Ordering::Acquire) == p {
                                // SAFETY: the pointer is hazard-protected (slot 0) and revalidated still published.
                                let tracked = unsafe { &*p };
                                observed += Arc::strong_count(&tracked.0).min(1);
                                break;
                            }
                        }
                        handle.clear_protections();
                        handle.end_op();
                    }
                    observed
                })
            })
            .collect();

        writer.join().unwrap();
        for r in readers {
            let _ = r.join().unwrap();
        }
        drop(scheme);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            allocated.load(Ordering::SeqCst),
            "every allocated node must be freed exactly once after scheme drop"
        );
    }
}
