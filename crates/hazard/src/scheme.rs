//! The hazard-pointer scheme object and per-thread handle.

use reclaim_core::retired::DropFn;
use reclaim_core::stats::{StatStripe, StatsSnapshot};
use reclaim_core::{
    BudgetGovernor, BudgetVerdict, CachePadded, CapacityExhausted, Era, HandleCache,
    HandleTelemetry, ParkedChain, PtrScratch, Registry, RetiredPtr, ScanParts, SegBag, SegPool,
    SlotId, Smr, SmrConfig, SmrHandle, Telemetry, NO_BIRTH_ERA,
};
use std::sync::atomic::{fence, AtomicPtr, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-thread shared record: `K` single-writer multi-reader hazard-pointer slots.
pub(crate) struct HpRecord {
    slots: Box<[AtomicPtr<u8>]>,
}

impl HpRecord {
    fn new(k: usize) -> Self {
        Self {
            slots: (0..k)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    #[inline]
    fn set(&self, index: usize, ptr: *mut u8) {
        self.slots[index].store(ptr, Ordering::Release);
    }

    fn clear_all(&self) {
        for slot in self.slots.iter() {
            slot.store(std::ptr::null_mut(), Ordering::Release);
        }
    }

    fn collect_into(&self, out: &mut Vec<*mut u8>) {
        for slot in self.slots.iter() {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                out.push(p);
            }
        }
    }
}

/// Classic hazard-pointer scheme (the paper's **HP** baseline).
pub struct Hazard {
    config: SmrConfig,
    registry: Registry<HpRecord>,
    /// Counter stripe for events with no owning slot (parked-bag frees at drop).
    scheme_stats: CachePadded<StatStripe>,
    /// Retired nodes left over by exiting threads that were still protected at
    /// exit: dying handles park, the next surviving handle to flush adopts, and
    /// scheme drop drains the remainder (see [`ParkedChain`]).
    parked: ParkedChain,
    /// Pools + scratch buffers of exited threads, adopted by the next
    /// registrant so handle churn is allocation-free after the first wave.
    handle_cache: HandleCache<ScanParts>,
    /// Limbo-byte accounting and (when `config.limbo_budget` is set) the
    /// escalation ladder: HP scans are hazard-gated and therefore safe at any
    /// point of the retire path, so a breach forces an immediate scan.
    governor: BudgetGovernor,
    /// Telemetry histograms (op latency, scan duration, retire→free delay).
    telemetry: Arc<Telemetry>,
}

impl Hazard {
    /// Creates a hazard-pointer scheme with the given configuration.
    pub fn new(config: SmrConfig) -> Arc<Self> {
        let registry = Registry::new(config.max_threads, |_| HpRecord::new(config.hp_per_thread));
        let handle_cache = HandleCache::with_capacity(config.max_threads);
        let governor = BudgetGovernor::new(config.limbo_budget, config.clock.clone());
        let telemetry = Arc::new(Telemetry::from_config(&config));
        Arc::new(Self {
            config,
            registry,
            scheme_stats: CachePadded::new(StatStripe::new()),
            parked: ParkedChain::new(),
            handle_cache,
            governor,
            telemetry,
        })
    }

    /// Creates a hazard-pointer scheme with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SmrConfig::default())
    }

    /// The configuration this scheme was created with.
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }

    /// Snapshots every currently published hazard pointer into `out` — the
    /// `get_protected_nodes` step of the paper's Algorithm 3 / Michael's scan
    /// stage 1. Callers pass a reusable scratch buffer sized at registration
    /// (`N·K` entries, the maximum possible), so steady-state scans never allocate.
    fn collect_protected(&self, out: &mut Vec<*mut u8>) {
        self.registry.collect_protected(out, HpRecord::collect_into);
    }

    /// Scans `bag` against the hazard pointers gathered into `scratch`, freeing
    /// every node not covered. Returns the number of nodes freed. The counters go
    /// to `stats` (the calling handle's stripe); drained segments return to `pool`.
    fn scan_into(
        &self,
        bag: &mut SegBag,
        pool: &mut SegPool,
        scratch: &mut Vec<*mut u8>,
        stats: &StatStripe,
        tele_stripe: usize,
    ) -> usize {
        stats.add_scan();
        // Every HP scan is a per-node walk against the hazard snapshot.
        stats.add_scan_walk();
        self.collect_protected(scratch);
        let protected: &[*mut u8] = scratch;
        let bytes_before = bag.bytes();
        let observer = self.telemetry.scan_observer(tele_stripe);
        // SAFETY: a node absent from the full hazard-pointer snapshot and already
        // unlinked (guaranteed by the retire contract) is unreachable by any thread:
        // Michael's scan argument. The snapshot is taken *after* the node was
        // retired, so any hazard pointer published before the node became unreachable
        // is visible to this scan (the publisher's fence in `protect` pairs with the
        // acquire loads in `collect_protected`).
        let freed = unsafe {
            bag.reclaim_if(pool, |node| {
                let free = protected.binary_search(&node.addr()).is_err();
                if free {
                    if let Some(obs) = observer.as_ref() {
                        obs.note_free(node);
                    }
                }
                free
            })
        };
        stats.add_freed(freed as u64);
        stats.add_freed_bytes((bytes_before - bag.bytes()) as u64);
        if let Some(obs) = observer {
            obs.finish();
        }
        freed
    }

    /// One-off allocating snapshot, for tests and diagnostics only.
    #[cfg(test)]
    fn protected_snapshot(&self) -> Vec<*mut u8> {
        let mut out = Vec::new();
        self.collect_protected(&mut out);
        out
    }
}

impl Smr for Hazard {
    type Handle = HazardHandle;

    fn try_register(self: &Arc<Self>) -> Result<HazardHandle, CapacityExhausted> {
        let slot = self.registry.try_acquire().map_err(|e| CapacityExhausted {
            scheme: "hp",
            capacity: e.capacity,
        })?;
        // Adopt a previous tenant's pool + scratch when available (thread-pool
        // churn); otherwise pre-warm for the scan threshold (capped: a
        // test-sized huge `R` must not balloon registration) so even the first
        // bag fill recycles instead of allocating.
        let parts = self.handle_cache.adopt().unwrap_or_else(|| ScanParts {
            pool: SegPool::with_node_capacity((self.config.scan_threshold + 1).min(2048)),
            scratch: PtrScratch::with_capacity(self.config.max_threads * self.config.hp_per_thread),
        });
        Ok(HazardHandle {
            budget_stripe: BudgetGovernor::stripe_for(slot.shard()),
            budget_reported: 0,
            tele: HandleTelemetry::attach(&self.telemetry),
            scheme: Arc::clone(self),
            slot,
            retired: SegBag::new(),
            pool: parts.pool,
            scratch: parts.scratch,
            since_last_scan: 0,
            local_fences: 0,
        })
    }

    fn name(&self) -> &'static str {
        "hp"
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        self.registry.merge_stats(&mut snap);
        self.scheme_stats.merge_into(&mut snap);
        snap.peak_limbo_bytes = self.governor.peak_bytes();
        snap
    }

    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Some(self.governor.verdict())
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.telemetry)
    }
}

impl Drop for Hazard {
    fn drop(&mut self) {
        // No handles remain (each holds an Arc<Self>), hence no hazard pointer can be
        // published and no thread can reach a parked node: free everything.
        // SAFETY: parked nodes were retired by departed handles and survive until a scan proves them unprotected.
        let (freed, freed_bytes) = unsafe { self.parked.drain_all() };
        self.scheme_stats.add_freed(freed as u64);
        self.scheme_stats.add_freed_bytes(freed_bytes as u64);
        self.governor.note_parked(-(freed_bytes as i64));
    }
}

/// Per-thread handle for [`Hazard`].
pub struct HazardHandle {
    scheme: Arc<Hazard>,
    slot: SlotId,
    retired: SegBag,
    /// Recycled segments backing `retired`, pre-warmed for the scan threshold so
    /// even the first bag fill never allocates.
    pool: SegPool,
    /// Reusable buffer for hazard-pointer snapshots, sized for the worst case
    /// (`N·K` pointers) at registration so scans are allocation-free.
    scratch: PtrScratch,
    since_last_scan: usize,
    /// Traversal fences issued by this thread since the last flush to shared stats
    /// (kept local so the hot path does not add an extra shared atomic per node).
    local_fences: u64,
    /// This handle's stripe in the scheme's [`BudgetGovernor`].
    budget_stripe: usize,
    /// Local-bytes figure last pushed into the governor (delta-report cursor).
    budget_reported: usize,
    /// Telemetry recording cursor (stripe + op-sampling counter).
    tele: HandleTelemetry,
}

impl HazardHandle {
    fn record(&self) -> &HpRecord {
        self.scheme.registry.get_mine(self.slot)
    }

    fn stats(&self) -> &StatStripe {
        self.scheme.registry.stats(self.slot)
    }

    /// Scans and then re-reports the post-scan byte total, so the governor's
    /// estimate credits what the scan just freed. Returns whether the scheme
    /// is still over budget afterwards.
    fn scan(&mut self) -> bool {
        self.scheme.scan_into(
            &mut self.retired,
            &mut self.pool,
            &mut self.scratch,
            self.scheme.registry.stats(self.slot),
            self.tele.stripe(),
        );
        self.scheme.governor.report(
            self.budget_stripe,
            self.retired.bytes(),
            &mut self.budget_reported,
        )
    }

    fn publish_fence_count(&mut self) {
        if self.local_fences > 0 {
            self.stats().add_traversal_fences(self.local_fences);
            self.local_fences = 0;
        }
    }
}

impl SmrHandle for HazardHandle {
    fn begin_op(&mut self) {
        // Classic HP has no per-operation bookkeeping.
    }

    fn end_op(&mut self) {
        // Protections are cleared lazily by the next protect/clear; nothing to do.
    }

    #[inline]
    fn protect(&mut self, index: usize, ptr: *mut u8) {
        assert!(
            index < self.scheme.config.hp_per_thread,
            "hazard-pointer index {index} out of range (K = {})",
            self.scheme.config.hp_per_thread
        );
        self.record().set(index, ptr);
        // The paper's Algorithm 1, line 3: the store above must become visible before
        // the caller's validation load, otherwise the interleaving of Algorithm 2
        // frees a node the reader is about to use. This fence is exactly the per-node
        // cost that Cadence removes.
        fence(Ordering::SeqCst);
        self.local_fences += 1;
    }

    fn clear_protections(&mut self) {
        self.record().clear_all();
    }

    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.retire_sized(ptr, drop_fn, NO_BIRTH_ERA, 0) }
    }

    unsafe fn retire_sized(
        &mut self,
        ptr: *mut u8,
        drop_fn: DropFn,
        _birth_era: Era,
        size_bytes: usize,
    ) {
        let stats = self.stats();
        stats.add_retired(1);
        stats.add_retired_bytes(size_bytes as u64);
        if size_bytes == 0 {
            stats.add_size_unknown_retire();
        }
        let now = self.scheme.config.clock.now();
        // SAFETY: forwarded from the caller's contract.
        let mut node =
            unsafe { RetiredPtr::with_birth_sized(ptr, drop_fn, now, NO_BIRTH_ERA, size_bytes) };
        node.set_retire_tick(self.tele.retire_tick());
        self.retired.push(&mut self.pool, node);
        self.since_last_scan += 1;
        if self.since_last_scan >= self.scheme.config.scan_threshold {
            self.since_last_scan = 0;
            self.scan();
        } else if self.scheme.governor.observe(
            self.budget_stripe,
            self.retired.bytes(),
            &mut self.budget_reported,
        ) {
            // Budget breach: force a scan ahead of the count threshold (rung 1);
            // if hazard pointers still pin us over budget, take one bounded
            // backpressure yield (rung 3) so stalled readers get CPU time to
            // move on instead of this thread piling garbage ever faster.
            self.scheme.governor.count_forced_scan();
            self.since_last_scan = 0;
            if self.scan() {
                self.scheme.governor.count_backpressure();
                std::thread::yield_now();
            }
        }
    }

    fn flush(&mut self) {
        self.publish_fence_count();
        // Adopt leftovers of exited threads so they rejoin the scan cycle. The
        // adopted bytes move from the governor's parked counter to this
        // handle's stripe (the post-scan report picks them up).
        let before = self.retired.bytes();
        self.scheme.parked.adopt_into(&mut self.retired);
        let adopted = self.retired.bytes() - before;
        self.scheme.governor.note_parked(-(adopted as i64));
        self.since_last_scan = 0;
        self.scan();
    }

    fn local_in_limbo(&self) -> usize {
        self.retired.len()
    }

    fn local_limbo_bytes(&self) -> usize {
        self.retired.bytes()
    }

    fn telemetry_op_begin(&mut self) -> Option<Instant> {
        self.tele.op_begin()
    }

    fn telemetry_op_end(&mut self, started: Instant) {
        self.tele.op_end(started);
    }
}

impl Drop for HazardHandle {
    fn drop(&mut self) {
        self.publish_fence_count();
        // This thread is done traversing: its own protections can go away.
        self.record().clear_all();
        // Last chance to free what other threads no longer protect.
        self.scan();
        // Whatever is still protected by *other* threads is parked on the scheme
        // (an O(1) chain splice) and either adopted by the next handle to flush or
        // released when the scheme itself is dropped. The governor's parked
        // counter takes over the byte accounting so a leaked handle's limbo
        // never goes invisible.
        let parked_bytes = self.retired.bytes();
        self.scheme
            .governor
            .note_handle_exit(self.budget_stripe, &mut self.budget_reported);
        self.scheme.governor.note_parked(parked_bytes as i64);
        self.scheme.parked.park(&mut self.retired);
        self.scheme.registry.release(self.slot);
        // Recycle the workspace to the next registrant: after the first wave of
        // handles, registration allocates nothing.
        self.scheme.handle_cache.park(ScanParts {
            pool: std::mem::take(&mut self.pool),
            scratch: std::mem::take(&mut self.scratch),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hp_record_set_clear_collect() {
        let record = HpRecord::new(3);
        record.set(0, 0x10 as *mut u8);
        record.set(2, 0x30 as *mut u8);
        let mut out = Vec::new();
        record.collect_into(&mut out);
        assert_eq!(out.len(), 2);
        record.clear_all();
        out.clear();
        record.collect_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn protected_snapshot_is_sorted_and_deduplicated() {
        let scheme = Hazard::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_hp_per_thread(2),
        );
        let h1 = scheme.register();
        let h2 = scheme.register();
        h1.record().set(0, 0x300 as *mut u8);
        h1.record().set(1, 0x100 as *mut u8);
        h2.record().set(0, 0x300 as *mut u8);
        let snapshot = scheme.protected_snapshot();
        assert_eq!(snapshot, vec![0x100 as *mut u8, 0x300 as *mut u8]);
        drop(h1);
        drop(h2);
    }

    #[test]
    fn scheme_name_and_config_accessors() {
        let scheme = Hazard::with_defaults();
        assert_eq!(scheme.name(), "hp");
        assert!(scheme.config().hp_per_thread >= 1);
    }
}
