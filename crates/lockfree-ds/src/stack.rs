//! Lock-free stack (Treiber) generic over the reclamation scheme.
//!
//! The stack is the canonical first example of the hazard-pointer methodology
//! (Michael [25] uses it to introduce the technique): `pop` reads the head, must
//! dereference it to find its successor, and that dereference is an access hazard —
//! the head may have been popped and freed by a concurrent thread in the meantime.
//! One protection slot per thread suffices (`K = 1`): only the current head is ever
//! dereferenced.
//!
//! The structure is not part of the paper's evaluation; it is included to
//! demonstrate the claim of §1.3/§4.2 that QSense applies wherever hazard pointers
//! apply, beyond ordered sets, and it feeds the extension benchmarks and examples.

use reclaim_core::{retire_box_with_birth, Era, Smr, SmrHandle};
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Protection slot used for the head node during `pop`.
const HP_HEAD: usize = 0;

/// Number of protection slots the stack needs per thread (`K` in the paper).
pub const STACK_HP_SLOTS: usize = 1;

struct Node<V> {
    /// The value is taken out (moved to the caller) by the thread that pops the
    /// node, so the node's destructor must not drop it a second time.
    value: ManuallyDrop<V>,
    /// Era the node was allocated in (`SmrHandle::alloc_node`); read back by
    /// the popping thread at the retire site.
    birth_era: Era,
    next: *mut Node<V>,
}

/// A lock-free last-in-first-out stack (Treiber's algorithm) generic over the
/// reclamation scheme.
pub struct TreiberStack<V, S: Smr> {
    head: AtomicPtr<Node<V>>,
    /// Element count maintained at push/pop time. A traversal-based count cannot be
    /// made safe with a single hazard pointer (nodes deep in the stack cannot be
    /// re-validated the way the ordered structures re-validate through their
    /// predecessor links), so the stack keeps an explicit counter instead.
    size: AtomicUsize,
    smr: Arc<S>,
}

// SAFETY: the stack is a shared concurrent structure; all mutation happens through
// the head CAS and the SMR protocol. Values must be Send because nodes (and popped
// values) move between threads; Sync is not required of V because no thread ever
// holds a shared reference to a value another thread can reach.
unsafe impl<V: Send, S: Smr> Send for TreiberStack<V, S> {}
unsafe impl<V: Send, S: Smr> Sync for TreiberStack<V, S> {}

impl<V, S> TreiberStack<V, S>
where
    V: Send + 'static,
    S: Smr,
{
    /// Creates an empty stack using the given reclamation scheme.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: AtomicPtr::new(std::ptr::null_mut()),
            size: AtomicUsize::new(0),
            smr,
        }
    }

    /// The reclamation scheme this stack was created with.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with the underlying reclamation scheme.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    /// Pushes a value onto the stack.
    pub fn push(&self, value: V, handle: &mut S::Handle) {
        handle.begin_op();
        let node = Box::into_raw(Box::new(Node {
            value: ManuallyDrop::new(value),
            birth_era: handle.alloc_node(),
            next: std::ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            // The new node is still private, so writing its next pointer needs no
            // synchronization; the release CAS below publishes it.
            // SAFETY: `node` was just allocated and is not yet shared.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.size.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        handle.end_op();
    }

    /// Pops the most recently pushed value, or returns `None` if the stack is empty.
    pub fn pop(&self, handle: &mut S::Handle) -> Option<V> {
        handle.begin_op();
        let result = loop {
            let head = self.head.load(Ordering::Acquire);
            if head.is_null() {
                break None;
            }
            // Rule 2: protect the head, then re-validate that it is still the head.
            // Between the load above and the protection becoming visible, a
            // concurrent pop may have freed the node; the re-validation (against the
            // shared head pointer, not the node) detects that without dereferencing.
            handle.protect(HP_HEAD, head.cast());
            if self.head.load(Ordering::Acquire) != head {
                continue;
            }
            // SAFETY: `head` is protected and was re-validated as reachable, so it
            // cannot have been reclaimed (Condition 1 of the paper).
            let next = unsafe { (*head).next };
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            self.size.fetch_sub(1, Ordering::Relaxed);
            // This thread unlinked `head`, so it has the exclusive right to take the
            // value out and the obligation to retire the node exactly once (rule 3).
            // SAFETY: `head` is protected, unlinked by this thread, and no other
            // thread reads a popped node's value.
            let value = unsafe { ManuallyDrop::take(&mut (*head).value) };
            // SAFETY: unlinked by this thread, allocated via Box, retired once. The
            // value has been moved out, and `Node`'s ManuallyDrop field means the
            // destructor will not touch it again.
            unsafe { retire_box_with_birth(handle, head, (*head).birth_era) };
            break Some(value);
        };
        handle.clear_protections();
        handle.end_op();
        result
    }

    /// True if the stack contains no elements at the moment of the call.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Number of elements currently on the stack (maintained counter; exact when the
    /// stack is quiescent, momentarily approximate under concurrency like any size
    /// probe of a lock-free container).
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }
}

impl<V, S: Smr> Drop for TreiberStack<V, S> {
    fn drop(&mut self) {
        // Exclusive access: free every node still in the chain, dropping the values
        // they still own. Popped nodes are owned by the reclamation scheme.
        let mut curr = self.head.load(Ordering::Relaxed);
        while !curr.is_null() {
            // SAFETY: exclusive access; each chained node is freed exactly once and
            // still owns its value.
            let mut boxed = unsafe { Box::from_raw(curr) };
            unsafe { ManuallyDrop::drop(&mut boxed.value) };
            curr = boxed.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::Leaky;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn leaky_stack<V: Send + 'static>() -> TreiberStack<V, Leaky> {
        TreiberStack::new(Leaky::with_defaults())
    }

    #[test]
    fn push_pop_is_lifo() {
        let stack = leaky_stack();
        let mut h = stack.register();
        assert!(stack.pop(&mut h).is_none());
        stack.push(1, &mut h);
        stack.push(2, &mut h);
        stack.push(3, &mut h);
        assert_eq!(stack.len(), 3);
        assert_eq!(stack.pop(&mut h), Some(3));
        assert_eq!(stack.pop(&mut h), Some(2));
        assert_eq!(stack.pop(&mut h), Some(1));
        assert!(stack.pop(&mut h).is_none());
        assert!(stack.is_empty());
    }

    #[test]
    fn values_are_dropped_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let stack = leaky_stack();
            let mut h = stack.register();
            for _ in 0..10 {
                stack.push(Counted(Arc::clone(&drops)), &mut h);
            }
            // Pop half (their values drop when the popped value goes out of scope);
            // the rest drop when the stack drops.
            for _ in 0..5 {
                assert!(stack.pop(&mut h).is_some());
            }
            assert_eq!(drops.load(Ordering::SeqCst), 5);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_pushes_and_pops_neither_lose_nor_duplicate_values() {
        let stack = Arc::new(TreiberStack::<u64, qsense::QSense>::new(
            qsense::QSense::new(
                reclaim_core::SmrConfig::default()
                    .with_max_threads(8)
                    .with_hp_per_thread(STACK_HP_SLOTS)
                    .with_rooster_threads(1),
            ),
        ));
        const PER_THREAD: u64 = 2_000;
        const PRODUCERS: u64 = 3;
        let popped: Vec<_> = thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let stack = Arc::clone(&stack);
                scope.spawn(move || {
                    let mut h = stack.register();
                    for i in 0..PER_THREAD {
                        stack.push(p * PER_THREAD + i, &mut h);
                    }
                });
            }
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let stack = Arc::clone(&stack);
                    scope.spawn(move || {
                        let mut h = stack.register();
                        let mut got = Vec::new();
                        let mut idle = 0;
                        while idle < 1_000 {
                            match stack.pop(&mut h) {
                                Some(v) => {
                                    got.push(v);
                                    idle = 0;
                                }
                                None => {
                                    idle += 1;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect()
        });
        // Drain anything the consumers gave up on.
        let mut h = stack.register();
        let mut all: Vec<u64> = popped;
        while let Some(v) = stack.pop(&mut h) {
            all.push(v);
        }
        assert_eq!(all.len() as u64, PRODUCERS * PER_THREAD);
        let unique: HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len() as u64, PRODUCERS * PER_THREAD, "no duplicates");
    }

    #[test]
    fn works_with_heap_values() {
        let stack: TreiberStack<String, Leaky> = leaky_stack();
        let mut h = stack.register();
        stack.push("alpha".to_string(), &mut h);
        stack.push("bravo".to_string(), &mut h);
        assert_eq!(stack.pop(&mut h).as_deref(), Some("bravo"));
        assert_eq!(stack.pop(&mut h).as_deref(), Some("alpha"));
    }
}
