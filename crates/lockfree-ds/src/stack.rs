//! Lock-free stack (Treiber) generic over the reclamation scheme.
//!
//! The stack is the canonical first example of the hazard-pointer methodology
//! (Michael [25] uses it to introduce the technique): `pop` reads the head, must
//! dereference it to find its successor, and that dereference is an access hazard —
//! the head may have been popped and freed by a concurrent thread in the meantime.
//! One protection slot per thread suffices (`K = 1`): only the current head is ever
//! dereferenced.
//!
//! Built entirely on the safe guard layer (`reclaim_core::guard`): the head is an
//! [`Atomic`] link, `pop`'s protect-then-revalidate is [`Guard::load_protected`],
//! and the node is retired through the [`reclaim_core::Unlinked`] capability
//! minted by the successful head CAS — the module contains no raw `protect` or
//! retire calls.
//!
//! The structure is not part of the paper's evaluation; it is included to
//! demonstrate the claim of §1.3/§4.2 that QSense applies wherever hazard pointers
//! apply, beyond ordered sets, and it feeds the extension benchmarks and examples.

use reclaim_core::{Atomic, Guard, Owned, Smr};
use std::cell::UnsafeCell;
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Protection slot used for the head node during `pop`.
const HP_HEAD: usize = 0;

/// Number of protection slots the stack needs per thread (`K` in the paper).
pub const STACK_HP_SLOTS: usize = 1;

struct Node<V> {
    /// The value is taken out (moved to the caller) by the thread that pops the
    /// node, so the node's destructor must not drop it a second time. The
    /// `UnsafeCell` lets the unique unlinker take it through the shared
    /// [`reclaim_core::Unlinked::as_ref`] view; no other thread ever touches a
    /// popped node's value.
    value: UnsafeCell<ManuallyDrop<V>>,
    next: Atomic<Node<V>>,
}

/// A lock-free last-in-first-out stack (Treiber's algorithm) generic over the
/// reclamation scheme.
pub struct TreiberStack<V, S: Smr> {
    head: Atomic<Node<V>>,
    /// Element count maintained at push/pop time. A traversal-based count cannot be
    /// made safe with a single hazard pointer (nodes deep in the stack cannot be
    /// re-validated the way the ordered structures re-validate through their
    /// predecessor links), so the stack keeps an explicit counter instead.
    size: AtomicUsize,
    smr: Arc<S>,
}

// SAFETY: the stack is a shared concurrent structure; all mutation happens through
// the head CAS and the SMR protocol. Values must be Send because nodes (and popped
// values) move between threads; Sync is not required of V because no thread ever
// holds a shared reference to a value another thread can reach.
unsafe impl<V: Send, S: Smr> Send for TreiberStack<V, S> {}
unsafe impl<V: Send, S: Smr> Sync for TreiberStack<V, S> {}

impl<V, S> TreiberStack<V, S>
where
    V: Send + 'static,
    S: Smr,
{
    /// Creates an empty stack using the given reclamation scheme.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: Atomic::null(),
            size: AtomicUsize::new(0),
            smr,
        }
    }

    /// The reclamation scheme this stack was created with.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with the underlying reclamation scheme.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    /// Pushes a value onto the stack.
    pub fn push(&self, value: V, handle: &mut S::Handle) {
        let guard = Guard::new(handle);
        let mut node = Owned::new(
            Node {
                value: UnsafeCell::new(ManuallyDrop::new(value)),
                next: Atomic::null(),
            },
            &guard,
        );
        loop {
            let head = self.head.load(&guard);
            // The new node is still private, so writing its next link needs no
            // synchronization; the publishing CAS below releases it.
            node.next.store_private(head);
            // Pause point: the observed-head → publish window (ABA window: a
            // pop+push pair completing here is defeated by the link version).
            crate::interleave::hit("stack::push::pre_link_cas");
            match self.head.cas_link(head, node) {
                Ok(_) => {
                    self.size.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err((_, returned)) => node = returned,
            }
        }
    }

    /// Pops the most recently pushed value, or returns `None` if the stack is empty.
    pub fn pop(&self, handle: &mut S::Handle) -> Option<V> {
        let guard = Guard::new(handle);
        loop {
            // Rule 2: protect the head, then re-validate that it is still the
            // head — `load_protected` loops until the protection is validated
            // against the rooted head link.
            let head = guard.load_protected(HP_HEAD, &self.head);
            if head.is_null() {
                return None;
            }
            // SAFETY: `head` carries a validated protection from `load_protected`.
            let node = unsafe { head.as_ref() }.expect("non-null checked above");
            let next = node.next.load(&guard);
            // Pause point: the classic Treiber ABA window — successor read,
            // unlink CAS pending; interleaved pop/push of the same node must
            // fail the versioned CAS.
            crate::interleave::hit("stack::pop::pre_unlink_cas");
            // SAFETY: the head link is the sole path by which new observers reach
            // the top node, so a successful CAS unlinks it; the minted `Unlinked`
            // is the unique retire capability.
            match unsafe { self.head.cas_unlink(head, next) } {
                Ok((unlinked, _)) => {
                    self.size.fetch_sub(1, Ordering::Relaxed);
                    // This thread unlinked the node, so it has the exclusive right
                    // to take the value out (rule 3 gives it the retire duty too).
                    // SAFETY: no other thread reads a popped node's value, and the
                    // ManuallyDrop field keeps the node's destructor off it.
                    let value = unsafe { ManuallyDrop::take(&mut *unlinked.as_ref().value.get()) };
                    unlinked.retire(&guard);
                    return Some(value);
                }
                Err(_) => continue,
            }
        }
    }

    /// True if the stack contains no elements at the moment of the call.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of elements currently on the stack (maintained counter; exact when the
    /// stack is quiescent, momentarily approximate under concurrency like any size
    /// probe of a lock-free container).
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }
}

impl<V, S: Smr> Drop for TreiberStack<V, S> {
    fn drop(&mut self) {
        // Exclusive access: free every node still in the chain, dropping the values
        // they still own. Popped nodes are owned by the reclamation scheme.
        // SAFETY: `&mut self` means no concurrent operations and no outstanding
        // protections; each node is taken out of exactly one link.
        unsafe {
            let mut curr = self.head.take();
            while let Some(mut node) = curr {
                let next = node.next.take();
                ManuallyDrop::drop(&mut *node.value.get());
                drop(node);
                curr = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::Leaky;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn leaky_stack<V: Send + 'static>() -> TreiberStack<V, Leaky> {
        TreiberStack::new(Leaky::with_defaults())
    }

    #[test]
    fn push_pop_is_lifo() {
        let stack = leaky_stack();
        let mut h = stack.register();
        assert!(stack.pop(&mut h).is_none());
        stack.push(1, &mut h);
        stack.push(2, &mut h);
        stack.push(3, &mut h);
        assert_eq!(stack.len(), 3);
        assert_eq!(stack.pop(&mut h), Some(3));
        assert_eq!(stack.pop(&mut h), Some(2));
        assert_eq!(stack.pop(&mut h), Some(1));
        assert!(stack.pop(&mut h).is_none());
        assert!(stack.is_empty());
    }

    #[test]
    fn values_are_dropped_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let stack = leaky_stack();
            let mut h = stack.register();
            for _ in 0..10 {
                stack.push(Counted(Arc::clone(&drops)), &mut h);
            }
            // Pop half (their values drop when the popped value goes out of scope);
            // the rest drop when the stack drops.
            for _ in 0..5 {
                assert!(stack.pop(&mut h).is_some());
            }
            assert_eq!(drops.load(Ordering::SeqCst), 5);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_pushes_and_pops_neither_lose_nor_duplicate_values() {
        let stack = Arc::new(TreiberStack::<u64, qsense::QSense>::new(
            qsense::QSense::new(
                reclaim_core::SmrConfig::default()
                    .with_max_threads(8)
                    .with_hp_per_thread(STACK_HP_SLOTS)
                    .with_rooster_threads(1),
            ),
        ));
        const PER_THREAD: u64 = 2_000;
        const PRODUCERS: u64 = 3;
        let popped: Vec<_> = thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let stack = Arc::clone(&stack);
                scope.spawn(move || {
                    let mut h = stack.register();
                    for i in 0..PER_THREAD {
                        stack.push(p * PER_THREAD + i, &mut h);
                    }
                });
            }
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let stack = Arc::clone(&stack);
                    scope.spawn(move || {
                        let mut h = stack.register();
                        let mut got = Vec::new();
                        let mut idle = 0;
                        while idle < 1_000 {
                            match stack.pop(&mut h) {
                                Some(v) => {
                                    got.push(v);
                                    idle = 0;
                                }
                                None => {
                                    idle += 1;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect()
        });
        // Drain anything the consumers gave up on.
        let mut h = stack.register();
        let mut all: Vec<u64> = popped;
        while let Some(v) = stack.pop(&mut h) {
            all.push(v);
        }
        assert_eq!(all.len() as u64, PRODUCERS * PER_THREAD);
        let unique: HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len() as u64, PRODUCERS * PER_THREAD, "no duplicates");
    }

    #[test]
    fn works_with_heap_values() {
        let stack: TreiberStack<String, Leaky> = leaky_stack();
        let mut h = stack.register();
        stack.push("alpha".to_string(), &mut h);
        stack.push("bravo".to_string(), &mut h);
        assert_eq!(stack.pop(&mut h).as_deref(), Some("bravo"));
        assert_eq!(stack.pop(&mut h).as_deref(), Some("alpha"));
    }
}
