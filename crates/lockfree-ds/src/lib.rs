//! # lockfree-ds — the data structures of the QSense evaluation
//!
//! The three lock-free ordered sets the paper applies QSense to (§7.1), each generic
//! over the reclamation scheme (`S: Smr`) so that the evaluation matrix
//! {None, QSBR, HP, Cadence, QSense} × {list, skip list, BST} is a type parameter:
//!
//! * [`HarrisMichaelList`] — the sorted linked list of Michael (SPAA 2002), the
//!   paper's appendix example (2 hazard pointers per thread);
//! * [`LockFreeSkipList`] — a Fraser / Herlihy–Shavit style skip list (up to
//!   [`skiplist::SKIPLIST_HP_SLOTS`] hazard pointers per thread);
//! * [`LockFreeBst`] — an external (leaf-oriented) binary search tree in the style of
//!   Natarajan–Mittal (PPoPP 2014), using edge flagging (6 hazard pointers).
//!
//! Beyond the paper's evaluation matrix, three further structures demonstrate the
//! applicability claim of §4.2 (QSense applies wherever hazard pointers apply):
//!
//! * [`LockFreeHashMap`] — Michael's (SPAA 2002) hash table: a bucket array of
//!   lock-free ordered lists, as a key → value map (2 hazard pointers);
//! * [`MichaelScottQueue`] — the classic lock-free FIFO queue (2 hazard pointers);
//! * [`TreiberStack`] — the classic lock-free LIFO stack (1 hazard pointer).
//!
//! Every operation follows the paper's three integration rules: `begin_op`
//! (`manage_qsense_state`) at operation start, `protect` + re-validate before using a
//! node reference, and retire (`free_node_later`) exactly once when a node is
//! physically unlinked.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bst;
pub mod hashmap;
#[cfg(feature = "interleave")]
pub mod interleave;
pub mod keyspace;
pub mod list;
pub mod queue;
pub mod skiplist;
pub mod stack;
pub use reclaim_core::tagged;

/// No-op stand-in for the [`interleave`] pause points when the harness feature
/// is disabled (every production build): `hit` inlines to nothing.
#[cfg(not(feature = "interleave"))]
pub(crate) mod interleave {
    #[inline(always)]
    pub(crate) fn hit(_point: &'static str) {}
}

/// Shadow-heap oracle hooks for the expert structures that allocate raw nodes
/// (skip list, BST): register at `Node::alloc`, deregister at every synchronous
/// owned free (failed-insert rollback, teardown walk), checkpoint at validated
/// traversal advances. Compiles to nothing without `check-oracle`.
#[cfg(feature = "check-oracle")]
pub(crate) mod oracle {
    #[inline]
    pub(crate) fn register<T>(ptr: *mut T) {
        reclaim_core::oracle::register(ptr.cast(), std::mem::size_of::<T>());
    }
    #[inline]
    pub(crate) fn deregister<T>(ptr: *mut T) {
        reclaim_core::oracle::deregister(ptr.cast());
    }
    #[inline]
    pub(crate) fn check<T>(ptr: *mut T, checkpoint: &str) {
        reclaim_core::oracle::check_protected(ptr.cast(), checkpoint);
    }
}

/// No-op stand-in for the shadow-heap oracle hooks (every production build).
#[cfg(not(feature = "check-oracle"))]
pub(crate) mod oracle {
    #[inline(always)]
    pub(crate) fn register<T>(_ptr: *mut T) {}
    #[inline(always)]
    pub(crate) fn deregister<T>(_ptr: *mut T) {}
    #[inline(always)]
    pub(crate) fn check<T>(_ptr: *mut T, _checkpoint: &str) {}
}

pub use bst::{LockFreeBst, BST_HP_SLOTS};
pub use hashmap::{LockFreeHashMap, DEFAULT_HASH_BUCKETS, HASHMAP_HP_SLOTS};
pub use keyspace::KeySlot;
pub use list::{HarrisMichaelList, LIST_HP_SLOTS};
pub use queue::{MichaelScottQueue, QUEUE_HP_SLOTS};
pub use skiplist::{LockFreeSkipList, MAX_HEIGHT, SKIPLIST_HP_SLOTS};
pub use stack::{TreiberStack, STACK_HP_SLOTS};
