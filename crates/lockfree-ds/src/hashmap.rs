//! Lock-free hash map (Michael's bucket-array of lock-free lists), generic over the
//! reclamation scheme.
//!
//! Michael's SPAA 2002 paper [24] — the source of the linked list the QSense paper
//! evaluates — presents its list-based set precisely as the building block of a
//! high-performance hash table: an array of buckets, each an independent lock-free
//! ordered list. This module implements that hash table as a key → value map so
//! that the applicability claim of §4.2 ("QSense can be used with any data structure
//! for which hazard pointers are applicable") is demonstrated on the structure the
//! original hazard-pointer work actually targeted.
//!
//! Reclamation integration is identical to the linked list: two protection slots per
//! thread (predecessor and current node), protect-then-revalidate on traversal, and
//! retire-on-unlink, so `K = 2` regardless of the number of buckets.

use crate::keyspace::KeySlot;
use crate::tagged::{decompose, is_marked, marked, unmarked};
use reclaim_core::{retire_box_with_birth, Era, Smr, SmrHandle, NO_BIRTH_ERA};
use std::cmp::Ordering as CmpOrdering;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Protection slot for the predecessor during traversal.
const HP_PREV: usize = 0;
/// Protection slot for the current node during traversal.
const HP_CURR: usize = 1;

/// Number of protection slots the hash map needs per thread (`K` in the paper).
pub const HASHMAP_HP_SLOTS: usize = 2;

/// Default number of buckets (Michael's evaluation uses a load factor close to one;
/// the default here keeps per-bucket chains short for the examples and benchmarks).
pub const DEFAULT_HASH_BUCKETS: usize = 1 << 12;

struct Node<K, V> {
    key: KeySlot<K>,
    /// `None` only in bucket sentinels. Written once at allocation, never mutated
    /// afterwards, so readers may clone it while the node is protected.
    value: Option<V>,
    /// Era the node was allocated in (`SmrHandle::alloc_node`); immutable after
    /// allocation, read back at the retire sites. `NO_BIRTH_ERA` on sentinels.
    birth_era: Era,
    next: AtomicPtr<Node<K, V>>,
}

impl<K, V> Node<K, V> {
    fn new(
        key: KeySlot<K>,
        value: Option<V>,
        next: *mut Node<K, V>,
        birth_era: Era,
    ) -> *mut Node<K, V> {
        Box::into_raw(Box::new(Node {
            key,
            value,
            birth_era,
            next: AtomicPtr::new(next),
        }))
    }
}

struct Search<K, V> {
    prev: *mut Node<K, V>,
    curr: *mut Node<K, V>,
}

/// A lock-free hash map: a fixed array of buckets, each an independent Harris–Michael
/// ordered list.
pub struct LockFreeHashMap<K, V, S: Smr> {
    /// One sentinel node per bucket; real nodes hang off the sentinels' `next`.
    buckets: Box<[Node<K, V>]>,
    hasher: BuildHasherDefault<DefaultHasher>,
    /// Element count maintained on successful insert/remove.
    size: AtomicUsize,
    smr: Arc<S>,
}

// SAFETY: shared concurrent structure; all mutation happens through atomics and the
// SMR protocol. K and V must be Send + Sync because nodes are dropped by whichever
// thread reclaims them and values are read (cloned) by any reader.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Smr> Send for LockFreeHashMap<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S: Smr> Sync for LockFreeHashMap<K, V, S> {}

impl<K, V, S> LockFreeHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: Smr,
{
    /// Creates an empty map with the default bucket count.
    pub fn new(smr: Arc<S>) -> Self {
        Self::with_buckets(smr, DEFAULT_HASH_BUCKETS)
    }

    /// Creates an empty map with `buckets` buckets (rounded up to a power of two).
    pub fn with_buckets(smr: Arc<S>, buckets: usize) -> Self {
        let count = buckets.next_power_of_two().max(1);
        let buckets = (0..count)
            .map(|_| Node {
                key: KeySlot::NegInf,
                value: None,
                birth_era: NO_BIRTH_ERA,
                next: AtomicPtr::new(std::ptr::null_mut()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            buckets,
            hasher: BuildHasherDefault::default(),
            size: AtomicUsize::new(0),
            smr,
        }
    }

    /// The reclamation scheme this map was created with.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with the underlying reclamation scheme.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of key-value pairs currently in the map (maintained counter).
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn bucket_head(&self, key: &K) -> *mut Node<K, V> {
        let index = (self.hasher.hash_one(key) as usize) & (self.buckets.len() - 1);
        (&self.buckets[index]) as *const Node<K, V> as *mut Node<K, V>
    }

    /// Bucket-local traversal, identical in structure to the linked list's
    /// `search_and_cleanup`: positions on the first node with key ≥ `key`, unlinking
    /// and retiring every marked node encountered on the way.
    fn search(&self, key: &K, handle: &mut S::Handle) -> Search<K, V> {
        let head = self.bucket_head(key);
        'retry: loop {
            let mut prev = head;
            // SAFETY: `prev` is the bucket sentinel, owned by `self`.
            let mut curr = unmarked(unsafe { &*prev }.next.load(Ordering::Acquire));
            loop {
                if curr.is_null() {
                    return Search { prev, curr };
                }
                // Rule 2: protect, then re-validate through the (protected or
                // sentinel) predecessor.
                handle.protect(HP_CURR, curr.cast());
                // SAFETY: `prev` is the sentinel or protected by slot HP_PREV.
                if unsafe { &*prev }.next.load(Ordering::Acquire) != curr {
                    continue 'retry;
                }
                // SAFETY: `curr` is protected and validated reachable.
                let next_raw = unsafe { &*curr }.next.load(Ordering::Acquire);
                let (next, curr_marked) = decompose(next_raw);
                if curr_marked {
                    // SAFETY: `prev` sentinel/protected as above.
                    if unsafe { &*prev }
                        .next
                        .compare_exchange(curr, next, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue 'retry;
                    }
                    // SAFETY: unlinked by this thread, Box-allocated, retired once.
                    unsafe { retire_box_with_birth(handle, curr, (*curr).birth_era) };
                    curr = next;
                    continue;
                }
                // SAFETY: `curr` protected and validated.
                match unsafe { &*curr }.key.cmp_key(key) {
                    CmpOrdering::Less => {
                        prev = curr;
                        handle.protect(HP_PREV, curr.cast());
                        curr = next;
                    }
                    _ => return Search { prev, curr },
                }
            }
        }
    }

    /// True if `key` has an entry in the map.
    pub fn contains_key(&self, key: &K, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        let found = {
            let s = self.search(key, handle);
            // SAFETY: `s.curr` is protected by slot HP_CURR.
            !s.curr.is_null() && unsafe { &*s.curr }.key.cmp_key(key) == CmpOrdering::Equal
        };
        handle.clear_protections();
        handle.end_op();
        found
    }

    /// Inserts `key → value`; returns false (and drops `value`) if the key is
    /// already present. Matching the set semantics of the paper's structures, an
    /// existing entry is *not* replaced.
    pub fn insert(&self, key: K, value: V, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        let mut key = key;
        let mut value = value;
        loop {
            let s = self.search(&key, handle);
            // SAFETY: `s.curr` protected by slot HP_CURR.
            if !s.curr.is_null() && unsafe { &*s.curr }.key.cmp_key(&key) == CmpOrdering::Equal {
                handle.clear_protections();
                handle.end_op();
                return false;
            }
            let node = Node::new(KeySlot::Key(key), Some(value), s.curr, handle.alloc_node());
            // SAFETY: `s.prev` is the bucket sentinel or protected by slot HP_PREV.
            match unsafe { &*s.prev }.next.compare_exchange(
                s.curr,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.size.fetch_add(1, Ordering::Relaxed);
                    handle.clear_protections();
                    handle.end_op();
                    return true;
                }
                Err(_) => {
                    // Never shared: free directly and retry with the same key/value.
                    // SAFETY: `node` was just allocated and never published.
                    let boxed = unsafe { Box::from_raw(node) };
                    match (boxed.key, boxed.value) {
                        (KeySlot::Key(k), Some(v)) => {
                            key = k;
                            value = v;
                        }
                        _ => unreachable!("freshly inserted nodes carry a key and a value"),
                    }
                }
            }
        }
    }

    /// Removes `key`'s entry; returns false if it was not present.
    pub fn remove(&self, key: &K, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        loop {
            let s = self.search(key, handle);
            // SAFETY: `s.curr` protected by slot HP_CURR.
            if s.curr.is_null() || unsafe { &*s.curr }.key.cmp_key(key) != CmpOrdering::Equal {
                handle.clear_protections();
                handle.end_op();
                return false;
            }
            let curr = s.curr;
            // SAFETY: `curr` protected.
            let next_raw = unsafe { &*curr }.next.load(Ordering::Acquire);
            if is_marked(next_raw) {
                continue;
            }
            // Logical deletion.
            // SAFETY: `curr` protected.
            if unsafe { &*curr }
                .next
                .compare_exchange(
                    next_raw,
                    marked(next_raw),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            self.size.fetch_sub(1, Ordering::Relaxed);
            // Physical deletion; on failure a later traversal unlinks and retires it.
            // SAFETY: `s.prev` is the sentinel or protected by slot HP_PREV.
            if unsafe { &*s.prev }
                .next
                .compare_exchange(
                    curr,
                    unmarked(next_raw),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // SAFETY: unlinked by this thread, Box-allocated, retired once.
                unsafe { retire_box_with_birth(handle, curr, (*curr).birth_era) };
            } else {
                let _ = self.search(key, handle);
            }
            handle.clear_protections();
            handle.end_op();
            return true;
        }
    }
}

impl<K, V, S> LockFreeHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr,
{
    /// Returns a clone of the value stored under `key`, if any.
    ///
    /// The clone happens while the node is protected, so the read is safe even if a
    /// concurrent `remove` retires the node immediately afterwards.
    pub fn get(&self, key: &K, handle: &mut S::Handle) -> Option<V> {
        handle.begin_op();
        let result = {
            let s = self.search(key, handle);
            if !s.curr.is_null()
                // SAFETY: `s.curr` is protected by slot HP_CURR and was validated.
                && unsafe { &*s.curr }.key.cmp_key(key) == CmpOrdering::Equal
            {
                // SAFETY: protected as above; `value` is immutable after insertion.
                unsafe { &*s.curr }.value.clone()
            } else {
                None
            }
        };
        handle.clear_protections();
        handle.end_op();
        result
    }
}

impl<K, V, S: Smr> Drop for LockFreeHashMap<K, V, S> {
    fn drop(&mut self) {
        // Exclusive access: free every chained node in every bucket. Unlinked nodes
        // are owned by the reclamation scheme.
        for bucket in self.buckets.iter() {
            let mut curr = unmarked(bucket.next.load(Ordering::Relaxed));
            while !curr.is_null() {
                // SAFETY: exclusive access; every chained node was allocated via Box
                // and is freed exactly once here.
                let boxed = unsafe { Box::from_raw(curr) };
                curr = unmarked(boxed.next.load(Ordering::Relaxed));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::Leaky;
    use std::collections::BTreeMap;
    use std::thread;

    fn leaky_map<K, V>() -> LockFreeHashMap<K, V, Leaky>
    where
        K: Ord + Hash + Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        LockFreeHashMap::with_buckets(Leaky::with_defaults(), 64)
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let map = leaky_map();
        let mut h = map.register();
        assert!(map.is_empty());
        assert!(map.insert(7_u64, "seven", &mut h));
        assert!(
            !map.insert(7, "SEVEN", &mut h),
            "no replace on duplicate insert"
        );
        assert_eq!(map.get(&7, &mut h), Some("seven"));
        assert!(map.contains_key(&7, &mut h));
        assert_eq!(map.get(&8, &mut h), None);
        assert!(map.remove(&7, &mut h));
        assert!(!map.remove(&7, &mut h));
        assert_eq!(map.get(&7, &mut h), None);
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn keys_that_share_a_bucket_coexist() {
        // A single-bucket map forces every key into one chain: the ordered-list
        // logic must still keep them all.
        let map: LockFreeHashMap<u64, u64, Leaky> =
            LockFreeHashMap::with_buckets(Leaky::with_defaults(), 1);
        let mut h = map.register();
        for key in 0..100_u64 {
            assert!(map.insert(key, key * 10, &mut h));
        }
        assert_eq!(map.len(), 100);
        for key in 0..100_u64 {
            assert_eq!(map.get(&key, &mut h), Some(key * 10));
        }
        for key in (0..100_u64).step_by(2) {
            assert!(map.remove(&key, &mut h));
        }
        assert_eq!(map.len(), 50);
        for key in 0..100_u64 {
            assert_eq!(map.contains_key(&key, &mut h), key % 2 == 1);
        }
    }

    #[test]
    fn matches_reference_map_on_mixed_operations() {
        let map = leaky_map();
        let mut h = map.register();
        let mut reference = BTreeMap::new();
        let mut state = 0x9E37_79B9_7F4A_7C15_u64;
        for _ in 0..4_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 128;
            match state % 3 {
                0 => {
                    let expect = !reference.contains_key(&key);
                    if expect {
                        reference.insert(key, key + 1);
                    }
                    assert_eq!(map.insert(key, key + 1, &mut h), expect);
                }
                1 => assert_eq!(map.remove(&key, &mut h), reference.remove(&key).is_some()),
                _ => assert_eq!(map.get(&key, &mut h), reference.get(&key).copied()),
            }
        }
        assert_eq!(map.len(), reference.len());
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let map: LockFreeHashMap<u64, u64, Leaky> =
            LockFreeHashMap::with_buckets(Leaky::with_defaults(), 100);
        assert_eq!(map.bucket_count(), 128);
    }

    #[test]
    fn string_keys_and_values_work() {
        let map: LockFreeHashMap<String, String, Leaky> = leaky_map();
        let mut h = map.register();
        assert!(map.insert("user:1".into(), "alice".into(), &mut h));
        assert!(map.insert("user:2".into(), "bob".into(), &mut h));
        assert_eq!(
            map.get(&"user:1".to_string(), &mut h).as_deref(),
            Some("alice")
        );
        assert!(map.remove(&"user:2".to_string(), &mut h));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn concurrent_disjoint_writers_keep_all_their_entries() {
        let map = Arc::new(LockFreeHashMap::<u64, u64, qsense::QSense>::with_buckets(
            qsense::QSense::new(
                reclaim_core::SmrConfig::default()
                    .with_max_threads(8)
                    .with_hp_per_thread(HASHMAP_HP_SLOTS)
                    .with_rooster_threads(1),
            ),
            256,
        ));
        thread::scope(|scope| {
            for t in 0..4_u64 {
                let map = Arc::clone(&map);
                scope.spawn(move || {
                    let mut h = map.register();
                    for i in 0..1_000_u64 {
                        let key = t * 10_000 + i;
                        assert!(map.insert(key, key, &mut h));
                    }
                    // Remove half of what this thread inserted.
                    for i in (0..1_000_u64).step_by(2) {
                        assert!(map.remove(&(t * 10_000 + i), &mut h));
                    }
                });
            }
        });
        let mut h = map.register();
        assert_eq!(map.len(), 4 * 500);
        for t in 0..4_u64 {
            for i in 0..1_000_u64 {
                let key = t * 10_000 + i;
                assert_eq!(map.contains_key(&key, &mut h), i % 2 == 1, "key {key}");
            }
        }
    }

    #[test]
    fn concurrent_contending_writers_agree_on_winners() {
        // All threads fight over the same small key space; the number of successful
        // inserts minus successful removes must equal the final size.
        use std::sync::atomic::{AtomicI64, Ordering as AOrd};
        let map = Arc::new(LockFreeHashMap::<u64, u64, qsense::QSense>::with_buckets(
            qsense::QSense::new(
                reclaim_core::SmrConfig::default()
                    .with_max_threads(8)
                    .with_hp_per_thread(HASHMAP_HP_SLOTS)
                    .with_rooster_threads(1),
            ),
            16,
        ));
        let balance = Arc::new(AtomicI64::new(0));
        thread::scope(|scope| {
            for t in 0..4_u64 {
                let map = Arc::clone(&map);
                let balance = Arc::clone(&balance);
                scope.spawn(move || {
                    let mut h = map.register();
                    let mut state = 0x1234_5678_9ABC_DEF0_u64 ^ (t << 32);
                    for _ in 0..5_000 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let key = (state >> 33) % 32;
                        if state.is_multiple_of(2) {
                            if map.insert(key, key, &mut h) {
                                balance.fetch_add(1, AOrd::SeqCst);
                            }
                        } else if map.remove(&key, &mut h) {
                            balance.fetch_sub(1, AOrd::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(
            map.len() as i64,
            balance.load(std::sync::atomic::Ordering::SeqCst)
        );
    }
}
