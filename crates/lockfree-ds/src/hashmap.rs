//! Lock-free hash map (Michael's bucket-array of lock-free lists), generic over the
//! reclamation scheme.
//!
//! Michael's SPAA 2002 paper [24] — the source of the linked list the QSense paper
//! evaluates — presents its list-based set precisely as the building block of a
//! high-performance hash table: an array of buckets, each an independent lock-free
//! ordered list. This module implements that hash table as a key → value map so
//! that the applicability claim of §4.2 ("QSense can be used with any data structure
//! for which hazard pointers are applicable") is demonstrated on the structure the
//! original hazard-pointer work actually targeted.
//!
//! Reclamation integration is identical to the linked list — and, like the list,
//! the module is built entirely on the safe guard layer (`reclaim_core::guard`):
//! two protection slots per thread (predecessor and current node),
//! protect-then-revalidate via [`Guard::load_protected`] / [`Guard::protect_word`],
//! and retirement only through the [`reclaim_core::Unlinked`] capability minted by
//! the unlink CAS, so `K = 2` regardless of the number of buckets.

use reclaim_core::{Atomic, Guard, Owned, Shared, Smr};
use std::cmp::Ordering as CmpOrdering;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Protection slot for the predecessor during traversal.
const HP_PREV: usize = 0;
/// Protection slot for the current node during traversal.
const HP_CURR: usize = 1;

/// Number of protection slots the hash map needs per thread (`K` in the paper).
pub const HASHMAP_HP_SLOTS: usize = 2;

/// Default number of buckets (Michael's evaluation uses a load factor close to one;
/// the default here keeps per-bucket chains short for the examples and benchmarks).
pub const DEFAULT_HASH_BUCKETS: usize = 1 << 12;

struct Node<K, V> {
    key: K,
    /// Written once at allocation, never mutated afterwards, so readers may
    /// clone it while the node is protected.
    value: V,
    next: Atomic<Node<K, V>>,
}

/// Result of a bucket traversal: `curr` is the validated, protected word of the
/// first node with key ≥ the search key (or null) and `prev` the link holding it
/// (the bucket head or the `next` link of the node protected by slot 0).
struct Search<'g, K, V> {
    prev: &'g Atomic<Node<K, V>>,
    curr: Shared<'g, Node<K, V>>,
}

/// A lock-free hash map: a fixed array of buckets, each an independent Harris–Michael
/// ordered list.
pub struct LockFreeHashMap<K, V, S: Smr> {
    /// One head link per bucket; nodes hang off it in key order.
    buckets: Box<[Atomic<Node<K, V>>]>,
    hasher: BuildHasherDefault<DefaultHasher>,
    /// Element count maintained on successful insert/remove.
    size: AtomicUsize,
    smr: Arc<S>,
}

// SAFETY: shared concurrent structure; all mutation happens through atomics and the
// SMR protocol. K and V must be Send + Sync because nodes are dropped by whichever
// thread reclaims them and values are read (cloned) by any reader.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Smr> Send for LockFreeHashMap<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S: Smr> Sync for LockFreeHashMap<K, V, S> {}

impl<K, V, S> LockFreeHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: Smr,
{
    /// Creates an empty map with the default bucket count.
    pub fn new(smr: Arc<S>) -> Self {
        Self::with_buckets(smr, DEFAULT_HASH_BUCKETS)
    }

    /// Creates an empty map with `buckets` buckets (rounded up to a power of two).
    pub fn with_buckets(smr: Arc<S>, buckets: usize) -> Self {
        let count = buckets.next_power_of_two().max(1);
        let buckets = (0..count)
            .map(|_| Atomic::null())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            buckets,
            hasher: BuildHasherDefault::default(),
            size: AtomicUsize::new(0),
            smr,
        }
    }

    /// The reclamation scheme this map was created with.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with the underlying reclamation scheme.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of key-value pairs currently in the map (maintained counter).
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn bucket_head(&self, key: &K) -> &Atomic<Node<K, V>> {
        let index = (self.hasher.hash_one(key) as usize) & (self.buckets.len() - 1);
        &self.buckets[index]
    }

    /// Bucket-local traversal, identical in structure to the linked list's
    /// `search_and_cleanup`: positions on the first node with key ≥ `key`, unlinking
    /// and retiring every marked node encountered on the way.
    fn search<'g>(&'g self, key: &K, guard: &'g Guard<'_, S::Handle>) -> Search<'g, K, V> {
        let head = self.bucket_head(key);
        'retry: loop {
            let mut prev: &'g Atomic<Node<K, V>> = head;
            // The bucket link is rooted in `self`, so the protection validated
            // against it is honoured from the start.
            let mut curr = guard.load_protected(HP_CURR, prev);
            loop {
                let Some(node) = (
                    // SAFETY: `curr` carries a validated protection against
                    // `prev` (the bucket head, or a link of the node protected
                    // by slot HP_PREV).
                    unsafe { curr.as_ref() }
                ) else {
                    return Search { prev, curr };
                };
                let next = node.next.load(guard);
                if next.is_marked() {
                    // Help unlink the logically deleted node.
                    // SAFETY: after the mark settled, `prev` is the sole path to
                    // `curr` for new observers; the versioned CAS lets only one
                    // helper win, minting exactly one `Unlinked`.
                    match unsafe { prev.cas_unlink(curr, next.unmarked()) } {
                        Ok((unlinked, after)) => {
                            unlinked.retire(guard);
                            match guard.protect_word(HP_CURR, prev, after) {
                                Ok(sh) => curr = sh,
                                Err(_) => continue 'retry,
                            }
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                match node.key.cmp(key) {
                    CmpOrdering::Less => {
                        guard.protect_shared(HP_PREV, curr);
                        prev = &node.next;
                        match guard.protect_word(HP_CURR, prev, next) {
                            Ok(sh) => curr = sh,
                            Err(_) => continue 'retry,
                        }
                    }
                    _ => return Search { prev, curr },
                }
            }
        }
    }

    /// True if `key` has an entry in the map.
    pub fn contains_key(&self, key: &K, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        let s = self.search(key, &guard);
        // SAFETY: `s.curr` carries a validated protection from `search`.
        match unsafe { s.curr.as_ref() } {
            Some(node) => node.key == *key,
            None => false,
        }
    }

    /// Inserts `key → value`; returns false (and drops `value`) if the key is
    /// already present. Matching the set semantics of the paper's structures, an
    /// existing entry is *not* replaced.
    pub fn insert(&self, key: K, value: V, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        let mut key = key;
        let mut value = value;
        loop {
            let s = self.search(&key, &guard);
            // SAFETY: `s.curr` carries a validated protection from `search`.
            if let Some(node) = unsafe { s.curr.as_ref() } {
                if node.key == key {
                    return false;
                }
            }
            let node = Owned::new(
                Node {
                    key,
                    value,
                    next: Atomic::null(),
                },
                &guard,
            );
            node.next.store_private(s.curr);
            // Same validate-then-CAS argument as the list: the expected value is
            // the full word (pointer + mark + version) the search validated, so
            // any overlapping removal fails this CAS.
            match s.prev.cas_link(s.curr, node) {
                Ok(_) => {
                    self.size.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err((_, returned)) => {
                    // Never shared: recover the key/value and retry.
                    let recovered = returned.into_inner();
                    key = recovered.key;
                    value = recovered.value;
                }
            }
        }
    }

    /// Removes `key`'s entry; returns false if it was not present.
    pub fn remove(&self, key: &K, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        loop {
            let s = self.search(key, &guard);
            // SAFETY: `s.curr` carries a validated protection from `search`.
            let Some(node) = (unsafe { s.curr.as_ref() }) else {
                return false;
            };
            if node.key != *key {
                return false;
            }
            let next = node.next.load(&guard);
            if next.is_marked() {
                continue;
            }
            // Logical deletion; the winner owns the removal.
            if node.next.try_mark(next).is_err() {
                continue;
            }
            self.size.fetch_sub(1, Ordering::Relaxed);
            // Physical deletion; on failure a later traversal unlinks and retires it.
            // SAFETY: the mark this thread won makes `prev`'s link the sole
            // remaining path; at most one unlinker succeeds on the versioned word.
            match unsafe { s.prev.cas_unlink(s.curr, next) } {
                Ok((unlinked, _)) => unlinked.retire(&guard),
                Err(_) => {
                    let _ = self.search(key, &guard);
                }
            }
            return true;
        }
    }
}

impl<K, V, S> LockFreeHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr,
{
    /// Returns a clone of the value stored under `key`, if any.
    ///
    /// The clone happens while the node is protected, so the read is safe even if a
    /// concurrent `remove` retires the node immediately afterwards.
    pub fn get(&self, key: &K, handle: &mut S::Handle) -> Option<V> {
        let guard = Guard::new(handle);
        let s = self.search(key, &guard);
        // SAFETY: `s.curr` carries a validated protection from `search`;
        // `value` is immutable after insertion.
        match unsafe { s.curr.as_ref() } {
            Some(node) if node.key == *key => Some(node.value.clone()),
            _ => None,
        }
    }
}

impl<K, V, S: Smr> Drop for LockFreeHashMap<K, V, S> {
    fn drop(&mut self) {
        // Exclusive access: free every chained node in every bucket. Unlinked nodes
        // are owned by the reclamation scheme.
        // SAFETY: no concurrent operations and no outstanding protections; every
        // chained node is taken out of exactly one link.
        unsafe {
            for bucket in self.buckets.iter_mut() {
                let mut curr = bucket.take();
                while let Some(mut node) = curr {
                    curr = node.next.take();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::Leaky;
    use std::collections::BTreeMap;
    use std::thread;

    fn leaky_map<K, V>() -> LockFreeHashMap<K, V, Leaky>
    where
        K: Ord + Hash + Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        LockFreeHashMap::with_buckets(Leaky::with_defaults(), 64)
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let map = leaky_map();
        let mut h = map.register();
        assert!(map.is_empty());
        assert!(map.insert(7_u64, "seven", &mut h));
        assert!(
            !map.insert(7, "SEVEN", &mut h),
            "no replace on duplicate insert"
        );
        assert_eq!(map.get(&7, &mut h), Some("seven"));
        assert!(map.contains_key(&7, &mut h));
        assert_eq!(map.get(&8, &mut h), None);
        assert!(map.remove(&7, &mut h));
        assert!(!map.remove(&7, &mut h));
        assert_eq!(map.get(&7, &mut h), None);
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn keys_that_share_a_bucket_coexist() {
        // A single-bucket map forces every key into one chain: the ordered-list
        // logic must still keep them all.
        let map: LockFreeHashMap<u64, u64, Leaky> =
            LockFreeHashMap::with_buckets(Leaky::with_defaults(), 1);
        let mut h = map.register();
        for key in 0..100_u64 {
            assert!(map.insert(key, key * 10, &mut h));
        }
        assert_eq!(map.len(), 100);
        for key in 0..100_u64 {
            assert_eq!(map.get(&key, &mut h), Some(key * 10));
        }
        for key in (0..100_u64).step_by(2) {
            assert!(map.remove(&key, &mut h));
        }
        assert_eq!(map.len(), 50);
        for key in 0..100_u64 {
            assert_eq!(map.contains_key(&key, &mut h), key % 2 == 1);
        }
    }

    #[test]
    fn matches_reference_map_on_mixed_operations() {
        let map = leaky_map();
        let mut h = map.register();
        let mut reference = BTreeMap::new();
        let mut state = 0x9E37_79B9_7F4A_7C15_u64;
        for _ in 0..4_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 128;
            match state % 3 {
                0 => {
                    let expect = !reference.contains_key(&key);
                    if expect {
                        reference.insert(key, key + 1);
                    }
                    assert_eq!(map.insert(key, key + 1, &mut h), expect);
                }
                1 => assert_eq!(map.remove(&key, &mut h), reference.remove(&key).is_some()),
                _ => assert_eq!(map.get(&key, &mut h), reference.get(&key).copied()),
            }
        }
        assert_eq!(map.len(), reference.len());
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let map: LockFreeHashMap<u64, u64, Leaky> =
            LockFreeHashMap::with_buckets(Leaky::with_defaults(), 100);
        assert_eq!(map.bucket_count(), 128);
    }

    #[test]
    fn string_keys_and_values_work() {
        let map: LockFreeHashMap<String, String, Leaky> = leaky_map();
        let mut h = map.register();
        assert!(map.insert("user:1".into(), "alice".into(), &mut h));
        assert!(map.insert("user:2".into(), "bob".into(), &mut h));
        assert_eq!(
            map.get(&"user:1".to_string(), &mut h).as_deref(),
            Some("alice")
        );
        assert!(map.remove(&"user:2".to_string(), &mut h));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn concurrent_disjoint_writers_keep_all_their_entries() {
        let map = Arc::new(LockFreeHashMap::<u64, u64, qsense::QSense>::with_buckets(
            qsense::QSense::new(
                reclaim_core::SmrConfig::default()
                    .with_max_threads(8)
                    .with_hp_per_thread(HASHMAP_HP_SLOTS)
                    .with_rooster_threads(1),
            ),
            256,
        ));
        thread::scope(|scope| {
            for t in 0..4_u64 {
                let map = Arc::clone(&map);
                scope.spawn(move || {
                    let mut h = map.register();
                    for i in 0..1_000_u64 {
                        let key = t * 10_000 + i;
                        assert!(map.insert(key, key, &mut h));
                    }
                    // Remove half of what this thread inserted.
                    for i in (0..1_000_u64).step_by(2) {
                        assert!(map.remove(&(t * 10_000 + i), &mut h));
                    }
                });
            }
        });
        let mut h = map.register();
        assert_eq!(map.len(), 4 * 500);
        for t in 0..4_u64 {
            for i in 0..1_000_u64 {
                let key = t * 10_000 + i;
                assert_eq!(map.contains_key(&key, &mut h), i % 2 == 1, "key {key}");
            }
        }
    }

    #[test]
    fn concurrent_contending_writers_agree_on_winners() {
        // All threads fight over the same small key space; the number of successful
        // inserts minus successful removes must equal the final size.
        use std::sync::atomic::{AtomicI64, Ordering as AOrd};
        let map = Arc::new(LockFreeHashMap::<u64, u64, qsense::QSense>::with_buckets(
            qsense::QSense::new(
                reclaim_core::SmrConfig::default()
                    .with_max_threads(8)
                    .with_hp_per_thread(HASHMAP_HP_SLOTS)
                    .with_rooster_threads(1),
            ),
            16,
        ));
        let balance = Arc::new(AtomicI64::new(0));
        thread::scope(|scope| {
            for t in 0..4_u64 {
                let map = Arc::clone(&map);
                let balance = Arc::clone(&balance);
                scope.spawn(move || {
                    let mut h = map.register();
                    let mut state = 0x1234_5678_9ABC_DEF0_u64 ^ (t << 32);
                    for _ in 0..5_000 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let key = (state >> 33) % 32;
                        if state.is_multiple_of(2) {
                            if map.insert(key, key, &mut h) {
                                balance.fetch_add(1, AOrd::SeqCst);
                            }
                        } else if map.remove(&key, &mut h) {
                            balance.fetch_sub(1, AOrd::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(
            map.len() as i64,
            balance.load(std::sync::atomic::Ordering::SeqCst)
        );
    }
}
