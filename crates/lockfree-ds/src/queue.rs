//! Lock-free FIFO queue (Michael–Scott) generic over the reclamation scheme.
//!
//! The Michael–Scott queue is the second canonical application of hazard pointers in
//! Michael's paper [25]: `dequeue` dereferences both the dummy head and its
//! successor, so two protection slots per thread are needed (`K = 2`). As with the
//! ordered sets, every operation follows the paper's three integration rules —
//! the RAII [`Guard`] brackets the operation, [`Guard::load_protected`] bundles
//! protect + re-validate before every dereference of a shared node, and the old
//! dummy is retired exactly once through the [`reclaim_core::Unlinked`]
//! capability minted by the winning head CAS.
//!
//! The queue is not part of the paper's evaluation; it demonstrates the §4.2
//! applicability claim beyond ordered sets and feeds the extension benchmarks and
//! the producer/consumer example.

use reclaim_core::{Atomic, Guard, Owned, Smr};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Protection slot for the head (old dummy) during `dequeue`, and for the tail
/// during `enqueue`.
const HP_FIRST: usize = 0;
/// Protection slot for the head's successor during `dequeue`.
const HP_SECOND: usize = 1;

/// Number of protection slots the queue needs per thread (`K` in the paper).
pub const QUEUE_HP_SLOTS: usize = 2;

struct Node<V> {
    /// `None` for the dummy node; the dequeuing thread that wins the head CAS takes
    /// the value out of the *successor* node (which then becomes the new dummy).
    /// `UnsafeCell` because that take happens through a shared pointer — exclusivity
    /// is guaranteed by winning the CAS, not by the type system.
    value: UnsafeCell<Option<V>>,
    next: Atomic<Node<V>>,
}

impl<V> Node<V> {
    fn new(value: Option<V>) -> Node<V> {
        Node {
            value: UnsafeCell::new(value),
            next: Atomic::null(),
        }
    }
}

/// A lock-free first-in-first-out queue (Michael–Scott algorithm) generic over the
/// reclamation scheme.
pub struct MichaelScottQueue<V, S: Smr> {
    head: Atomic<Node<V>>,
    tail: Atomic<Node<V>>,
    /// Element count maintained at enqueue/dequeue time (same rationale as the
    /// stack: a traversal-based count cannot be re-validated safely).
    size: AtomicUsize,
    smr: Arc<S>,
}

// SAFETY: shared concurrent structure; all mutation goes through atomics and the SMR
// protocol. V: Send because values move between threads via the queue.
unsafe impl<V: Send, S: Smr> Send for MichaelScottQueue<V, S> {}
unsafe impl<V: Send, S: Smr> Sync for MichaelScottQueue<V, S> {}

impl<V, S> MichaelScottQueue<V, S>
where
    V: Send + 'static,
    S: Smr,
{
    /// Creates an empty queue using the given reclamation scheme.
    pub fn new(smr: Arc<S>) -> Self {
        // The initial dummy is allocated before any handle exists, so it carries
        // no birth stamp (`Owned::sentinel`); head and tail alias it.
        let head = Atomic::new(Owned::sentinel(Node::new(None)));
        let tail = head.alias();
        Self {
            head,
            tail,
            size: AtomicUsize::new(0),
            smr,
        }
    }

    /// The reclamation scheme this queue was created with.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with the underlying reclamation scheme.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    /// Appends a value at the tail of the queue.
    pub fn enqueue(&self, value: V, handle: &mut S::Handle) {
        let guard = Guard::new(handle);
        let node = Owned::new(Node::new(Some(value)), &guard);
        let mut node = node;
        loop {
            // Rule 2: protect the tail and re-validate it is still the tail
            // before dereferencing it.
            let tail = guard.load_protected(HP_FIRST, &self.tail);
            // SAFETY: `tail` carries a validated protection and is never null
            // (the chain always ends in the dummy or a live node).
            let tail_node = unsafe { tail.as_ref() }.expect("tail is never null");
            let next = tail_node.next.load(&guard);
            if !next.is_null() {
                // The tail pointer lags behind; help it along and retry.
                let _ = self.tail.cas(tail, next);
                continue;
            }
            // Pause point: tail observed with a null successor, link CAS
            // pending — dequeues of the current tail fit in this window.
            crate::interleave::hit("queue::enqueue::pre_link_cas");
            match tail_node.next.cas_link(next, node) {
                Ok(linked) => {
                    // Link succeeded; swing the tail (failure means someone
                    // helped us).
                    let _ = self.tail.cas(tail, linked);
                    self.size.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err((_, returned)) => node = returned,
            }
        }
    }

    /// Removes and returns the oldest value, or `None` if the queue is empty.
    pub fn dequeue(&self, handle: &mut S::Handle) -> Option<V> {
        let guard = Guard::new(handle);
        loop {
            let head = guard.load_protected(HP_FIRST, &self.head);
            let tail = self.tail.load(&guard);
            // SAFETY: `head` carries a validated protection; the head link is
            // never null.
            let head_node = unsafe { head.as_ref() }.expect("head is never null");
            let next = head_node.next.load(&guard);
            if next.is_null() {
                return None; // empty: only the dummy remains
            }
            // Protect the successor before touching it, and re-validate through
            // the head link: if the head word is unchanged, `next` has not been
            // unlinked (a node is only unlinked by a head CAS that removes its
            // predecessor — and any such CAS bumps the head word's version).
            guard.protect_shared(HP_SECOND, next);
            if self.head.load(&guard) != head {
                continue;
            }
            if head.ptr_eq(tail) {
                // The tail lags behind the real last node; help and retry.
                let _ = self.tail.cas(tail, next);
                continue;
            }
            // Pause point: head and successor validated, unlink CAS pending —
            // the Michael–Scott ABA window a competing dequeue crosses.
            crate::interleave::hit("queue::dequeue::pre_unlink_cas");
            // SAFETY: the head link is the sole path by which new observers
            // reach the old dummy, so winning this CAS unlinks it; the minted
            // `Unlinked` is the unique retire capability.
            match unsafe { self.head.cas_unlink(head, next) } {
                Ok((unlinked, _)) => {
                    self.size.fetch_sub(1, Ordering::Relaxed);
                    // This thread won the head CAS: it has exclusive right to
                    // take the value out of `next` (the new dummy) and must
                    // retire the old dummy.
                    // SAFETY: `next` is protected (slot HP_SECOND) and was
                    // re-validated as the successor of the then-head, so it
                    // cannot have been reclaimed; only the CAS winner takes its
                    // value, so the `UnsafeCell` access is exclusive.
                    let next_node = unsafe { next.as_ref() }.expect("successor is non-null");
                    let value = unsafe { (*next_node.value.get()).take() };
                    debug_assert!(
                        value.is_some(),
                        "a linked non-dummy node always has a value"
                    );
                    // The old dummy's value slot is `None`, so its destructor
                    // drops nothing extra.
                    unlinked.retire(&guard);
                    return value;
                }
                Err(_) => continue,
            }
        }
    }

    /// True if the queue contains no elements at the moment of the call.
    pub fn is_empty(&self) -> bool {
        self.size.load(Ordering::Relaxed) == 0
    }

    /// Number of elements currently in the queue (maintained counter; exact when
    /// quiescent).
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }
}

impl<V, S: Smr> Drop for MichaelScottQueue<V, S> {
    fn drop(&mut self) {
        // Exclusive access: free the dummy and every linked node, dropping any values
        // still owned by the queue. Unlinked (dequeued) dummies are owned by the
        // reclamation scheme. The tail link aliases a node in the head chain and
        // must not be taken too.
        // SAFETY: `&mut self` means no concurrent operations and no outstanding
        // protections; every chained node is taken out of exactly one link.
        unsafe {
            let mut curr = self.head.take();
            while let Some(mut node) = curr {
                curr = node.next.take();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::Leaky;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn leaky_queue<V: Send + 'static>() -> MichaelScottQueue<V, Leaky> {
        MichaelScottQueue::new(Leaky::with_defaults())
    }

    #[test]
    fn enqueue_dequeue_is_fifo() {
        let queue = leaky_queue();
        let mut h = queue.register();
        assert!(queue.dequeue(&mut h).is_none());
        assert!(queue.is_empty());
        for i in 0..5 {
            queue.enqueue(i, &mut h);
        }
        assert_eq!(queue.len(), 5);
        for i in 0..5 {
            assert_eq!(queue.dequeue(&mut h), Some(i));
        }
        assert!(queue.dequeue(&mut h).is_none());
        assert!(queue.is_empty());
    }

    #[test]
    fn interleaved_operations_keep_order_per_producer() {
        let queue = leaky_queue();
        let mut h = queue.register();
        queue.enqueue("a1", &mut h);
        queue.enqueue("a2", &mut h);
        assert_eq!(queue.dequeue(&mut h), Some("a1"));
        queue.enqueue("a3", &mut h);
        assert_eq!(queue.dequeue(&mut h), Some("a2"));
        assert_eq!(queue.dequeue(&mut h), Some("a3"));
    }

    #[test]
    fn values_are_dropped_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let queue = leaky_queue();
            let mut h = queue.register();
            for _ in 0..10 {
                queue.enqueue(Counted(Arc::clone(&drops)), &mut h);
            }
            for _ in 0..4 {
                assert!(queue.dequeue(&mut h).is_some());
            }
            assert_eq!(drops.load(Ordering::SeqCst), 4);
            // The remaining 6 values drop with the queue.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_every_element() {
        let queue = Arc::new(MichaelScottQueue::<u64, qsense::QSense>::new(
            qsense::QSense::new(
                reclaim_core::SmrConfig::default()
                    .with_max_threads(8)
                    .with_hp_per_thread(QUEUE_HP_SLOTS)
                    .with_rooster_threads(1),
            ),
        ));
        const PER_THREAD: u64 = 2_000;
        const PRODUCERS: u64 = 3;
        let consumed: Vec<u64> = thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let queue = Arc::clone(&queue);
                scope.spawn(move || {
                    let mut h = queue.register();
                    for i in 0..PER_THREAD {
                        queue.enqueue(p * PER_THREAD + i, &mut h);
                    }
                });
            }
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    scope.spawn(move || {
                        let mut h = queue.register();
                        let mut got = Vec::new();
                        let mut idle = 0;
                        while idle < 1_000 {
                            match queue.dequeue(&mut h) {
                                Some(v) => {
                                    got.push(v);
                                    idle = 0;
                                }
                                None => {
                                    idle += 1;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect()
        });
        let mut h = queue.register();
        let mut all = consumed;
        while let Some(v) = queue.dequeue(&mut h) {
            all.push(v);
        }
        assert_eq!(all.len() as u64, PRODUCERS * PER_THREAD);
        let unique: HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len() as u64, PRODUCERS * PER_THREAD, "no duplicates");
    }

    #[test]
    fn per_producer_fifo_order_is_preserved_under_concurrency() {
        // FIFO per producer: if a consumer sees two values from the same producer,
        // they must appear in increasing sequence order.
        let queue = Arc::new(MichaelScottQueue::<(u64, u64), Leaky>::new(
            Leaky::with_defaults(),
        ));
        let output: Vec<(u64, u64)> = thread::scope(|scope| {
            for p in 0..2_u64 {
                let queue = Arc::clone(&queue);
                scope.spawn(move || {
                    let mut h = queue.register();
                    for i in 0..3_000_u64 {
                        queue.enqueue((p, i), &mut h);
                    }
                });
            }
            let consumer = {
                let queue = Arc::clone(&queue);
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut got = Vec::new();
                    let mut idle = 0;
                    while idle < 2_000 {
                        match queue.dequeue(&mut h) {
                            Some(v) => {
                                got.push(v);
                                idle = 0;
                            }
                            None => idle += 1,
                        }
                    }
                    got
                })
            };
            consumer.join().unwrap()
        });
        let mut last_seen = [None::<u64>; 2];
        for (producer, seq) in output {
            let last = &mut last_seen[producer as usize];
            if let Some(prev) = *last {
                assert!(
                    seq > prev,
                    "producer {producer} order violated: {seq} after {prev}"
                );
            }
            *last = Some(seq);
        }
    }
}
