//! Lock-free skip-list set (Fraser / Herlihy–Shavit style) on **versioned links**.
//!
//! The skip list the paper evaluates (§7.1, "a lock-free skip list [11]"): a tower of
//! Harris-style lists. Each node owns `height` forward pointers; level 0 holds every
//! element, upper levels are express lanes. Membership is decided at level 0.
//!
//! * **Logical deletion** marks every level's link word, top-down; a node is
//!   logically deleted once its level-0 link is marked, and the thread whose CAS
//!   marks level 0 owns the deletion.
//! * **Physical deletion** is performed by `find`: any traversal that encounters a
//!   marked node snips it out of the level it is traversing.
//! * **Reclamation**: the owning deleter sweeps the victim out of every level,
//!   *fences* the upper levels (below), then retires it exactly once.
//!
//! ## Versioned links and the upper-level re-link race
//!
//! Every link is a [`VersionedAtomic`](crate::tagged::VersionedAtomic): pointer +
//! mark + a per-link version that every successful CAS bumps. The version is what
//! closes the classic HP-integration race this file used to document as a "known
//! caveat":
//!
//! > between `insert`'s per-level validation (`succs[0] == node`, observed by a
//! > `find`) and its `pred.next[level]` CAS, a complete `remove` — mark all
//! > levels, sweep, retire — can slip in; the CAS then re-links a **retired**
//! > node at an upper level, and a later traversal can validate a protection for
//! > (and dereference) memory the scheme is free to reclaim.
//!
//! Pointer-equality CAS cannot see that window: the CASed link (`pred`, level
//! `L ≥ 1`) is typically *untouched* by the remove, whose snips happen at the
//! levels the victim is actually linked at. Two cooperating rules close it:
//!
//! 1. **Validate-on-link** (`insert`, phase 2): the link CAS's expected value is
//!    the full [`LinkWord`](crate::tagged::LinkWord) — pointer *and version* —
//!    observed by the very traversal that validated `succs[0] == node`. The CAS
//!    succeeds only if the pred link was never modified in between.
//! 2. **Upper-level fencing** (`remove`, phase 3): one sweep pass unlinks the
//!    victim from every level — walking *through equal-key runs*, because a
//!    marked victim can transiently hide behind an equal-key node that a plain
//!    `find` stops short of — and, being top-down, ends with the victim's
//!    permanent absence from level 0. The deleter then bumps the version of the
//!    canonical pred link at every upper level of the victim's tower, each CAS
//!    expecting the exact word the sweep last observed there; a successful bump
//!    certifies the link was untouched from the sweep's visit until after the
//!    level-0 unlink and poisons every older snapshot, and any insert
//!    validating later observes `succs[0] != node` and stops linking — so once
//!    the fence completes, **no level can re-acquire the victim**, and retiring
//!    it is sound under every scheme (HP, Cadence, QSense, HE: a protection can
//!    only be validated through a link the victim is still reachable from;
//!    QSBR/EBR were already covered by grace periods). Victims of height 1 skip
//!    all of this: no upper level ever existed for them.
//!
//! The full interleaving argument lives in `reclaim-core`'s crate docs
//! ("Skip-list linking safety argument"); the deterministic regression schedule
//! lives in `tests/interleaving_harness.rs`, driven through this file's
//! [`interleave`](crate::interleave) pause points.
//!
//! ## Hazard-pointer budget
//!
//! With `MAX_HEIGHT = 16` levels, a traversal keeps one predecessor and one successor
//! protected per level plus one cursor slot: `2 × 16 + 1 = 33` slots
//! ([`SKIPLIST_HP_SLOTS`]). This matches the paper's observation that its skip list
//! uses up to 35 hazard pointers per thread — and is exactly why the gap between
//! QSense and QSBR is largest on the skip list (each protection is a store even if it
//! is fence-free).

use crate::keyspace::KeySlot;
use crate::tagged::{LinkWord, VersionedAtomic};
use rand::Rng;
use reclaim_core::{Era, Guard, Smr, NO_BIRTH_ERA};
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Maximum tower height. 2^16 ≫ the paper's 20 000-key skip list, so towers this
/// tall are effectively never generated but the bound keeps the protection budget
/// fixed.
pub const MAX_HEIGHT: usize = 16;

/// Number of protection slots a traversal needs per thread.
pub const SKIPLIST_HP_SLOTS: usize = 2 * MAX_HEIGHT + 2;

/// Slot protecting the predecessor retained for `level`.
#[inline]
fn pred_slot(level: usize) -> usize {
    2 * level
}

/// Slot protecting the successor retained for `level`. The phase-3 sweep reuses
/// it for its equal-run walking predecessor (the successor is not retained
/// there), so the budget stays [`SKIPLIST_HP_SLOTS`].
#[inline]
fn succ_slot(level: usize) -> usize {
    2 * level + 1
}

/// Scratch slot protecting the traversal cursor.
const HP_CURSOR: usize = 2 * MAX_HEIGHT;

/// Slot protecting the node an `insert` is currently publishing/linking, or the
/// victim a `remove` is deleting. It must be distinct from every slot `find`
/// uses: both operations re-run `find` (which overwrites the cursor and
/// pred/succ slots) while they still need that node to stay unreclaimed.
const HP_NODE: usize = 2 * MAX_HEIGHT + 1;

struct Node<K> {
    key: KeySlot<K>,
    height: usize,
    /// Era the node was allocated in (`SmrHandle::alloc_node`); immutable after
    /// allocation, read back by the level-0 deletion winner at the retire site.
    birth_era: Era,
    next: [VersionedAtomic<Node<K>>; MAX_HEIGHT],
}

impl<K> Node<K> {
    fn alloc(key: KeySlot<K>, height: usize, birth_era: Era) -> *mut Node<K> {
        let node = Box::into_raw(Box::new(Node {
            key,
            height,
            birth_era,
            next: std::array::from_fn(|_| VersionedAtomic::new(std::ptr::null_mut())),
        }));
        crate::oracle::register(node);
        node
    }
}

/// Traversal result: per-level predecessors and successors around the search
/// key, plus the exact pred link word each `(pred, succ)` pair was observed
/// through — the evidence the validate-on-link CAS presents.
struct FindResult<K> {
    preds: [*mut Node<K>; MAX_HEIGHT],
    succs: [*mut Node<K>; MAX_HEIGHT],
    pred_links: [LinkWord<Node<K>>; MAX_HEIGHT],
    found: bool,
}

/// Phase-3 sweep result: the canonical (strictly-less) predecessor and the
/// latest observed (or self-written, after a snip) word of its link per level —
/// the evidence the fence pass CASes against.
struct SweepResult<K> {
    preds: [*mut Node<K>; MAX_HEIGHT],
    pred_links: [LinkWord<Node<K>>; MAX_HEIGHT],
}

/// A lock-free sorted set backed by a skip list.
pub struct LockFreeSkipList<K, S: Smr> {
    head: Box<Node<K>>,
    smr: Arc<S>,
}

// SAFETY: same argument as for the linked list — all shared mutation is atomic and
// reclamation follows the SMR protocol.
unsafe impl<K: Send + Sync, S: Smr> Send for LockFreeSkipList<K, S> {}
unsafe impl<K: Send + Sync, S: Smr> Sync for LockFreeSkipList<K, S> {}

impl<K, S> LockFreeSkipList<K, S>
where
    K: Ord + Send + Sync + 'static,
    S: Smr,
{
    /// Creates an empty skip list using the given reclamation scheme.
    ///
    /// # Panics
    ///
    /// Panics if the scheme's configured `hp_per_thread` is smaller than
    /// [`SKIPLIST_HP_SLOTS`] — the protection discipline needs one slot per retained
    /// reference, exactly as the paper's methodology (§3.2, step 3) prescribes.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: Box::new(Node {
                key: KeySlot::NegInf,
                height: MAX_HEIGHT,
                birth_era: NO_BIRTH_ERA,
                next: std::array::from_fn(|_| VersionedAtomic::new(std::ptr::null_mut())),
            }),
            smr,
        }
    }

    /// The reclamation scheme this skip list was created with.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with the underlying reclamation scheme.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    fn head_ptr(&self) -> *mut Node<K> {
        (&*self.head) as *const Node<K> as *mut Node<K>
    }

    fn random_height() -> usize {
        // Geometric distribution with p = 1/2, capped at MAX_HEIGHT.
        let mut rng = rand::thread_rng();
        let mut height = 1;
        while height < MAX_HEIGHT && rng.gen_bool(0.5) {
            height += 1;
        }
        height
    }

    /// Core traversal: computes per-level predecessors/successors for `key`,
    /// snipping every marked node it encounters, and protects each retained
    /// reference. The returned `pred_links[level]` is the exact word
    /// `preds[level].next[level]` held when the position was last validated
    /// (with `ptr() == succs[level]`) — the evidence insert's validate-on-link
    /// CAS presents. It is marked only in the deleted-pred/null-successor case
    /// (see the loop comment below), which every CAS consumer must refuse.
    fn find(&self, key: &K, guard: &Guard<'_, S::Handle>) -> FindResult<K> {
        let head = self.head_ptr();
        'retry: loop {
            let mut preds = [head; MAX_HEIGHT];
            let mut succs = [std::ptr::null_mut(); MAX_HEIGHT];
            let mut pred_links = [LinkWord::null(); MAX_HEIGHT];
            let mut pred = head;
            for level in (0..MAX_HEIGHT).rev() {
                // SAFETY: `pred` is the head sentinel or a node protected in a
                // pred slot from this or the level above.
                let mut w = unsafe { &*pred }.next[level].load(Ordering::Acquire);
                loop {
                    // `w` can be marked only on a level's first iteration (the
                    // pred carried down from above was logically deleted at this
                    // level): with a non-null successor the validation below
                    // catches it; with a null successor the position is recorded
                    // *as observed* — the marked word — and the insert CASes
                    // refuse marked expected words, re-finding instead (an
                    // unguarded versioned CAS would otherwise *unmark* the
                    // link). This mirrors the pre-versioned code, which reported
                    // the position and let the pointer-equality CAS fail.
                    let curr = w.ptr();
                    if curr.is_null() {
                        break;
                    }
                    guard.protect_ptr(HP_CURSOR, curr.cast());
                    // Validate: the pred link still leads to `curr` unmarked —
                    // `curr` is reachable and the protection is sound. The
                    // *refreshed* word (same pointer, possibly newer version —
                    // e.g. a concurrent fence bump) becomes the observation this
                    // position reports: traversal tolerates benign version
                    // traffic, while the eventual CAS still demands the exact
                    // word it was handed.
                    // SAFETY: `pred` protected or sentinel as above.
                    let w2 = unsafe { &*pred }.next[level].load(Ordering::Acquire);
                    if w2.ptr() != curr || w2.is_marked() {
                        continue 'retry;
                    }
                    crate::oracle::check(curr, "skiplist::traversal::validated");
                    w = w2;
                    // SAFETY: `curr` protected and validated reachable.
                    let cw = unsafe { &*curr }.next[level].load(Ordering::Acquire);
                    if cw.is_marked() {
                        // Physically remove the logically deleted node at this
                        // level. A successful CAS tells us the link's new word
                        // exactly; on failure some other thread moved the link and
                        // the position must be recomputed.
                        // SAFETY: `pred` protected or sentinel.
                        match unsafe { &*pred }.next[level].compare_exchange(
                            w,
                            cw.ptr(),
                            false,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(new_word) => {
                                w = new_word;
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    // SAFETY: `curr` protected and validated.
                    if unsafe { &*curr }.key.cmp_key(key) == CmpOrdering::Less {
                        pred = curr;
                        guard.protect_ptr(pred_slot(level), curr.cast());
                        w = cw;
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = w.ptr();
                pred_links[level] = w;
                guard.protect_ptr(succ_slot(level), w.ptr().cast());
            }
            let found = !succs[0].is_null()
                // SAFETY: `succs[0]` protected by `succ_slot(0)`.
                && unsafe { &*succs[0] }.key.cmp_key(key) == CmpOrdering::Equal;
            return FindResult {
                preds,
                succs,
                pred_links,
                found,
            };
        }
    }

    /// Returns true if `key` is in the set.
    pub fn contains(&self, key: &K, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        self.find(key, &guard).found
    }

    /// Inserts `key`; returns false if it was already present.
    pub fn insert(&self, key: K, handle: &mut S::Handle) -> bool {
        self.insert_impl(key, Self::random_height(), handle)
    }

    /// Test-only: insert with a forced tower height, so deterministic
    /// interleaving schedules can rely on the node having upper levels.
    #[cfg(feature = "interleave")]
    pub fn insert_with_height(&self, key: K, height: usize, handle: &mut S::Handle) -> bool {
        assert!((1..=MAX_HEIGHT).contains(&height));
        self.insert_impl(key, height, handle)
    }

    /// Test-only: the addresses currently linked at `level`, in list order.
    /// Walks raw link words without dereferencing the final node, so it is safe
    /// to call while the structure is quiescent even if some previously retired
    /// node were still (erroneously) linked.
    #[cfg(feature = "interleave")]
    pub fn level_addrs(&self, level: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut curr = self.head.next[level].load(Ordering::Acquire).ptr();
        while !curr.is_null() {
            out.push(curr as usize);
            // SAFETY: quiescence is the caller's contract; we only read the
            // link word, never the key.
            curr = unsafe { &*curr }.next[level].load(Ordering::Acquire).ptr();
        }
        out
    }

    fn insert_impl(&self, key: K, height: usize, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        let mut key = key;
        // Phase 1: link at level 0 (this is the linearization point of a successful
        // insert).
        let node = loop {
            let result = self.find(&key, &guard);
            if result.found {
                return false;
            }
            if result.pred_links[0].is_marked() {
                // The level-0 pred was deleted under the traversal (possible
                // only with a null successor — see `find`): re-find rather than
                // CAS a marked link.
                continue;
            }
            let node = Node::alloc(KeySlot::Key(key), height, guard.alloc_era());
            // Protect the node *before* publishing it. The protection is issued
            // while the node is still private — hence before any possible retire —
            // so every scan that could free it is guaranteed to observe the hazard
            // pointer (for HP via the publication fence, for Cadence/QSense via the
            // rooster visibility bound, which the deferred-reclamation age always
            // outwaits). Protecting only *after* the CAS below would leave a window
            // in which a concurrent remover unlinks, retires and frees the node.
            guard.protect_ptr(HP_NODE, node.cast());
            // Pre-link the new node's forward pointers to the successors observed by
            // the traversal. The node is still private, so plain stores are fine.
            for level in 0..height {
                // SAFETY: `node` is private until the CAS below publishes it.
                unsafe { &*node }.next[level].store_private(result.succs[level], Ordering::Relaxed);
            }
            // SAFETY: `preds[0]` is the sentinel or protected by `pred_slot(0)`.
            match unsafe { &*result.preds[0] }.next[0].compare_exchange(
                result.pred_links[0],
                node,
                false,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break node,
                Err(_) => {
                    // Never published: reclaim directly and retry.
                    crate::oracle::deregister(node);
                    // Sanctioned free path: failed-insert rollback of a private node.
                    #[allow(clippy::disallowed_methods)]
                    // SAFETY: `node` was never shared.
                    let boxed = unsafe { Box::from_raw(node) };
                    match boxed.key {
                        KeySlot::Key(k) => key = k,
                        _ => unreachable!("inserted nodes always carry a real key"),
                    }
                }
            }
        };

        // Phase 2: link the upper levels. Failures here never affect membership —
        // they only cost express-lane shortcuts — but each level is retried until it
        // is linked or the node is observed logically deleted.
        //
        // `node` stays protected in `HP_NODE` for the rest of the operation: the
        // slot was published while the node was still private and `find` never
        // touches it, so even a concurrent removal cannot get the node *freed* while
        // we still read it (including the key borrowed from it below).
        // SAFETY: `node` protected as described; reading its immutable key is safe.
        let key_ref: &K = match unsafe { &(*node).key } {
            KeySlot::Key(k) => k,
            _ => unreachable!("inserted nodes always carry a real key"),
        };
        'levels: for level in 1..height {
            loop {
                let result = self.find(key_ref, &guard);
                if result.succs[0] != node {
                    // The node is no longer what level 0 holds for this key: a
                    // concurrent remove unlinked it (or replaced it with a fresh
                    // insert). Stop linking — membership was already linearized at
                    // the level-0 CAS, upper levels are only shortcuts — and never
                    // re-link a node whose removal may have begun.
                    break 'levels;
                }
                // SAFETY: `node` is protected (HP_NODE); loads of its links are safe.
                let node_w = unsafe { &*node }.next[level].load(Ordering::Acquire);
                if node_w.is_marked() {
                    // A concurrent remove already claimed the node: stop linking.
                    break 'levels;
                }
                let succ = result.succs[level];
                if succ == node {
                    // Already linked at this level by this loop's previous pass.
                    break;
                }
                if node_w.ptr() != succ
                    // SAFETY: the pointer was validated (or is hazard-protected) by the surrounding traversal and nodes are only freed through SMR.
                    && unsafe { &*node }.next[level]
                        .compare_exchange(node_w, succ, false, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                {
                    // The node's pointer changed under us (a concurrent marking);
                    // re-evaluate.
                    continue;
                }
                // Avoid knowingly linking to a logically deleted successor.
                // SAFETY: `succ` is protected by `succ_slot(level)`.
                if !succ.is_null()
                    && unsafe { &*succ }.next[level]
                        .load(Ordering::Acquire)
                        .is_marked()
                {
                    continue;
                }
                if result.pred_links[level].is_marked() {
                    // Deleted pred (null-successor case, see `find`): never CAS
                    // a marked link — re-find.
                    continue;
                }
                // Pause point: the remove-between-validate-and-CAS window. A
                // complete `remove` of `node` driven through here is the
                // upper-level re-link race the interleaving harness forces.
                crate::interleave::hit("skiplist::insert::upper::pre_link_cas");
                // Validate-on-link: the expected value is the full word (pointer +
                // version) the traversal above observed while it also validated
                // `succs[0] == node`. A remove that completed in between has
                // either snipped through this very link or bumped its version in
                // the fence pass — either way the CAS fails and the loop
                // re-validates from scratch, observing the removal.
                // SAFETY: `preds[level]` is the sentinel or protected.
                if unsafe { &*result.preds[level] }.next[level]
                    .compare_exchange(
                        result.pred_links[level],
                        node,
                        false,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
        true
    }

    /// Phase-3 traversal of `remove`: like `find`, but at every level it keeps
    /// walking through the *equal-key run* (nodes whose key equals `key`),
    /// snipping marked nodes as it goes — so a marked victim hiding behind an
    /// equal-key node (which `find` stops short of) is still found and
    /// unlinked. A completed pass guarantees the victim was unlinked from
    /// level 0 no later than the pass's level-0 visit (the walk is top-down, so
    /// level 0 comes last), and returns the canonical strictly-less predecessor
    /// plus the latest observed (or self-written, after a snip) word of its
    /// link per level — the words the fence pass validates against.
    ///
    /// Slot discipline: the canonical predecessor stays in `pred_slot(level)`
    /// for the rest of the operation (the fence pass CASes through it);
    /// equal-run walking predecessors rotate through `succ_slot(level)`, which
    /// phase 3 does not otherwise use.
    fn sweep(
        &self,
        key: &K,
        victim: *mut Node<K>,
        height: usize,
        guard: &Guard<'_, S::Handle>,
    ) -> SweepResult<K> {
        let head = self.head_ptr();
        'retry: loop {
            let mut preds = [head; MAX_HEIGHT];
            let mut pred_links = [LinkWord::null(); MAX_HEIGHT];
            let mut pred = head;
            for level in (0..MAX_HEIGHT).rev() {
                // Canonical position: the last strictly-less node and the word it
                // was passed through; fixed the first time an equal-key node is
                // reached.
                let mut canonical: Option<(*mut Node<K>, LinkWord<Node<K>>)> = None;
                // SAFETY: `pred` is the sentinel or protected (pred slot of this
                // or an upper level).
                let mut w = unsafe { &*pred }.next[level].load(Ordering::Acquire);
                loop {
                    // Unlike `find`, a marked `w` (the carried-down pred was
                    // logically deleted at this level) must RESTART the sweep:
                    // recording the dead node as the canonical predecessor would
                    // make the fence bump the dead link while a stale inserter
                    // may hold the *live* canonical pred's word — the one link
                    // the fence exists to poison. (`find` can tolerate it
                    // because its consumers refuse marked pred words.) The
                    // restart always progresses: marking is top-down, so a pred
                    // marked here is already marked one level up, where the
                    // fresh walk snips it instead of carrying it down.
                    if w.is_marked() {
                        continue 'retry;
                    }
                    let curr = w.ptr();
                    if curr.is_null() {
                        break;
                    }
                    guard.protect_ptr(HP_CURSOR, curr.cast());
                    // Same refresh-on-validate as `find`: tolerate version-only
                    // traffic, report the freshest validated word.
                    // SAFETY: `pred` protected or sentinel.
                    let w2 = unsafe { &*pred }.next[level].load(Ordering::Acquire);
                    if w2.ptr() != curr || w2.is_marked() {
                        continue 'retry;
                    }
                    crate::oracle::check(curr, "skiplist::traversal::validated");
                    w = w2;
                    // SAFETY: `curr` protected and validated reachable.
                    let cw = unsafe { &*curr }.next[level].load(Ordering::Acquire);
                    if cw.is_marked() {
                        // A marked node (possibly the victim itself): snip it. If
                        // the snip goes through the canonical link, the returned
                        // word is the snip's own result, so a later successful
                        // fence bump proves no re-link slipped in after it.
                        // SAFETY: `pred` protected or sentinel.
                        match unsafe { &*pred }.next[level].compare_exchange(
                            w,
                            cw.ptr(),
                            false,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(new_word) => {
                                w = new_word;
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    // SAFETY: `curr` protected and validated.
                    match unsafe { &*curr }.key.cmp_key(key) {
                        CmpOrdering::Less => {
                            pred = curr;
                            guard.protect_ptr(pred_slot(level), curr.cast());
                            w = cw;
                        }
                        CmpOrdering::Equal => {
                            // An unmarked equal-key node: another tenant of the
                            // key (the victim is fully marked by phases 1–2).
                            // Above the victim's tower nothing can hide the
                            // victim, so the walk stops like `find`; within the
                            // tower's levels, record the canonical position
                            // once, then walk through the run so nothing can
                            // hide behind it.
                            debug_assert!(curr != victim, "victim must be marked");
                            if level >= height {
                                break;
                            }
                            if canonical.is_none() {
                                canonical = Some((pred, w));
                            }
                            pred = curr;
                            guard.protect_ptr(succ_slot(level), curr.cast());
                            w = cw;
                        }
                        CmpOrdering::Greater => break,
                    }
                }
                let (cp, cw) = canonical.unwrap_or((pred, w));
                preds[level] = cp;
                pred_links[level] = cw;
                // Descend from the canonical (strictly-less) predecessor so the
                // next level's walk covers the whole equal-key region. It is
                // protected in the pred slot of this or a higher level (or is
                // the sentinel).
                pred = cp;
            }
            return SweepResult { preds, pred_links };
        }
    }

    /// Sweep-and-fence loop of `remove`'s phase 3 for victims with upper levels
    /// (see the narration at the call site): sweeps, then bumps every upper
    /// level's canonical pred link against the sweep's observed words; retries
    /// the whole pass on any interference.
    fn fence(&self, key: &K, victim: *mut Node<K>, height: usize, guard: &Guard<'_, S::Handle>) {
        'fence: loop {
            let sweep = self.sweep(key, victim, height, guard);
            for level in 1..height {
                // SAFETY: `preds[level]` is the sentinel or still protected in
                // the pred slot of this *or a higher* level since the sweep
                // above (a canonical pred carried down without a Less-step at
                // this level was protected where it was last advanced, and
                // lower-level iterations never overwrite higher pred slots).
                if unsafe { &*sweep.preds[level] }.next[level]
                    .bump_version(sweep.pred_links[level], Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    continue 'fence;
                }
            }
            return;
        }
    }

    /// Removes `key`; returns false if it was not present.
    pub fn remove(&self, key: &K, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        let result = self.find(key, &guard);
        if !result.found {
            return false;
        }
        let victim = result.succs[0];
        // Hold the victim in the dedicated node slot for the rest of the operation:
        // `find` never touches it, so the phase-3 sweeps below cannot leave the
        // victim unprotected while this thread still dereferences it. (The
        // protection is published while the victim is validated reachable by the
        // find above, so scans honour it.)
        guard.protect_ptr(HP_NODE, victim.cast());
        // SAFETY: `victim` protected.
        let height = unsafe { &*victim }.height;

        // Phase 1: logically delete the upper levels, top-down.
        for level in (1..height).rev() {
            loop {
                // SAFETY: `victim` protected.
                let w = unsafe { &*victim }.next[level].load(Ordering::Acquire);
                if w.is_marked() {
                    break;
                }
                // SAFETY: `victim` protected.
                if unsafe { &*victim }.next[level]
                    .try_mark(w, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
        }

        // Phase 2: logically delete level 0 — the linearization point. The thread
        // whose CAS succeeds owns the deletion and is the only one to retire.
        loop {
            // SAFETY: `victim` protected.
            let w = unsafe { &*victim }.next[0].load(Ordering::Acquire);
            if w.is_marked() {
                // Another remover won; this call observes the key as absent.
                return false;
            }
            // SAFETY: `victim` protected.
            if unsafe { &*victim }.next[0]
                .try_mark(w, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Phase 3: physical removal, then upper-level fencing, then retire.
            //
            // One `sweep` pass walks every level through the whole equal-key
            // run, snipping the (marked) victim wherever it is still linked —
            // also when it hides behind an equal-key node that a plain `find`
            // stops at — and, because the walk is top-down, ends with the
            // victim's *permanent* absence from level 0 (a node is never
            // re-linked at level 0). The fence pass then bumps the version of
            // the canonical pred link at every upper level of the victim's
            // tower, each CAS expecting the exact word the sweep last observed
            // (or wrote) there. A successful bump therefore certifies the link
            // was untouched from the sweep's visit until a moment *after* the
            // level-0 unlink — so every stale insert capture of that link
            // predates the bump and fails its validate-on-link CAS, while any
            // insert validating later observes `succs[0] != node` and never
            // CASes. A failed bump means something (possibly a stale re-link of
            // the victim) touched the link: re-sweep — which snips any
            // re-linked victim — and re-fence. Each stale inserter can disturb
            // a level at most once (its next validation sees the victim gone),
            // so the loop converges.
            if height == 1 {
                // A level-0-only victim has no upper levels: no phase-2 link CAS
                // for it exists anywhere, level 0 never re-links a node, and it
                // cannot hide behind an equal-key node at level 0 (a new
                // equal-key insert can only observe it marked, in which case its
                // `find` snips it rather than linking in front of it). Sweeping
                // until it leaves level 0 is therefore a complete phase 3 — no
                // fence pass needed.
                loop {
                    let r = self.find(key, &guard);
                    if r.succs[0] != victim {
                        break;
                    }
                }
            } else {
                self.fence(key, victim, height, &guard);
            }
            // Pause point: retire is now decided; audits schedule against it.
            crate::interleave::hit("skiplist::remove::pre_retire");
            // SAFETY: the victim is unlinked from every level reachable from the
            // head and every upper-level pred link has been version-fenced, so no
            // stale insert CAS can re-link it and no traversal can validate a new
            // protection for it; it was allocated via `Node::alloc`, and only the
            // level-0 winner — this thread — retires it.
            unsafe { guard.retire_raw(victim, (*victim).birth_era) };
            return true;
        }
    }

    /// Counts the elements currently in the set (level-0 walk; for tests, examples
    /// and benchmark validation).
    pub fn len(&self, handle: &mut S::Handle) -> usize {
        let guard = Guard::new(handle);
        let mut count = 0;
        let mut prev = self.head_ptr();
        // SAFETY: same discipline as `find`, restricted to level 0.
        let mut w = unsafe { &*prev }.next[0].load(Ordering::Acquire);
        loop {
            let curr = w.ptr();
            if curr.is_null() {
                break;
            }
            guard.protect_ptr(HP_CURSOR, curr.cast());
            // SAFETY: the pointer was validated (or is hazard-protected) by the surrounding traversal and nodes are only freed through SMR.
            let w2 = unsafe { &*prev }.next[0].load(Ordering::Acquire);
            if w2.ptr() != curr || w2.is_marked() {
                // Restart on interference.
                count = 0;
                prev = self.head_ptr();
                // SAFETY: the pointer was validated (or is hazard-protected) by the surrounding traversal and nodes are only freed through SMR.
                w = unsafe { &*prev }.next[0].load(Ordering::Acquire);
                continue;
            }
            // SAFETY: `curr` is hazard-protected and was revalidated still linked above.
            let cw = unsafe { &*curr }.next[0].load(Ordering::Acquire);
            if !cw.is_marked() {
                count += 1;
                prev = curr;
                guard.protect_ptr(pred_slot(0), curr.cast());
            }
            w = cw;
        }
        count
    }

    /// True if the set currently holds no elements.
    pub fn is_empty(&self, handle: &mut S::Handle) -> bool {
        self.len(handle) == 0
    }
}

impl<K, S: Smr> Drop for LockFreeSkipList<K, S> {
    fn drop(&mut self) {
        // Exclusive access: free every node still linked at level 0. Unlinked nodes
        // are owned by the reclamation scheme.
        let mut curr = self.head.next[0].load(Ordering::Relaxed).ptr();
        while !curr.is_null() {
            crate::oracle::deregister(curr);
            // Sanctioned free path: structure teardown walk under `&mut self`.
            #[allow(clippy::disallowed_methods)]
            // SAFETY: exclusive access; level 0 links every live node exactly once.
            let boxed = unsafe { Box::from_raw(curr) };
            curr = boxed.next[0].load(Ordering::Relaxed).ptr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::{Leaky, SmrConfig};
    use std::collections::BTreeSet;

    fn leaky_skiplist() -> LockFreeSkipList<u64, Leaky> {
        LockFreeSkipList::new(Leaky::new(SmrConfig::for_skiplist().with_max_threads(8)))
    }

    #[test]
    fn empty_skiplist_contains_nothing() {
        let sl = leaky_skiplist();
        let mut h = sl.register();
        assert!(!sl.contains(&3, &mut h));
        assert_eq!(sl.len(&mut h), 0);
        assert!(sl.is_empty(&mut h));
    }

    #[test]
    fn insert_contains_remove_round_trip() {
        let sl = leaky_skiplist();
        let mut h = sl.register();
        assert!(sl.insert(10, &mut h));
        assert!(!sl.insert(10, &mut h));
        assert!(sl.contains(&10, &mut h));
        assert!(sl.remove(&10, &mut h));
        assert!(!sl.remove(&10, &mut h));
        assert!(!sl.contains(&10, &mut h));
    }

    #[test]
    fn many_keys_stay_consistent() {
        let sl = leaky_skiplist();
        let mut h = sl.register();
        for key in 0..500_u64 {
            assert!(sl.insert(key * 3, &mut h));
        }
        assert_eq!(sl.len(&mut h), 500);
        for key in 0..500_u64 {
            assert!(sl.contains(&(key * 3), &mut h));
            assert!(!sl.contains(&(key * 3 + 1), &mut h));
        }
        for key in (0..500_u64).step_by(2) {
            assert!(sl.remove(&(key * 3), &mut h));
        }
        assert_eq!(sl.len(&mut h), 250);
    }

    #[test]
    fn matches_reference_set_on_mixed_operations() {
        let sl = leaky_skiplist();
        let mut h = sl.register();
        let mut reference = BTreeSet::new();
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 128;
            match state % 3 {
                0 => assert_eq!(sl.insert(key, &mut h), reference.insert(key)),
                1 => assert_eq!(sl.remove(&key, &mut h), reference.remove(&key)),
                _ => assert_eq!(sl.contains(&key, &mut h), reference.contains(&key)),
            }
        }
        assert_eq!(sl.len(&mut h), reference.len());
    }

    #[test]
    fn same_key_churn_single_thread() {
        // Exercises the phase-3 sweep + fence pass on every removal, including
        // re-insertions of the same key right after a remove (fresh node, same
        // key — the configuration the equal-run sweep exists for).
        let sl = leaky_skiplist();
        let mut h = sl.register();
        for round in 0..2000_u64 {
            assert!(sl.insert(42, &mut h), "round {round}: insert");
            assert!(sl.remove(&42, &mut h), "round {round}: remove");
            assert!(!sl.contains(&42, &mut h));
        }
        assert_eq!(sl.len(&mut h), 0);
    }

    #[test]
    fn random_height_is_within_bounds() {
        for _ in 0..1000 {
            let h = LockFreeSkipList::<u64, Leaky>::random_height();
            assert!((1..=MAX_HEIGHT).contains(&h));
        }
    }
}
