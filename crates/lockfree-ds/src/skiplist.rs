//! Lock-free skip-list set (Fraser / Herlihy–Shavit style).
//!
//! The skip list the paper evaluates (§7.1, "a lock-free skip list [11]"): a tower of
//! Harris-style lists. Each node owns `height` forward pointers; level 0 holds every
//! element, upper levels are express lanes. Membership is decided at level 0.
//!
//! * **Logical deletion** marks the low bit of every level's `next` pointer,
//!   top-down; a node is logically deleted once its level-0 pointer is marked, and
//!   the thread whose CAS marks level 0 owns the deletion.
//! * **Physical deletion** is performed by `find`: any traversal that encounters a
//!   marked node snips it out of the level it is traversing.
//! * **Reclamation**: the owning deleter re-runs `find` until the victim no longer
//!   appears in any level's successor array, then retires it (exactly once). As with
//!   the linked list, validation always re-checks that the predecessor's pointer is
//!   unmarked and still points to the protected node, so a traversal standing on a
//!   logically deleted node can never validate a protection acquired through it.
//!
//! ## Hazard-pointer budget
//!
//! With `MAX_HEIGHT = 16` levels, a traversal keeps one predecessor and one successor
//! protected per level plus one cursor slot: `2 × 16 + 1 = 33` slots
//! ([`SKIPLIST_HP_SLOTS`]). This matches the paper's observation that its skip list
//! uses up to 35 hazard pointers per thread — and is exactly why the gap between
//! QSense and QSBR is largest on the skip list (each protection is a store even if it
//! is fence-free).
//!
//! ## Known caveat (shared with the paper's HP integration)
//!
//! Between a `find` that returns an unmarked successor and the insert CAS that links
//! a new node to it, the successor may become logically deleted; the new node then
//! briefly points at a deleted node at some upper level until the next traversal
//! snips it. The deleting thread's "absent from every successor array" check makes
//! retirement overwhelmingly unlikely to race with such a stale link, and the
//! epoch-based fast path (QSBR/QSense) is immune by construction, but classic HP and
//! Cadence share the same theoretical window the original C implementation has. The
//! stress tests in this crate and in `tests/` exercise this path heavily.

use crate::keyspace::KeySlot;
use crate::tagged::{decompose, is_marked, marked, unmarked};
use rand::Rng;
use reclaim_core::{retire_box_with_birth, Era, Smr, SmrHandle, NO_BIRTH_ERA};
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Maximum tower height. 2^16 ≫ the paper's 20 000-key skip list, so towers this
/// tall are effectively never generated but the bound keeps the protection budget
/// fixed.
pub const MAX_HEIGHT: usize = 16;

/// Number of protection slots a traversal needs per thread.
pub const SKIPLIST_HP_SLOTS: usize = 2 * MAX_HEIGHT + 2;

/// Slot protecting the predecessor retained for `level`.
#[inline]
fn pred_slot(level: usize) -> usize {
    2 * level
}

/// Slot protecting the successor retained for `level`.
#[inline]
fn succ_slot(level: usize) -> usize {
    2 * level + 1
}

/// Scratch slot protecting the traversal cursor.
const HP_CURSOR: usize = 2 * MAX_HEIGHT;

/// Slot protecting the node an `insert` is currently publishing/linking. It must
/// be distinct from every slot `find` uses: the upper-level linking phase re-runs
/// `find` (which overwrites the cursor and pred/succ slots) while it still needs
/// the new node — including the key borrowed from it — to stay unreclaimed.
const HP_NODE: usize = 2 * MAX_HEIGHT + 1;

struct Node<K> {
    key: KeySlot<K>,
    height: usize,
    /// Era the node was allocated in (`SmrHandle::alloc_node`); immutable after
    /// allocation, read back by the level-0 deletion winner at the retire site.
    birth_era: Era,
    next: [AtomicPtr<Node<K>>; MAX_HEIGHT],
}

impl<K> Node<K> {
    fn alloc(key: KeySlot<K>, height: usize, birth_era: Era) -> *mut Node<K> {
        Box::into_raw(Box::new(Node {
            key,
            height,
            birth_era,
            next: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }))
    }
}

/// Traversal result: per-level predecessors and successors around the search key.
struct FindResult<K> {
    preds: [*mut Node<K>; MAX_HEIGHT],
    succs: [*mut Node<K>; MAX_HEIGHT],
    found: bool,
}

/// A lock-free sorted set backed by a skip list.
pub struct LockFreeSkipList<K, S: Smr> {
    head: Box<Node<K>>,
    smr: Arc<S>,
}

// SAFETY: same argument as for the linked list — all shared mutation is atomic and
// reclamation follows the SMR protocol.
unsafe impl<K: Send + Sync, S: Smr> Send for LockFreeSkipList<K, S> {}
unsafe impl<K: Send + Sync, S: Smr> Sync for LockFreeSkipList<K, S> {}

impl<K, S> LockFreeSkipList<K, S>
where
    K: Ord + Send + Sync + 'static,
    S: Smr,
{
    /// Creates an empty skip list using the given reclamation scheme.
    ///
    /// # Panics
    ///
    /// Panics if the scheme's configured `hp_per_thread` is smaller than
    /// [`SKIPLIST_HP_SLOTS`] — the protection discipline needs one slot per retained
    /// reference, exactly as the paper's methodology (§3.2, step 3) prescribes.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: Box::new(Node {
                key: KeySlot::NegInf,
                height: MAX_HEIGHT,
                birth_era: NO_BIRTH_ERA,
                next: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            }),
            smr,
        }
    }

    /// The reclamation scheme this skip list was created with.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with the underlying reclamation scheme.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    fn head_ptr(&self) -> *mut Node<K> {
        (&*self.head) as *const Node<K> as *mut Node<K>
    }

    fn random_height() -> usize {
        // Geometric distribution with p = 1/2, capped at MAX_HEIGHT.
        let mut rng = rand::thread_rng();
        let mut height = 1;
        while height < MAX_HEIGHT && rng.gen_bool(0.5) {
            height += 1;
        }
        height
    }

    /// Core traversal: computes per-level predecessors/successors for `key`, snipping
    /// every marked node it encounters, and protects each retained reference.
    fn find(&self, key: &K, handle: &mut S::Handle) -> FindResult<K> {
        let head = self.head_ptr();
        'retry: loop {
            let mut preds = [head; MAX_HEIGHT];
            let mut succs = [std::ptr::null_mut(); MAX_HEIGHT];
            let mut pred = head;
            for level in (0..MAX_HEIGHT).rev() {
                // SAFETY: `pred` is the head sentinel or a node protected in a
                // pred/cursor slot from the level above.
                let mut curr = unmarked(unsafe { &*pred }.next[level].load(Ordering::Acquire));
                loop {
                    if curr.is_null() {
                        break;
                    }
                    handle.protect(HP_CURSOR, curr.cast());
                    // Validate: predecessor unmarked at this level and still linking
                    // to `curr`.
                    // SAFETY: `pred` protected or sentinel as above.
                    if unsafe { &*pred }.next[level].load(Ordering::Acquire) != curr {
                        continue 'retry;
                    }
                    // SAFETY: `curr` protected and validated reachable.
                    let (next, curr_marked) =
                        decompose(unsafe { &*curr }.next[level].load(Ordering::Acquire));
                    if curr_marked {
                        // Physically remove the logically deleted node at this level.
                        // SAFETY: `pred` protected or sentinel.
                        if unsafe { &*pred }.next[level]
                            .compare_exchange(curr, next, Ordering::AcqRel, Ordering::Acquire)
                            .is_err()
                        {
                            continue 'retry;
                        }
                        curr = next;
                        continue;
                    }
                    // SAFETY: `curr` protected and validated.
                    if unsafe { &*curr }.key.cmp_key(key) == CmpOrdering::Less {
                        pred = curr;
                        handle.protect(pred_slot(level), curr.cast());
                        curr = next;
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = curr;
                handle.protect(succ_slot(level), curr.cast());
            }
            let found = !succs[0].is_null()
                // SAFETY: `succs[0]` protected by `succ_slot(0)`.
                && unsafe { &*succs[0] }.key.cmp_key(key) == CmpOrdering::Equal;
            return FindResult {
                preds,
                succs,
                found,
            };
        }
    }

    /// Returns true if `key` is in the set.
    pub fn contains(&self, key: &K, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        let found = self.find(key, handle).found;
        handle.clear_protections();
        handle.end_op();
        found
    }

    /// Inserts `key`; returns false if it was already present.
    pub fn insert(&self, key: K, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        let height = Self::random_height();
        let mut key = key;
        // Phase 1: link at level 0 (this is the linearization point of a successful
        // insert).
        let node = loop {
            let result = self.find(&key, handle);
            if result.found {
                handle.clear_protections();
                handle.end_op();
                return false;
            }
            let node = Node::alloc(KeySlot::Key(key), height, handle.alloc_node());
            // Protect the node *before* publishing it. The protection is issued
            // while the node is still private — hence before any possible retire —
            // so every scan that could free it is guaranteed to observe the hazard
            // pointer (for HP via the publication fence, for Cadence/QSense via the
            // rooster visibility bound, which the deferred-reclamation age always
            // outwaits). Protecting only *after* the CAS below would leave a window
            // in which a concurrent remover unlinks, retires and frees the node.
            handle.protect(HP_NODE, node.cast());
            // Pre-link the new node's forward pointers to the successors observed by
            // the traversal. The node is still private, so plain stores are fine.
            for level in 0..height {
                // SAFETY: `node` is private until the CAS below publishes it.
                unsafe { &*node }.next[level].store(result.succs[level], Ordering::Relaxed);
            }
            // SAFETY: `preds[0]` is the sentinel or protected by `pred_slot(0)`.
            match unsafe { &*result.preds[0] }.next[0].compare_exchange(
                result.succs[0],
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break node,
                Err(_) => {
                    // Never published: reclaim directly and retry.
                    // SAFETY: `node` was never shared.
                    let boxed = unsafe { Box::from_raw(node) };
                    match boxed.key {
                        KeySlot::Key(k) => key = k,
                        _ => unreachable!("inserted nodes always carry a real key"),
                    }
                }
            }
        };

        // Phase 2: link the upper levels. Failures here never affect membership —
        // they only cost express-lane shortcuts — but each level is retried until it
        // is linked or the node is observed logically deleted.
        //
        // `node` stays protected in `HP_NODE` for the rest of the operation: the
        // slot was published while the node was still private and `find` never
        // touches it, so even a concurrent removal cannot get the node *freed* while
        // we still read it (including the key borrowed from it below).
        // SAFETY: `node` protected as described; reading its immutable key is safe.
        let key_ref: &K = match unsafe { &(*node).key } {
            KeySlot::Key(k) => k,
            _ => unreachable!("inserted nodes always carry a real key"),
        };
        'levels: for level in 1..height {
            loop {
                let result = self.find(key_ref, handle);
                if result.succs[0] != node {
                    // The node is no longer what level 0 holds for this key: a
                    // concurrent remove unlinked it (or replaced it with a fresh
                    // insert). Stop linking — membership was already linearized at
                    // the level-0 CAS, upper levels are only shortcuts — and never
                    // re-link a node whose removal may have begun.
                    break 'levels;
                }
                // SAFETY: `node` is protected (HP_NODE); loads of its atomics are safe.
                let node_next = unsafe { &*node }.next[level].load(Ordering::Acquire);
                if is_marked(node_next) {
                    // A concurrent remove already claimed the node: stop linking.
                    break 'levels;
                }
                let succ = result.succs[level];
                if succ == node {
                    // Already linked at this level by a helping traversal.
                    break;
                }
                if node_next != succ
                    && unsafe { &*node }.next[level]
                        .compare_exchange(node_next, succ, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                {
                    // The node's pointer changed under us (marking or helping);
                    // re-evaluate.
                    continue;
                }
                // Avoid knowingly linking to a logically deleted successor.
                // SAFETY: `succ` is protected by `succ_slot(level)`.
                if !succ.is_null()
                    && is_marked(unsafe { &*succ }.next[level].load(Ordering::Acquire))
                {
                    continue;
                }
                // SAFETY: `preds[level]` is the sentinel or protected.
                if unsafe { &*result.preds[level] }.next[level]
                    .compare_exchange(succ, node, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
        }
        handle.clear_protections();
        handle.end_op();
        true
    }

    /// Removes `key`; returns false if it was not present.
    pub fn remove(&self, key: &K, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        let result = self.find(key, handle);
        if !result.found {
            handle.clear_protections();
            handle.end_op();
            return false;
        }
        let victim = result.succs[0];
        // Hold the victim in the dedicated node slot for the rest of the operation:
        // `find` never touches it, so the phase-3 sweeps below cannot leave the
        // victim unprotected while this thread still dereferences it. (The
        // protection is published while the victim is validated reachable by the
        // find above, so scans honour it.)
        handle.protect(HP_NODE, victim.cast());
        let height = unsafe { &*victim }.height;

        // Phase 1: logically delete the upper levels, top-down.
        for level in (1..height).rev() {
            loop {
                // SAFETY: `victim` protected.
                let next = unsafe { &*victim }.next[level].load(Ordering::Acquire);
                if is_marked(next) {
                    break;
                }
                if unsafe { &*victim }.next[level]
                    .compare_exchange(next, marked(next), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
        }

        // Phase 2: logically delete level 0 — the linearization point. The thread
        // whose CAS succeeds owns the deletion and is the only one to retire.
        loop {
            // SAFETY: `victim` protected.
            let next = unsafe { &*victim }.next[0].load(Ordering::Acquire);
            if is_marked(next) {
                // Another remover won; this call observes the key as absent.
                handle.clear_protections();
                handle.end_op();
                return false;
            }
            if unsafe { &*victim }.next[0]
                .compare_exchange(next, marked(next), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Phase 3: physical removal. Re-run `find` until the victim no
                // longer appears among any level's successors — every pass snips
                // it from whatever levels it is still linked at — then retire it.
                loop {
                    let sweep = self.find(key, handle);
                    if !sweep.succs.contains(&victim) {
                        break;
                    }
                }
                // SAFETY: the victim is unlinked from every level reachable from
                // the head (all traversals validate against unmarked predecessor
                // links, so no new protection of it can be validated), it was
                // allocated via `Node::alloc`, and only the level-0 winner — this
                // thread — retires it.
                unsafe { retire_box_with_birth(handle, victim, (*victim).birth_era) };
                handle.clear_protections();
                handle.end_op();
                return true;
            }
        }
    }

    /// Counts the elements currently in the set (level-0 walk; for tests, examples
    /// and benchmark validation).
    pub fn len(&self, handle: &mut S::Handle) -> usize {
        handle.begin_op();
        let mut count = 0;
        let mut prev = self.head_ptr();
        // SAFETY: same discipline as `find`, restricted to level 0.
        let mut curr = unmarked(unsafe { &*prev }.next[0].load(Ordering::Acquire));
        loop {
            if curr.is_null() {
                break;
            }
            handle.protect(HP_CURSOR, curr.cast());
            if unsafe { &*prev }.next[0].load(Ordering::Acquire) != curr {
                // Restart on interference.
                count = 0;
                prev = self.head_ptr();
                curr = unmarked(unsafe { &*prev }.next[0].load(Ordering::Acquire));
                continue;
            }
            let (next, marked_now) = decompose(unsafe { &*curr }.next[0].load(Ordering::Acquire));
            if !marked_now {
                count += 1;
                prev = curr;
                handle.protect(pred_slot(0), curr.cast());
            }
            curr = next;
        }
        handle.clear_protections();
        handle.end_op();
        count
    }

    /// True if the set currently holds no elements.
    pub fn is_empty(&self, handle: &mut S::Handle) -> bool {
        self.len(handle) == 0
    }
}

impl<K, S: Smr> Drop for LockFreeSkipList<K, S> {
    fn drop(&mut self) {
        // Exclusive access: free every node still linked at level 0. Unlinked nodes
        // are owned by the reclamation scheme.
        let mut curr = unmarked(self.head.next[0].load(Ordering::Relaxed));
        while !curr.is_null() {
            // SAFETY: exclusive access; level 0 links every live node exactly once.
            let boxed = unsafe { Box::from_raw(curr) };
            curr = unmarked(boxed.next[0].load(Ordering::Relaxed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::{Leaky, SmrConfig};
    use std::collections::BTreeSet;

    fn leaky_skiplist() -> LockFreeSkipList<u64, Leaky> {
        LockFreeSkipList::new(Leaky::new(SmrConfig::for_skiplist().with_max_threads(8)))
    }

    #[test]
    fn empty_skiplist_contains_nothing() {
        let sl = leaky_skiplist();
        let mut h = sl.register();
        assert!(!sl.contains(&3, &mut h));
        assert_eq!(sl.len(&mut h), 0);
        assert!(sl.is_empty(&mut h));
    }

    #[test]
    fn insert_contains_remove_round_trip() {
        let sl = leaky_skiplist();
        let mut h = sl.register();
        assert!(sl.insert(10, &mut h));
        assert!(!sl.insert(10, &mut h));
        assert!(sl.contains(&10, &mut h));
        assert!(sl.remove(&10, &mut h));
        assert!(!sl.remove(&10, &mut h));
        assert!(!sl.contains(&10, &mut h));
    }

    #[test]
    fn many_keys_stay_consistent() {
        let sl = leaky_skiplist();
        let mut h = sl.register();
        for key in 0..500_u64 {
            assert!(sl.insert(key * 3, &mut h));
        }
        assert_eq!(sl.len(&mut h), 500);
        for key in 0..500_u64 {
            assert!(sl.contains(&(key * 3), &mut h));
            assert!(!sl.contains(&(key * 3 + 1), &mut h));
        }
        for key in (0..500_u64).step_by(2) {
            assert!(sl.remove(&(key * 3), &mut h));
        }
        assert_eq!(sl.len(&mut h), 250);
    }

    #[test]
    fn matches_reference_set_on_mixed_operations() {
        let sl = leaky_skiplist();
        let mut h = sl.register();
        let mut reference = BTreeSet::new();
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 128;
            match state % 3 {
                0 => assert_eq!(sl.insert(key, &mut h), reference.insert(key)),
                1 => assert_eq!(sl.remove(&key, &mut h), reference.remove(&key)),
                _ => assert_eq!(sl.contains(&key, &mut h), reference.contains(&key)),
            }
        }
        assert_eq!(sl.len(&mut h), reference.len());
    }

    #[test]
    fn random_height_is_within_bounds() {
        for _ in 0..1000 {
            let h = LockFreeSkipList::<u64, Leaky>::random_height();
            assert!((1..=MAX_HEIGHT).contains(&h));
        }
    }
}
