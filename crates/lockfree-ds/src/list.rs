//! Lock-free sorted linked-list set (Harris–Michael).
//!
//! This is the linked list the paper evaluates (§7.1, "a lock-free linked list
//! [24]"): Michael's hazard-pointer-compatible variant of Harris's algorithm, the
//! same algorithm the paper's appendix (Algorithms 6 and 7) annotates with QSense
//! calls. Nodes carry a logical-deletion mark in their `next` link word; removal
//! first marks (logical delete) and then unlinks (physical delete), and traversals
//! help unlink any marked node they encounter.
//!
//! ## Reclamation-scheme integration
//!
//! The structure is generic over [`Smr`] and built entirely on the safe guard
//! layer (`reclaim_core::guard`), which renders the paper's three rules (§1.3)
//! as types:
//!
//! 1. the RAII [`Guard`] brackets every operation (`manage_qsense_state`);
//! 2. [`Guard::load_protected`] / [`Guard::protect_word`] publish a protection
//!    (`assign_HP`) and re-validate that the predecessor still links to the
//!    node — a [`Shared`] only exists validated;
//! 3. the node is retired (`free_node_later`) exactly once, through the
//!    [`reclaim_core::Unlinked`] capability minted by whichever thread wins the
//!    physical unlink CAS.
//!
//! Two protection slots are used (`K = 2`, matching the paper): slot 0 for the
//! predecessor, slot 1 for the current node.

use reclaim_core::{Atomic, Guard, Owned, Shared, Smr};
use std::cmp::Ordering as CmpOrdering;
use std::sync::Arc;

/// Hazard-pointer slot protecting the predecessor during traversal.
const HP_PREV: usize = 0;
/// Hazard-pointer slot protecting the current node during traversal.
const HP_CURR: usize = 1;

/// Number of protection slots the list needs per thread (`K` in the paper).
pub const LIST_HP_SLOTS: usize = 2;

struct Node<K> {
    key: K,
    next: Atomic<Node<K>>,
}

/// Result of a traversal: `curr` is the (validated, protected) word of the first
/// node with key ≥ the search key (or null at the end of the list) and `prev` is
/// the link that holds it — the head link or the `next` link of a node protected
/// by slot 0. `curr` doubles as the CAS expected value for `prev`.
struct Search<'g, K> {
    prev: &'g Atomic<Node<K>>,
    curr: Shared<'g, Node<K>>,
}

/// A lock-free sorted set backed by a Harris–Michael linked list.
pub struct HarrisMichaelList<K, S: Smr> {
    head: Atomic<Node<K>>,
    smr: Arc<S>,
}

// SAFETY: the list is a shared concurrent structure; all mutation happens through
// atomics and the SMR protocol. Keys must be Send + Sync because nodes (and hence
// keys) are dropped by whichever thread reclaims them.
unsafe impl<K: Send + Sync, S: Smr> Send for HarrisMichaelList<K, S> {}
unsafe impl<K: Send + Sync, S: Smr> Sync for HarrisMichaelList<K, S> {}

impl<K, S> HarrisMichaelList<K, S>
where
    K: Ord + Send + Sync + 'static,
    S: Smr,
{
    /// Creates an empty list using the given reclamation scheme.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: Atomic::null(),
            smr,
        }
    }

    /// The reclamation scheme this list was created with.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with the underlying reclamation scheme and
    /// returns the handle to pass to this list's operations.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    /// Core traversal (the paper's `search_and_cleanup`): positions on the first
    /// node with key ≥ `key`, unlinking (and retiring) every marked node on the way.
    fn search<'g>(&'g self, key: &K, guard: &'g Guard<'_, S::Handle>) -> Search<'g, K> {
        'retry: loop {
            let mut prev: &'g Atomic<Node<K>> = &self.head;
            // The head link is rooted in `self`, so the protection validated
            // against it is honoured from the start.
            let mut curr = guard.load_protected(HP_CURR, prev);
            loop {
                let Some(node) = (
                    // SAFETY: `curr` carries a validated protection (from
                    // `load_protected` or a successful `protect_word` below)
                    // against `prev`, which is the head link or a link of the
                    // node protected by slot HP_PREV.
                    unsafe { curr.as_ref() }
                ) else {
                    return Search { prev, curr };
                };
                let next = node.next.load(guard);
                if next.is_marked() {
                    // `curr` is logically deleted: help unlink it (physical
                    // delete). The marked outgoing link freezes `curr`'s
                    // successor, so `next` is still accurate if the CAS wins.
                    // SAFETY: after the mark settled, `prev` is the sole
                    // remaining path by which new observers reach `curr`, and
                    // the versioned CAS makes a stale expected word fail — only
                    // one helper can win, so exactly one `Unlinked` is minted.
                    match unsafe { prev.cas_unlink(curr, next.unmarked()) } {
                        Ok((unlinked, after)) => {
                            // This thread performed the unlink, so it (and only
                            // it) retires the node — rule 3.
                            unlinked.retire(guard);
                            // Continue from the excision: protect the successor
                            // and re-validate against the updated link word.
                            match guard.protect_word(HP_CURR, prev, after) {
                                Ok(sh) => curr = sh,
                                Err(_) => continue 'retry,
                            }
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                match node.key.cmp(key) {
                    CmpOrdering::Less => {
                        // The node that becomes the predecessor stays protected
                        // by copying its (still live) protection into slot
                        // HP_PREV before HP_CURR moves on.
                        guard.protect_shared(HP_PREV, curr);
                        prev = &node.next;
                        // Advance: protect the successor observed above and
                        // validate it is still what the predecessor links to.
                        match guard.protect_word(HP_CURR, prev, next) {
                            Ok(sh) => curr = sh,
                            Err(_) => continue 'retry,
                        }
                    }
                    _ => return Search { prev, curr },
                }
            }
        }
    }

    /// Returns true if `key` is in the set.
    pub fn contains(&self, key: &K, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        let s = self.search(key, &guard);
        // SAFETY: `s.curr` carries a validated protection from `search`.
        match unsafe { s.curr.as_ref() } {
            Some(node) => node.key == *key,
            None => false,
        }
    }

    /// Inserts `key`; returns false if it was already present.
    pub fn insert(&self, key: K, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        let mut key = key;
        loop {
            let s = self.search(&key, &guard);
            // SAFETY: `s.curr` carries a validated protection from `search`.
            if let Some(node) = unsafe { s.curr.as_ref() } {
                if node.key == key {
                    return false;
                }
            }
            let node = Owned::new(
                Node {
                    key,
                    next: Atomic::null(),
                },
                &guard,
            );
            // The new node is still private; the publishing CAS releases it.
            node.next.store_private(s.curr);
            // Pause point: the validate-then-CAS window (audited against the
            // skip list's upper-level re-link race; see the note below).
            crate::interleave::hit("list::insert::pre_link_cas");
            // Why this window is closed: the CAS below targets the very link the
            // search validated, with the full validated word — pointer, mark
            // *and* version — as its expected value. A remove completing in the
            // window changes that word no matter which neighbour it hits —
            // removing `curr` swings `prev`'s link to `curr`'s successor;
            // removing `prev` marks `prev`'s outgoing link — and every
            // successful CAS bumps the link version, so even a pointer that
            // ABA'd back fails the stale CAS. Slot HP_CURR keeps `curr` from
            // being freed and re-allocated under us. The forced schedules in
            // `tests/interleaving_harness.rs` pin both neighbour removals.
            match s.prev.cas_link(s.curr, node) {
                Ok(_) => return true,
                Err((_, returned)) => {
                    // The node was never shared: recover the key (paper Alg. 6,
                    // "Node was not inserted; free the node directly") and retry.
                    key = returned.into_inner().key;
                }
            }
        }
    }

    /// Removes `key`; returns false if it was not present.
    pub fn remove(&self, key: &K, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        loop {
            let s = self.search(key, &guard);
            // SAFETY: `s.curr` carries a validated protection from `search`.
            let Some(node) = (unsafe { s.curr.as_ref() }) else {
                return false;
            };
            if node.key != *key {
                return false;
            }
            let next = node.next.load(&guard);
            if next.is_marked() {
                // Another thread is already deleting it; retry so the traversal
                // can help unlink and then report "not found" or race for a
                // later copy.
                continue;
            }
            // Logical deletion: mark `curr`'s next link. The winner owns the
            // removal.
            if node.next.try_mark(next).is_err() {
                continue;
            }
            // Pause point: mark won, unlink (and retire) pending — the window
            // the explorer drives inserts and other removals through.
            crate::interleave::hit("list::remove::pre_unlink_cas");
            // Physical deletion: try to unlink. On failure another traversal
            // will (or already did) unlink and retire it.
            // SAFETY: the mark this thread won makes `prev`'s link the sole
            // remaining path for new observers, and the versioned expected word
            // ensures at most one unlinker succeeds.
            match unsafe { s.prev.cas_unlink(s.curr, next) } {
                Ok((unlinked, _)) => unlinked.retire(&guard),
                Err(_) => {
                    // Help physical removal along the new path.
                    let _ = self.search(key, &guard);
                }
            }
            return true;
        }
    }

    /// Counts the elements currently in the set. Linear, intended for tests,
    /// examples and benchmark validation — not part of the hot path.
    pub fn len(&self, handle: &mut S::Handle) -> usize {
        let guard = Guard::new(handle);
        'retry: loop {
            let mut count = 0;
            let mut prev: &Atomic<Node<K>> = &self.head;
            let mut curr = guard.load_protected(HP_CURR, prev);
            loop {
                // SAFETY: same protection discipline as `search`: `curr` is
                // validated against `prev` before every dereference.
                let Some(node) = (unsafe { curr.as_ref() }) else {
                    return count;
                };
                let next = node.next.load(&guard);
                if next.is_marked() {
                    // Help unlink so the count can proceed past the zombie
                    // (restarting the count on any interference).
                    // SAFETY: as in `search` — sole path after the mark.
                    match unsafe { prev.cas_unlink(curr, next.unmarked()) } {
                        Ok((unlinked, after)) => {
                            unlinked.retire(&guard);
                            match guard.protect_word(HP_CURR, prev, after) {
                                Ok(sh) => curr = sh,
                                Err(_) => continue 'retry,
                            }
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                count += 1;
                guard.protect_shared(HP_PREV, curr);
                prev = &node.next;
                match guard.protect_word(HP_CURR, prev, next) {
                    Ok(sh) => curr = sh,
                    Err(_) => continue 'retry,
                }
            }
        }
    }

    /// True if the set currently holds no elements (test/diagnostic helper).
    pub fn is_empty(&self, handle: &mut S::Handle) -> bool {
        self.len(handle) == 0
    }
}

impl<K, S: Smr> Drop for HarrisMichaelList<K, S> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): free every node still in the chain
        // directly. Nodes already unlinked are owned by the reclamation scheme and
        // are freed by it, so there is no double free.
        // SAFETY: no concurrent operations and no outstanding protections; every
        // chained node is taken out of exactly one link.
        unsafe {
            let mut curr = self.head.take();
            while let Some(mut node) = curr {
                curr = node.next.take();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::Leaky;
    use std::collections::BTreeSet;

    fn leaky_list() -> HarrisMichaelList<u64, Leaky> {
        HarrisMichaelList::new(Leaky::with_defaults())
    }

    #[test]
    fn empty_list_contains_nothing() {
        let list = leaky_list();
        let mut h = list.register();
        assert!(!list.contains(&1, &mut h));
        assert!(list.is_empty(&mut h));
        assert_eq!(list.len(&mut h), 0);
    }

    #[test]
    fn insert_contains_remove_round_trip() {
        let list = leaky_list();
        let mut h = list.register();
        assert!(list.insert(5, &mut h));
        assert!(!list.insert(5, &mut h), "duplicate insert must fail");
        assert!(list.contains(&5, &mut h));
        assert!(!list.contains(&6, &mut h));
        assert!(list.remove(&5, &mut h));
        assert!(!list.remove(&5, &mut h), "double remove must fail");
        assert!(!list.contains(&5, &mut h));
    }

    #[test]
    fn keeps_keys_sorted_and_unique() {
        let list = leaky_list();
        let mut h = list.register();
        for key in [5_u64, 1, 9, 3, 7, 1, 9] {
            list.insert(key, &mut h);
        }
        assert_eq!(list.len(&mut h), 5);
        for key in [1_u64, 3, 5, 7, 9] {
            assert!(list.contains(&key, &mut h));
        }
    }

    #[test]
    fn matches_reference_set_on_mixed_operations() {
        let list = leaky_list();
        let mut h = list.register();
        let mut reference = BTreeSet::new();
        // Deterministic pseudo-random mix.
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 64;
            match state % 3 {
                0 => assert_eq!(list.insert(key, &mut h), reference.insert(key)),
                1 => assert_eq!(list.remove(&key, &mut h), reference.remove(&key)),
                _ => assert_eq!(list.contains(&key, &mut h), reference.contains(&key)),
            }
        }
        assert_eq!(list.len(&mut h), reference.len());
    }

    #[test]
    fn works_with_non_copy_keys() {
        let list: HarrisMichaelList<String, Leaky> = HarrisMichaelList::new(Leaky::with_defaults());
        let mut h = list.register();
        assert!(list.insert("bravo".to_string(), &mut h));
        assert!(list.insert("alpha".to_string(), &mut h));
        assert!(!list.insert("alpha".to_string(), &mut h));
        assert!(list.contains(&"alpha".to_string(), &mut h));
        assert!(list.remove(&"bravo".to_string(), &mut h));
        assert_eq!(list.len(&mut h), 1);
    }
}
