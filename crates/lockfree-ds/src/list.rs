//! Lock-free sorted linked-list set (Harris–Michael).
//!
//! This is the linked list the paper evaluates (§7.1, "a lock-free linked list
//! [24]"): Michael's hazard-pointer-compatible variant of Harris's algorithm, the
//! same algorithm the paper's appendix (Algorithms 6 and 7) annotates with QSense
//! calls. Nodes carry a logical-deletion mark in the low bit of their `next`
//! pointer; removal first marks (logical delete) and then unlinks (physical delete),
//! and traversals help unlink any marked node they encounter.
//!
//! ## Reclamation-scheme integration
//!
//! The structure is generic over [`Smr`]; each operation follows the paper's three
//! rules (§1.3):
//!
//! 1. [`SmrHandle::begin_op`] (`manage_qsense_state`) at the start of every
//!    operation;
//! 2. [`SmrHandle::protect`] (`assign_HP`) before a node reference is used, followed
//!    by re-validation that the predecessor still links to it unmarked;
//! 3. retire (`free_node_later`) exactly once per node, by whichever thread performs
//!    the successful physical unlink.
//!
//! Two protection slots are used (`K = 2`, matching the paper): slot 0 for the
//! predecessor, slot 1 for the current node.

use crate::keyspace::KeySlot;
use crate::tagged::{decompose, is_marked, marked, unmarked};
use reclaim_core::{retire_box_with_birth, Era, Smr, SmrHandle, NO_BIRTH_ERA};
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Hazard-pointer slot protecting the predecessor during traversal.
const HP_PREV: usize = 0;
/// Hazard-pointer slot protecting the current node during traversal.
const HP_CURR: usize = 1;

/// Number of protection slots the list needs per thread (`K` in the paper).
pub const LIST_HP_SLOTS: usize = 2;

struct Node<K> {
    key: KeySlot<K>,
    /// Era the node was allocated in (`SmrHandle::alloc_node`); immutable after
    /// allocation, read back at the retire site. `NO_BIRTH_ERA` on sentinels.
    birth_era: Era,
    next: AtomicPtr<Node<K>>,
}

impl<K> Node<K> {
    fn new(key: KeySlot<K>, next: *mut Node<K>, birth_era: Era) -> *mut Node<K> {
        Box::into_raw(Box::new(Node {
            key,
            birth_era,
            next: AtomicPtr::new(next),
        }))
    }
}

/// Result of a traversal: `curr` is the first node with key ≥ the search key (or
/// null at the end of the list) and `prev` is its predecessor (possibly the head
/// sentinel). `prev` is protected by slot 0 (unless it is the sentinel) and `curr`
/// by slot 1.
struct Search<K> {
    prev: *mut Node<K>,
    curr: *mut Node<K>,
}

/// A lock-free sorted set backed by a Harris–Michael linked list.
pub struct HarrisMichaelList<K, S: Smr> {
    head: Box<Node<K>>,
    smr: Arc<S>,
}

// SAFETY: the list is a shared concurrent structure; all mutation happens through
// atomics and the SMR protocol. Keys must be Send + Sync because nodes (and hence
// keys) are dropped by whichever thread reclaims them.
unsafe impl<K: Send + Sync, S: Smr> Send for HarrisMichaelList<K, S> {}
unsafe impl<K: Send + Sync, S: Smr> Sync for HarrisMichaelList<K, S> {}

impl<K, S> HarrisMichaelList<K, S>
where
    K: Ord + Send + Sync + 'static,
    S: Smr,
{
    /// Creates an empty list using the given reclamation scheme.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: Box::new(Node {
                key: KeySlot::NegInf,
                birth_era: NO_BIRTH_ERA,
                next: AtomicPtr::new(std::ptr::null_mut()),
            }),
            smr,
        }
    }

    /// The reclamation scheme this list was created with.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with the underlying reclamation scheme and
    /// returns the handle to pass to this list's operations.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    fn head_ptr(&self) -> *mut Node<K> {
        (&*self.head) as *const Node<K> as *mut Node<K>
    }

    /// Core traversal (the paper's `search_and_cleanup`): positions on the first
    /// node with key ≥ `key`, unlinking (and retiring) every marked node on the way.
    fn search(&self, key: &K, handle: &mut S::Handle) -> Search<K> {
        let head = self.head_ptr();
        'retry: loop {
            let mut prev = head;
            // SAFETY: `prev` is the head sentinel here, owned by `self`.
            let mut curr = unmarked(unsafe { &*prev }.next.load(Ordering::Acquire));
            loop {
                if curr.is_null() {
                    return Search { prev, curr };
                }
                // Rule 2: protect, then re-validate that the predecessor still links
                // to `curr` and is itself not logically deleted (its next unmarked).
                // No fence is issued here by Cadence/QSense; classic HP issues one
                // inside `protect`.
                handle.protect(HP_CURR, curr.cast());
                // SAFETY: `prev` is either the sentinel or a node currently protected
                // by slot HP_PREV (protected before we advanced to it).
                if unsafe { &*prev }.next.load(Ordering::Acquire) != curr {
                    continue 'retry;
                }
                // SAFETY: `curr` is protected and was validated reachable above.
                let next_raw = unsafe { &*curr }.next.load(Ordering::Acquire);
                let (next, curr_marked) = decompose(next_raw);
                if curr_marked {
                    // `curr` is logically deleted: help unlink it (physical delete).
                    // SAFETY: `prev` protected/sentinel as above.
                    if unsafe { &*prev }
                        .next
                        .compare_exchange(curr, next, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue 'retry;
                    }
                    // This thread performed the unlink, so it (and only it) retires
                    // the node — rule 3.
                    // SAFETY: `curr` is now unreachable (it was only reachable through
                    // `prev`), was allocated by `Node::new` (Box) and is retired once;
                    // its birth-era stamp is immutable and still readable pre-retire.
                    unsafe { retire_box_with_birth(handle, curr, (*curr).birth_era) };
                    curr = next;
                    continue;
                }
                // SAFETY: `curr` protected and validated.
                match unsafe { &*curr }.key.cmp_key(key) {
                    CmpOrdering::Less => {
                        prev = curr;
                        // The node that becomes the predecessor stays protected by
                        // moving it into slot HP_PREV.
                        handle.protect(HP_PREV, curr.cast());
                        curr = next;
                    }
                    _ => return Search { prev, curr },
                }
            }
        }
    }

    /// Returns true if `key` is in the set.
    pub fn contains(&self, key: &K, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        let found = {
            let s = self.search(key, handle);
            // SAFETY: `s.curr` is protected by slot HP_CURR.
            !s.curr.is_null() && unsafe { &*s.curr }.key.cmp_key(key) == CmpOrdering::Equal
        };
        handle.clear_protections();
        handle.end_op();
        found
    }

    /// Inserts `key`; returns false if it was already present.
    pub fn insert(&self, key: K, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        let mut key = key;
        loop {
            let s = self.search(&key, handle);
            // SAFETY: `s.curr` protected by slot HP_CURR.
            if !s.curr.is_null() && unsafe { &*s.curr }.key.cmp_key(&key) == CmpOrdering::Equal {
                handle.clear_protections();
                handle.end_op();
                return false;
            }
            let node = Node::new(KeySlot::Key(key), s.curr, handle.alloc_node());
            // Pause point: the validate-then-CAS window (audited against the
            // skip list's upper-level re-link race; see the note below).
            crate::interleave::hit("list::insert::pre_link_cas");
            // Why this window is closed *without* versioned links (unlike the
            // skip list): the CAS below targets the very link the search
            // validated, with the validated successor as its expected value. A
            // remove completing in the window changes that link no matter which
            // neighbour it hits — removing `curr` swings `prev.next` to
            // `curr`'s successor; removing `prev` marks `prev.next` (the mark
            // lives in the *outgoing* pointer, so the word differs even though
            // the pointer half still reads `curr`) — and a retired list node
            // can never be re-linked (nodes are linked only by their own
            // insert's CAS, with a fresh private allocation), while slot
            // HP_CURR keeps `curr` from being freed and re-allocated under us.
            // So pointer+mark equality at this link is equivalent to "nothing
            // happened since validation", and the stale CAS always fails. The
            // forced schedules in `tests/interleaving_harness.rs` pin both
            // neighbour removals.
            // SAFETY: `s.prev` is the sentinel or protected by slot HP_PREV.
            match unsafe { &*s.prev }.next.compare_exchange(
                s.curr,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    handle.clear_protections();
                    handle.end_op();
                    return true;
                }
                Err(_) => {
                    // The node was never shared: free it directly (paper Alg. 6,
                    // "Node was not inserted; free the node directly") and retry.
                    // SAFETY: `node` was just allocated and never published.
                    let boxed = unsafe { Box::from_raw(node) };
                    match boxed.key {
                        KeySlot::Key(k) => key = k,
                        _ => unreachable!("freshly inserted nodes always carry a real key"),
                    }
                }
            }
        }
    }

    /// Removes `key`; returns false if it was not present.
    pub fn remove(&self, key: &K, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        loop {
            let s = self.search(key, handle);
            // SAFETY: `s.curr` protected by slot HP_CURR.
            if s.curr.is_null() || unsafe { &*s.curr }.key.cmp_key(key) != CmpOrdering::Equal {
                handle.clear_protections();
                handle.end_op();
                return false;
            }
            let curr = s.curr;
            // SAFETY: `curr` protected.
            let next_raw = unsafe { &*curr }.next.load(Ordering::Acquire);
            if is_marked(next_raw) {
                // Another thread is already deleting it; retry so the traversal can
                // help unlink and then report "not found" or race for a later copy.
                continue;
            }
            // Logical deletion: mark `curr`'s next pointer.
            // SAFETY: `curr` protected.
            if unsafe { &*curr }
                .next
                .compare_exchange(
                    next_raw,
                    marked(next_raw),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            // Physical deletion: try to unlink. On failure another traversal will
            // (or already did) unlink and retire it.
            // SAFETY: `s.prev` is the sentinel or protected by slot HP_PREV.
            if unsafe { &*s.prev }
                .next
                .compare_exchange(
                    curr,
                    unmarked(next_raw),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // SAFETY: unlinked by this thread, allocated via Box, retired once;
                // the birth-era stamp is immutable and still readable pre-retire.
                unsafe { retire_box_with_birth(handle, curr, (*curr).birth_era) };
            } else {
                // Help physical removal along the new path.
                let _ = self.search(key, handle);
            }
            handle.clear_protections();
            handle.end_op();
            return true;
        }
    }

    /// Counts the elements currently in the set. Linear, intended for tests,
    /// examples and benchmark validation — not part of the hot path.
    pub fn len(&self, handle: &mut S::Handle) -> usize {
        handle.begin_op();
        let mut count = 0;
        let mut prev = self.head_ptr();
        // SAFETY: same protection discipline as `search`, simplified: we only ever
        // read keys of protected, validated nodes.
        let mut curr = unmarked(unsafe { &*prev }.next.load(Ordering::Acquire));
        'retry: loop {
            if curr.is_null() {
                break;
            }
            handle.protect(HP_CURR, curr.cast());
            if unsafe { &*prev }.next.load(Ordering::Acquire) != curr {
                // Restart the count from scratch on interference.
                count = 0;
                prev = self.head_ptr();
                curr = unmarked(unsafe { &*prev }.next.load(Ordering::Acquire));
                continue 'retry;
            }
            let (next, curr_marked) = decompose(unsafe { &*curr }.next.load(Ordering::Acquire));
            if !curr_marked {
                count += 1;
                prev = curr;
                handle.protect(HP_PREV, curr.cast());
            }
            curr = next;
        }
        handle.clear_protections();
        handle.end_op();
        count
    }

    /// True if the set currently holds no elements (test/diagnostic helper).
    pub fn is_empty(&self, handle: &mut S::Handle) -> bool {
        self.len(handle) == 0
    }
}

impl<K, S: Smr> Drop for HarrisMichaelList<K, S> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): free every node still in the chain
        // directly. Nodes already unlinked are owned by the reclamation scheme and
        // are freed by it, so there is no double free.
        let mut curr = unmarked(self.head.next.load(Ordering::Relaxed));
        while !curr.is_null() {
            // SAFETY: exclusive access; every chained node was allocated via Box and
            // is freed exactly once here.
            let boxed = unsafe { Box::from_raw(curr) };
            curr = unmarked(boxed.next.load(Ordering::Relaxed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::Leaky;
    use std::collections::BTreeSet;

    fn leaky_list() -> HarrisMichaelList<u64, Leaky> {
        HarrisMichaelList::new(Leaky::with_defaults())
    }

    #[test]
    fn empty_list_contains_nothing() {
        let list = leaky_list();
        let mut h = list.register();
        assert!(!list.contains(&1, &mut h));
        assert!(list.is_empty(&mut h));
        assert_eq!(list.len(&mut h), 0);
    }

    #[test]
    fn insert_contains_remove_round_trip() {
        let list = leaky_list();
        let mut h = list.register();
        assert!(list.insert(5, &mut h));
        assert!(!list.insert(5, &mut h), "duplicate insert must fail");
        assert!(list.contains(&5, &mut h));
        assert!(!list.contains(&6, &mut h));
        assert!(list.remove(&5, &mut h));
        assert!(!list.remove(&5, &mut h), "double remove must fail");
        assert!(!list.contains(&5, &mut h));
    }

    #[test]
    fn keeps_keys_sorted_and_unique() {
        let list = leaky_list();
        let mut h = list.register();
        for key in [5_u64, 1, 9, 3, 7, 1, 9] {
            list.insert(key, &mut h);
        }
        assert_eq!(list.len(&mut h), 5);
        for key in [1_u64, 3, 5, 7, 9] {
            assert!(list.contains(&key, &mut h));
        }
    }

    #[test]
    fn matches_reference_set_on_mixed_operations() {
        let list = leaky_list();
        let mut h = list.register();
        let mut reference = BTreeSet::new();
        // Deterministic pseudo-random mix.
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 64;
            match state % 3 {
                0 => assert_eq!(list.insert(key, &mut h), reference.insert(key)),
                1 => assert_eq!(list.remove(&key, &mut h), reference.remove(&key)),
                _ => assert_eq!(list.contains(&key, &mut h), reference.contains(&key)),
            }
        }
        assert_eq!(list.len(&mut h), reference.len());
    }

    #[test]
    fn works_with_non_copy_keys() {
        let list: HarrisMichaelList<String, Leaky> = HarrisMichaelList::new(Leaky::with_defaults());
        let mut h = list.register();
        assert!(list.insert("bravo".to_string(), &mut h));
        assert!(list.insert("alpha".to_string(), &mut h));
        assert!(!list.insert("alpha".to_string(), &mut h));
        assert!(list.contains(&"alpha".to_string(), &mut h));
        assert!(list.remove(&"bravo".to_string(), &mut h));
        assert_eq!(list.len(&mut h), 1);
    }
}
