//! Key ordering with sentinels.
//!
//! Every ordered structure in this crate needs sentinel endpoints: a head that
//! compares below every real key and (for the skip list and BST) bounds that compare
//! above every real key. [`KeySlot`] encodes this directly in the type so that the
//! structures stay generic over the user's key type without reserving magic values.

use std::cmp::Ordering;

/// A key or a sentinel endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeySlot<K> {
    /// Compares below every real key (head sentinels).
    NegInf,
    /// A real key.
    Key(K),
    /// Compares above every real key (tail sentinels).
    PosInf,
}

impl<K> KeySlot<K> {
    /// Returns the real key, if this slot holds one.
    pub fn as_key(&self) -> Option<&K> {
        match self {
            KeySlot::Key(k) => Some(k),
            _ => None,
        }
    }

    /// True if this is a sentinel rather than a real key.
    pub fn is_sentinel(&self) -> bool {
        !matches!(self, KeySlot::Key(_))
    }
}

impl<K: Ord> KeySlot<K> {
    /// Compares this slot against a real key.
    pub fn cmp_key(&self, key: &K) -> Ordering {
        match self {
            KeySlot::NegInf => Ordering::Less,
            KeySlot::Key(k) => k.cmp(key),
            KeySlot::PosInf => Ordering::Greater,
        }
    }
}

impl<K: Ord> PartialOrd for KeySlot<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for KeySlot<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        use KeySlot::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (_, NegInf) | (PosInf, _) => Ordering::Greater,
            (Key(a), Key(b)) => a.cmp(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_ordering() {
        let neg: KeySlot<u64> = KeySlot::NegInf;
        let pos: KeySlot<u64> = KeySlot::PosInf;
        let five = KeySlot::Key(5_u64);
        let nine = KeySlot::Key(9_u64);
        assert!(neg < five && five < nine && nine < pos);
        assert!(neg < pos);
        assert_eq!(five.cmp(&five), Ordering::Equal);
        assert_eq!(neg.cmp(&neg), Ordering::Equal);
        assert_eq!(pos.cmp(&pos), Ordering::Equal);
    }

    #[test]
    fn cmp_key_matches_slot_ordering() {
        let neg: KeySlot<u64> = KeySlot::NegInf;
        let pos: KeySlot<u64> = KeySlot::PosInf;
        assert_eq!(neg.cmp_key(&0), Ordering::Less);
        assert_eq!(pos.cmp_key(&u64::MAX), Ordering::Greater);
        assert_eq!(KeySlot::Key(3_u64).cmp_key(&3), Ordering::Equal);
        assert_eq!(KeySlot::Key(2_u64).cmp_key(&3), Ordering::Less);
        assert_eq!(KeySlot::Key(4_u64).cmp_key(&3), Ordering::Greater);
    }

    #[test]
    fn accessors() {
        let k = KeySlot::Key(7_u32);
        assert_eq!(k.as_key(), Some(&7));
        assert!(!k.is_sentinel());
        let s: KeySlot<u32> = KeySlot::NegInf;
        assert_eq!(s.as_key(), None);
        assert!(s.is_sentinel());
        assert!(KeySlot::<u32>::PosInf.is_sentinel());
    }
}
