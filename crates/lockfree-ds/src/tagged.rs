//! Marked (tagged) pointers.
//!
//! The Harris technique stores a *logical deletion* mark in the least-significant bit
//! of a node's `next` pointer: a node whose `next` is marked has been logically
//! removed and must be physically unlinked before traversals may proceed past it.
//! All nodes are heap allocations with alignment ≥ 8, so bit 0 is always available.
//!
//! Keeping the mark in the *outgoing* pointer of the deleted node (rather than in the
//! pointer *to* it) is what makes hazard-pointer validation sound: once a node is
//! unlinked its `next` stays marked forever, so a traversal standing on a removed
//! node can never successfully validate a protection acquired through it.

/// The logical-deletion mark (bit 0).
const MARK: usize = 1;

/// Returns `ptr` with its mark bit cleared.
#[inline]
pub fn unmarked<T>(ptr: *mut T) -> *mut T {
    ((ptr as usize) & !MARK) as *mut T
}

/// Returns `ptr` with its mark bit set.
#[inline]
pub fn marked<T>(ptr: *mut T) -> *mut T {
    ((ptr as usize) | MARK) as *mut T
}

/// True if the mark bit of `ptr` is set.
#[inline]
pub fn is_marked<T>(ptr: *mut T) -> bool {
    (ptr as usize) & MARK == MARK
}

/// Splits a possibly marked pointer into `(clean_pointer, is_marked)`.
#[inline]
pub fn decompose<T>(ptr: *mut T) -> (*mut T, bool) {
    (unmarked(ptr), is_marked(ptr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_round_trip() {
        let boxed = Box::new(7_u64);
        let raw = Box::into_raw(boxed);
        assert!(!is_marked(raw), "heap pointers start unmarked");
        let m = marked(raw);
        assert!(is_marked(m));
        assert_eq!(unmarked(m), raw);
        assert_eq!(marked(m), m, "marking twice is idempotent");
        assert_eq!(unmarked(unmarked(m)), raw);
        let (clean, flag) = decompose(m);
        assert_eq!(clean, raw);
        assert!(flag);
        unsafe { drop(Box::from_raw(raw)) };
    }

    #[test]
    fn null_handling() {
        let null: *mut u64 = std::ptr::null_mut();
        assert!(!is_marked(null));
        assert!(is_marked(marked(null)));
        assert_eq!(unmarked(marked(null)), null);
    }
}
