//! Lock-free external binary search tree (Natarajan–Mittal style edge marking).
//!
//! The third structure of the paper's evaluation (§7.1, "a binary search tree [27]"):
//! an *external* (leaf-oriented) BST — internal nodes only route, every element lives
//! in a leaf — with deletion coordinated through **edge marking**: two low bits of
//! each child pointer act as a *flag* ("the leaf below this edge is being deleted")
//! and a *tag* ("this edge must not be modified because its parent is about to be
//! spliced out").
//!
//! ## Operations
//!
//! * `insert` replaces the reached leaf with a freshly allocated internal node whose
//!   two children are the old leaf and the new leaf (single clean-edge CAS).
//! * `remove` runs the two-phase Natarajan–Mittal protocol: *injection* flags the
//!   parent→leaf edge (the linearization point), *cleanup* tags the sibling edge and
//!   splices the sibling up into the grandparent, unlinking the parent and the leaf.
//!   Writers that fail a CAS because an edge is flagged/tagged help complete the
//!   pending cleanup before retrying.
//! * `contains` is a plain descent.
//!
//! ## Reclamation integration
//!
//! Six protection slots per thread (`K = 6`, as in the paper): the descent rotates
//! grandparent / parent / leaf / next through four slots, and the helping path uses
//! the remaining slack. Validation only accepts **clean** edges (no flag, no tag,
//! same address): every incoming edge of an unlinked node is either gone (replaced by
//! the splice) or flagged/tagged, so a traversal can never validate a protection for
//! a node that was already retired — the same invariant the marked `next` pointer
//! provides in the list and skip list.
//!
//! The thread whose CAS performs the splice retires the unlinked parent and leaf.
//! Under heavily contended overlapping deletes the original algorithm can form short
//! chains of tagged edges; this implementation sidesteps chains by restarting
//! traversals at dirty edges (writers help first), which keeps reclamation exact in
//! all tested scenarios at the cost of the pure reader occasionally retrying while a
//! cleanup is in flight (a progress, never a safety, concern — see DESIGN.md).

use crate::keyspace::KeySlot;
use rand as _; // keep the workspace dependency graph uniform; randomness is not needed here
use reclaim_core::{Era, Guard, Smr, NO_BIRTH_ERA};
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Number of protection slots the BST needs per thread (`K` in the paper).
pub const BST_HP_SLOTS: usize = 6;

/// Edge bit: the leaf under this edge is being deleted.
const FLAG: usize = 1;
/// Edge bit: this edge's parent node is being spliced out; do not modify the edge.
const TAG: usize = 2;
const BITS: usize = FLAG | TAG;

#[inline]
fn clean<T>(ptr: *mut T) -> *mut T {
    ((ptr as usize) & !BITS) as *mut T
}

#[inline]
fn is_flagged<T>(ptr: *mut T) -> bool {
    (ptr as usize) & FLAG != 0
}

#[inline]
fn is_tagged<T>(ptr: *mut T) -> bool {
    (ptr as usize) & TAG != 0
}

#[inline]
fn with_flag<T>(ptr: *mut T) -> *mut T {
    ((ptr as usize) | FLAG) as *mut T
}

#[inline]
fn with_tag<T>(ptr: *mut T) -> *mut T {
    ((ptr as usize) | TAG) as *mut T
}

#[inline]
fn without_tag<T>(ptr: *mut T) -> *mut T {
    ((ptr as usize) & !TAG) as *mut T
}

struct Node<K> {
    key: KeySlot<K>,
    is_leaf: bool,
    /// Era the node was allocated in (`SmrHandle::alloc_node`); immutable after
    /// allocation, read back by the splicing thread at the retire sites.
    /// `NO_BIRTH_ERA` on the sentinel scaffolding built before any handle
    /// exists.
    birth_era: Era,
    left: AtomicPtr<Node<K>>,
    right: AtomicPtr<Node<K>>,
}

impl<K> Node<K> {
    fn leaf(key: KeySlot<K>, birth_era: Era) -> *mut Node<K> {
        let node = Box::into_raw(Box::new(Node {
            key,
            is_leaf: true,
            birth_era,
            left: AtomicPtr::new(std::ptr::null_mut()),
            right: AtomicPtr::new(std::ptr::null_mut()),
        }));
        crate::oracle::register(node);
        node
    }

    fn internal(
        key: KeySlot<K>,
        left: *mut Node<K>,
        right: *mut Node<K>,
        birth_era: Era,
    ) -> *mut Node<K> {
        let node = Box::into_raw(Box::new(Node {
            key,
            is_leaf: false,
            birth_era,
            left: AtomicPtr::new(left),
            right: AtomicPtr::new(right),
        }));
        crate::oracle::register(node);
        node
    }
}

/// Result of a descent: grandparent, parent and leaf, all protected.
struct SeekRecord<K> {
    grandparent: *mut Node<K>,
    parent: *mut Node<K>,
    leaf: *mut Node<K>,
}

/// A lock-free ordered set backed by an external binary search tree.
pub struct LockFreeBst<K, S: Smr> {
    /// Sentinel root `R`: `left` = sentinel `S`, `right` = +∞ leaf. Real content
    /// lives under `S.left`.
    root: Box<Node<K>>,
    smr: Arc<S>,
}

// SAFETY: shared mutation is atomic; reclamation follows the SMR protocol.
unsafe impl<K: Send + Sync, S: Smr> Send for LockFreeBst<K, S> {}
unsafe impl<K: Send + Sync, S: Smr> Sync for LockFreeBst<K, S> {}

impl<K, S> LockFreeBst<K, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    S: Smr,
{
    /// Creates an empty tree using the given reclamation scheme.
    pub fn new(smr: Arc<S>) -> Self {
        // S sentinel: left = -∞ leaf (where the first real insert lands),
        // right = +∞ leaf (never reached by real keys).
        let s_left = Node::leaf(KeySlot::NegInf, NO_BIRTH_ERA);
        let s_right = Node::leaf(KeySlot::PosInf, NO_BIRTH_ERA);
        let s = Node::internal(KeySlot::PosInf, s_left, s_right, NO_BIRTH_ERA);
        let r_right = Node::leaf(KeySlot::PosInf, NO_BIRTH_ERA);
        let root = Box::new(Node {
            key: KeySlot::PosInf,
            is_leaf: false,
            birth_era: NO_BIRTH_ERA,
            left: AtomicPtr::new(s),
            right: AtomicPtr::new(r_right),
        });
        Self { root, smr }
    }

    /// The reclamation scheme this tree was created with.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with the underlying reclamation scheme.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    fn root_ptr(&self) -> *mut Node<K> {
        (&*self.root) as *const Node<K> as *mut Node<K>
    }

    /// The child field of `node` on the search path of `key`.
    ///
    /// # Safety
    ///
    /// `node` must be protected (or a sentinel owned by `self`) and internal.
    unsafe fn child_edge<'a>(node: *mut Node<K>, key: &K) -> &'a AtomicPtr<Node<K>> {
        // SAFETY: the pointer was validated (or is hazard-protected) by the surrounding traversal and nodes are only freed through SMR.
        let node = unsafe { &*node };
        if node.key.cmp_key(key) == CmpOrdering::Greater {
            &node.left
        } else {
            &node.right
        }
    }

    /// The other child field of `node` relative to the search path of `key`.
    ///
    /// # Safety
    ///
    /// Same requirements as [`child_edge`](Self::child_edge).
    unsafe fn sibling_edge<'a>(node: *mut Node<K>, key: &K) -> &'a AtomicPtr<Node<K>> {
        // SAFETY: the pointer was validated (or is hazard-protected) by the surrounding traversal and nodes are only freed through SMR.
        let node = unsafe { &*node };
        if node.key.cmp_key(key) == CmpOrdering::Greater {
            &node.right
        } else {
            &node.left
        }
    }

    /// Descends to the leaf on `key`'s search path, keeping grandparent, parent and
    /// leaf protected. Only clean edges are traversed; encountering a dirty edge
    /// restarts the descent (writers help through `cleanup` before calling again).
    fn seek(&self, key: &K, guard: &Guard<'_, S::Handle>) -> SeekRecord<K> {
        let root = self.root_ptr();
        'retry: loop {
            // Rotating slot assignment: gp, parent, leaf, next cycle over slots 0..4.
            let mut gp_slot = 0usize;
            let mut p_slot = 1usize;
            let mut l_slot = 2usize;
            let mut free_slot = 3usize;

            let mut grandparent = root;
            // SAFETY: the root sentinel is owned by `self` and never reclaimed.
            let s = clean(unsafe { &*root }.left.load(Ordering::Acquire));
            guard.protect_ptr(p_slot, s.cast());
            // SAFETY: the root sentinel is owned by `self` and never reclaimed.
            if unsafe { &*root }.left.load(Ordering::Acquire) != s {
                continue 'retry;
            }
            let mut parent = s;
            // SAFETY: `parent` (the S sentinel) was protected and validated above; it
            // is in fact never removed, but the generic discipline costs nothing.
            let leaf_raw = unsafe { &*parent }.left.load(Ordering::Acquire);
            let mut leaf = clean(leaf_raw);
            guard.protect_ptr(l_slot, leaf.cast());
            // SAFETY: `parent` was protected and validated above.
            if unsafe { &*parent }.left.load(Ordering::Acquire) != leaf {
                continue 'retry;
            }
            loop {
                // SAFETY: `leaf` protected and validated through a clean edge.
                if unsafe { &*leaf }.is_leaf {
                    return SeekRecord {
                        grandparent,
                        parent,
                        leaf,
                    };
                }
                // SAFETY: `leaf` is a protected internal node.
                let edge = unsafe { Self::child_edge(leaf, key) };
                let next_raw = edge.load(Ordering::Acquire);
                if (next_raw as usize) & BITS != 0 {
                    // Dirty edge: a delete is in flight below. *Help it complete*
                    // before restarting — a bare restart would descend into the
                    // same dirty edge forever if its owner is preempted, and the
                    // owner itself can only retry through this very seek, so
                    // without helping the whole system can spin (observed as a
                    // livelock under single-CPU scheduling). `cleanup` only uses
                    // the record's grandparent/parent, both still protected here.
                    let help = SeekRecord {
                        grandparent: parent,
                        parent: leaf,
                        leaf: clean(next_raw),
                    };
                    self.cleanup(key, &help, guard);
                    continue 'retry;
                }
                let next = next_raw;
                guard.protect_ptr(free_slot, next.cast());
                if edge.load(Ordering::Acquire) != next_raw {
                    continue 'retry;
                }
                crate::oracle::check(next, "bst::seek::validated");
                // Rotate: grandparent <- parent <- leaf <- next.
                grandparent = parent;
                parent = leaf;
                let recycled = gp_slot;
                gp_slot = p_slot;
                p_slot = l_slot;
                l_slot = free_slot;
                free_slot = recycled;
                leaf = next;
            }
        }
    }

    /// Completes (or helps complete) the removal whose flag is on one of `parent`'s
    /// edges: tags the surviving edge and splices the survivor into the grandparent.
    /// Returns true if the splice succeeded (performed by this call).
    ///
    /// Only `record.grandparent` and `record.parent` are read, and both must still
    /// be protected (or be sentinels), with `grandparent`'s key-side edge having
    /// led to `parent` when they were protected. `record.leaf` is deliberately
    /// unused — helpers (see `seek`) synthesize records whose `leaf` is an
    /// unvalidated pointer read from a dirty edge, so it must never be
    /// dereferenced here.
    fn cleanup(&self, key: &K, record: &SeekRecord<K>, guard: &Guard<'_, S::Handle>) -> bool {
        let SeekRecord {
            grandparent,
            parent,
            ..
        } = *record;
        // SAFETY: `parent` is protected by the seek that produced the record.
        let mut removed_edge = unsafe { Self::child_edge(parent, key) };
        let mut survivor_edge = unsafe { Self::sibling_edge(parent, key) };
        // If the flag is not on the key-side edge, this call is helping a delete that
        // targets the *other* child: swap roles.
        if !is_flagged(removed_edge.load(Ordering::Acquire)) {
            std::mem::swap(&mut removed_edge, &mut survivor_edge);
        }
        if !is_flagged(removed_edge.load(Ordering::Acquire)) {
            // No pending delete at this parent any more: nothing to clean up.
            return false;
        }
        // Tag the survivor edge so no insert can slip underneath while we splice
        // (a flagged survivor needs no tag: flagging already excludes modification,
        // and its own delete will keep operating on the node after the splice because
        // the flag is carried over). Loop until the edge is tagged or flagged — a
        // failed CAS means an insert changed the edge, so tag the new value instead.
        let survivor_raw = loop {
            let raw = survivor_edge.load(Ordering::Acquire);
            if (raw as usize) & BITS != 0 {
                break raw;
            }
            if survivor_edge
                .compare_exchange(raw, with_tag(raw), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break with_tag(raw);
            }
        };
        debug_assert!(
            is_tagged(survivor_raw) || is_flagged(survivor_raw),
            "survivor edge must be protected (tagged or flagged) before the splice"
        );
        let removed_leaf = clean(removed_edge.load(Ordering::Acquire));
        // Splice: swing the grandparent's edge from `parent` to the survivor
        // (tag cleared, flag preserved). The expected value must be completely clean;
        // if the grandparent edge is itself dirty or no longer points to `parent`,
        // another operation interfered and the caller re-seeks.
        // SAFETY: `grandparent` is protected by the seek record (or is the root
        // sentinel).
        let gp_edge = unsafe { Self::child_edge(grandparent, key) };
        let new_val = without_tag(survivor_raw);
        if gp_edge
            .compare_exchange(parent, new_val, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // This thread unlinked `parent` and `removed_leaf`: it alone retires them
            // (rule 3). Both are unreachable: the only edge into `parent` was just
            // replaced, and the only edge into `removed_leaf` (from `parent`) is
            // flagged, so no traversal can validate a new protection for either.
            // SAFETY: see above — this thread's CAS unlinked both nodes, making it the exclusive retirer, and neither can be re-protected.
            unsafe {
                guard.retire_raw(parent, (*parent).birth_era);
                guard.retire_raw(removed_leaf, (*removed_leaf).birth_era);
            }
            true
        } else {
            false
        }
    }

    /// Returns true if `key` is in the set.
    pub fn contains(&self, key: &K, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        let record = self.seek(key, &guard);
        // SAFETY: `record.leaf` is protected by the seek.
        unsafe { &*record.leaf }.key.cmp_key(key) == CmpOrdering::Equal
    }

    /// Inserts `key`; returns false if it was already present.
    pub fn insert(&self, key: K, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        loop {
            let record = self.seek(&key, &guard);
            let leaf = record.leaf;
            // SAFETY: `leaf` protected by the seek.
            let leaf_key = unsafe { &(*leaf).key };
            if leaf_key.cmp_key(&key) == CmpOrdering::Equal {
                return false;
            }
            // Build the replacement subtree: a new internal node whose children are
            // the existing leaf and the new leaf, ordered by key. The internal node's
            // routing key is the larger of the two (search goes left iff key < node).
            let new_leaf = Node::leaf(KeySlot::Key(key.clone()), guard.alloc_era());
            let (internal_key, left, right) = match leaf_key.cmp_key(&key) {
                CmpOrdering::Greater => (leaf_key.clone(), new_leaf, leaf),
                _ => (KeySlot::Key(key.clone()), leaf, new_leaf),
            };
            let new_internal = Node::internal(internal_key, left, right, guard.alloc_era());
            // Pause point: the validate-then-CAS window (audited against the
            // skip list's upper-level re-link race; see the note below).
            crate::interleave::hit("bst::insert::pre_link_cas");
            // Why this window is closed *without* versioned links (unlike the
            // skip list): the CAS below expects a completely clean edge holding
            // the leaf the seek validated. A remove completing in the window
            // dirties that exact word no matter how it overlaps — deleting our
            // leaf flags the edge (injection), deleting the *sibling* tags our
            // edge before the parent is spliced out (cleanup tags the survivor
            // edge first), and a spliced-out parent's edges stay flagged/tagged
            // forever, so even a CAS against a retired parent's edge fails. A
            // retired node is never re-linked (splices only move *surviving*
            // subtrees up), and the seek's protection slots keep `parent` and
            // `leaf` from being freed and re-allocated under us. So clean-edge
            // equality is equivalent to "nothing happened since validation".
            // The forced schedules in `tests/interleaving_harness.rs` pin both
            // the leaf-removal and the sibling-removal (parent splice) cases.
            // SAFETY: `record.parent` protected by the seek.
            let edge = unsafe { Self::child_edge(record.parent, &key) };
            match edge.compare_exchange(leaf, new_internal, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    return true;
                }
                Err(current) => {
                    // The new nodes were never published: free them directly.
                    crate::oracle::deregister(new_internal);
                    crate::oracle::deregister(new_leaf);
                    // Sanctioned free path: failed-insert rollback of private nodes.
                    #[allow(clippy::disallowed_methods)]
                    // SAFETY: both were just allocated and never shared.
                    unsafe {
                        drop(Box::from_raw(new_internal));
                        drop(Box::from_raw(new_leaf));
                    }
                    // If the edge still leads to our leaf but is flagged/tagged, help
                    // the pending delete before retrying.
                    if clean(current) == leaf && (current as usize) & BITS != 0 {
                        self.cleanup(&key, &record, &guard);
                    }
                }
            }
        }
    }

    /// Removes `key`; returns false if it was not present.
    pub fn remove(&self, key: &K, handle: &mut S::Handle) -> bool {
        let guard = Guard::new(handle);
        // Injection phase: flag the parent→leaf edge (linearization point).
        let mut injected = false;
        let mut victim: *mut Node<K> = std::ptr::null_mut();
        loop {
            let record = self.seek(key, &guard);
            if !injected {
                let leaf = record.leaf;
                // SAFETY: `leaf` protected by the seek.
                if unsafe { &*leaf }.key.cmp_key(key) != CmpOrdering::Equal {
                    return false;
                }
                // SAFETY: `record.parent` protected by the seek.
                let edge = unsafe { Self::child_edge(record.parent, key) };
                match edge.compare_exchange(
                    leaf,
                    with_flag(leaf),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        injected = true;
                        victim = leaf;
                        if self.cleanup(key, &record, &guard) {
                            return true;
                        }
                    }
                    Err(current) => {
                        // Someone interfered. If the edge still leads to our leaf but
                        // is dirty, help the pending operation along, then retry.
                        if clean(current) == leaf && (current as usize) & BITS != 0 {
                            self.cleanup(key, &record, &guard);
                        }
                    }
                }
            } else {
                // Cleanup phase: keep helping until our flagged leaf is gone from the
                // search path (either we spliced it out or someone helped us).
                if record.leaf != victim {
                    return true;
                }
                if self.cleanup(key, &record, &guard) {
                    return true;
                }
            }
        }
    }

    /// Counts the elements currently in the set (exclusive of sentinels). Linear and
    /// intended for tests, examples and benchmark validation only; the traversal
    /// restarts if it observes interference at the root.
    pub fn len(&self, handle: &mut S::Handle) -> usize {
        let _guard = Guard::new(handle);
        // An explicit stack of protected-free raw pointers: this walk is only safe
        // against concurrent reclamation because it re-validates nothing — so it is
        // documented as a quiescent-only helper. Tests and benchmark validation call
        // it while no other thread mutates the tree.
        let mut count = 0usize;
        let mut stack = vec![clean(self.root.left.load(Ordering::Acquire))];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            // SAFETY: callers guarantee quiescence (no concurrent mutation), so every
            // reachable node is live.
            let node_ref = unsafe { &*node };
            if node_ref.is_leaf {
                if !node_ref.key.is_sentinel() {
                    count += 1;
                }
            } else {
                stack.push(clean(node_ref.left.load(Ordering::Acquire)));
                stack.push(clean(node_ref.right.load(Ordering::Acquire)));
            }
        }
        count
    }

    /// True if the set currently holds no elements (quiescent-only helper).
    pub fn is_empty(&self, handle: &mut S::Handle) -> bool {
        self.len(handle) == 0
    }
}

impl<K, S: Smr> Drop for LockFreeBst<K, S> {
    fn drop(&mut self) {
        // Exclusive access: free every node still reachable. Unlinked nodes belong to
        // the reclamation scheme.
        let mut stack = vec![
            clean(self.root.left.load(Ordering::Relaxed)),
            clean(self.root.right.load(Ordering::Relaxed)),
        ];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            crate::oracle::deregister(node);
            // Sanctioned free path: structure teardown walk under `&mut self`.
            #[allow(clippy::disallowed_methods)]
            // SAFETY: exclusive access; each reachable node is freed exactly once.
            let boxed = unsafe { Box::from_raw(node) };
            if !boxed.is_leaf {
                stack.push(clean(boxed.left.load(Ordering::Relaxed)));
                stack.push(clean(boxed.right.load(Ordering::Relaxed)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::{Leaky, SmrConfig};
    use std::collections::BTreeSet;

    fn leaky_bst() -> LockFreeBst<u64, Leaky> {
        LockFreeBst::new(Leaky::new(SmrConfig::for_bst().with_max_threads(8)))
    }

    #[test]
    fn empty_tree_contains_nothing() {
        let bst = leaky_bst();
        let mut h = bst.register();
        assert!(!bst.contains(&7, &mut h));
        assert_eq!(bst.len(&mut h), 0);
        assert!(bst.is_empty(&mut h));
    }

    #[test]
    fn insert_contains_remove_round_trip() {
        let bst = leaky_bst();
        let mut h = bst.register();
        assert!(bst.insert(7, &mut h));
        assert!(!bst.insert(7, &mut h));
        assert!(bst.contains(&7, &mut h));
        assert!(!bst.contains(&8, &mut h));
        assert!(bst.remove(&7, &mut h));
        assert!(!bst.remove(&7, &mut h));
        assert!(!bst.contains(&7, &mut h));
        assert_eq!(bst.len(&mut h), 0);
    }

    #[test]
    fn single_element_tree_grows_and_shrinks() {
        let bst = leaky_bst();
        let mut h = bst.register();
        for round in 0..10_u64 {
            assert!(bst.insert(round, &mut h));
            assert_eq!(bst.len(&mut h), 1);
            assert!(bst.remove(&round, &mut h));
            assert_eq!(bst.len(&mut h), 0);
        }
    }

    #[test]
    fn ordered_and_reverse_ordered_insertions() {
        let bst = leaky_bst();
        let mut h = bst.register();
        for key in 0..200_u64 {
            assert!(bst.insert(key, &mut h));
        }
        for key in (200..400_u64).rev() {
            assert!(bst.insert(key, &mut h));
        }
        assert_eq!(bst.len(&mut h), 400);
        for key in 0..400_u64 {
            assert!(bst.contains(&key, &mut h), "missing {key}");
        }
        for key in (0..400_u64).step_by(3) {
            assert!(bst.remove(&key, &mut h));
        }
        for key in 0..400_u64 {
            assert_eq!(bst.contains(&key, &mut h), key % 3 != 0);
        }
    }

    #[test]
    fn matches_reference_set_on_mixed_operations() {
        let bst = leaky_bst();
        let mut h = bst.register();
        let mut reference = BTreeSet::new();
        let mut state = 0xdead_beef_cafe_f00d_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 128;
            match state % 3 {
                0 => assert_eq!(
                    bst.insert(key, &mut h),
                    reference.insert(key),
                    "insert {key}"
                ),
                1 => assert_eq!(
                    bst.remove(&key, &mut h),
                    reference.remove(&key),
                    "remove {key}"
                ),
                _ => assert_eq!(
                    bst.contains(&key, &mut h),
                    reference.contains(&key),
                    "contains {key}"
                ),
            }
        }
        assert_eq!(bst.len(&mut h), reference.len());
    }

    #[test]
    fn works_with_clonable_non_copy_keys() {
        let bst: LockFreeBst<String, Leaky> = LockFreeBst::new(Leaky::new(SmrConfig::for_bst()));
        let mut h = bst.register();
        assert!(bst.insert("m".to_string(), &mut h));
        assert!(bst.insert("a".to_string(), &mut h));
        assert!(bst.insert("z".to_string(), &mut h));
        assert!(bst.contains(&"a".to_string(), &mut h));
        assert!(bst.remove(&"m".to_string(), &mut h));
        assert_eq!(bst.len(&mut h), 2);
    }
}
