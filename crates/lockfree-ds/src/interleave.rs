//! Deterministic interleaving harness (test-only).
//!
//! The races this crate's structures have to defend against live in windows of a
//! few instructions — between a traversal's *validation* of a link and the CAS
//! that acts on what was validated. Stress tests cross those windows once in
//! millions of runs; this module makes the crossing *deterministic* instead.
//!
//! Structures call [`hit`] at named **pause points** placed exactly at the
//! validate/CAS boundaries. With the `interleave` feature disabled (the default,
//! and always the case for release builds: the feature is only enabled by test
//! targets), `hit` compiles to an empty inline function — zero cost, no
//! dependencies. With the feature enabled, a test installs a hook for a point
//! and can park the thread that reaches it, run a conflicting operation to
//! completion on another thread, and only then let the parked thread take its
//! CAS — forcing the exact schedule a bug report describes, every run.
//!
//! Two kinds of clients build on the pause points:
//!
//! - **Per-point hooks** ([`install`], [`Trap`], [`Counter`]) force *one*
//!   hand-written schedule: park the victim thread in its window, drive the
//!   conflicting operation to completion, resume. Installing two hooks at the
//!   same point is a test bug (the second would silently shadow the first), so
//!   [`install`] and [`Trap::arm`] panic on conflict; [`try_install`] returns
//!   the conflict as an error for tests that want to handle it.
//! - **The scheduler hook** ([`set_scheduler`]) observes *every* pause point on
//!   participating threads. `crates/reclaim-check`'s explorer uses it to
//!   serialize model threads and enumerate all interleavings up to a preemption
//!   bound — the systematic generalization of the one-shot `Trap` choreography.
//!
//! Hooks and the scheduler are process-global (the pause points are reached deep
//! inside data structure internals), so tests that install them must serialize
//! themselves (e.g. with a shared `Mutex`) if they can run in the same process.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Fast-path gate: pause points only take the hook lock while at least one hook
/// is installed, so an instrumented binary with no active test pays one relaxed
/// load per pause point.
static ACTIVE_HOOKS: AtomicUsize = AtomicUsize::new(0);

/// Fast-path gate for the scheduler hook, kept separate from [`ACTIVE_HOOKS`]
/// so per-point traps and a running explorer do not interfere with each other's
/// accounting.
static SCHEDULER_ACTIVE: AtomicBool = AtomicBool::new(false);

type Hook = Arc<dyn Fn() + Send + Sync>;

/// A scheduler observes every pause point (the point name is passed through);
/// it decides when the calling thread may proceed, typically by parking it.
type Scheduler = Arc<dyn Fn(&'static str) + Send + Sync>;

/// Installed per-point hooks, keyed by pause-point name.
fn hooks() -> &'static Mutex<HashMap<&'static str, Hook>> {
    static HOOKS: OnceLock<Mutex<HashMap<&'static str, Hook>>> = OnceLock::new();
    HOOKS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The (single) installed scheduler hook.
fn scheduler() -> &'static Mutex<Option<Scheduler>> {
    static SCHEDULER: OnceLock<Mutex<Option<Scheduler>>> = OnceLock::new();
    SCHEDULER.get_or_init(|| Mutex::new(None))
}

/// A pause point. Structures call this at validate/CAS boundaries; if a
/// scheduler is set, it runs first (and may park the calling thread until it is
/// granted a turn); if a test installed a hook for `point`, the hook then runs
/// on the calling thread (and may block it until the test releases it).
#[inline]
pub fn hit(point: &'static str) {
    if SCHEDULER_ACTIVE.load(Ordering::Acquire) {
        let sched = scheduler()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(Arc::clone);
        if let Some(sched) = sched {
            sched(point);
        }
    }
    if ACTIVE_HOOKS.load(Ordering::Acquire) == 0 {
        return;
    }
    let hook = hooks()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(point)
        .map(Arc::clone);
    if let Some(hook) = hook {
        hook();
    }
}

/// Error returned by [`try_install`] / [`try_set_scheduler`] when the slot is
/// already taken. Two traps arming the same point in one test is always a test
/// bug: the second hook would shadow the first and the first trap's
/// `wait_for_parked` would hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmConflict {
    /// The contested pause point (the scheduler conflict uses `"<scheduler>"`).
    pub point: &'static str,
}

impl fmt::Display for ArmConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interleave: a hook is already installed at pause point `{}`; \
             drop the existing HookGuard/Trap before arming another \
             (hooks are process-global — serialize tests that share points)",
            self.point
        )
    }
}

impl std::error::Error for ArmConflict {}

/// Uninstalls its hook on drop.
pub struct HookGuard {
    point: &'static str,
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        let mut map = hooks().lock().unwrap_or_else(|e| e.into_inner());
        if map.remove(self.point).is_some() {
            ACTIVE_HOOKS.fetch_sub(1, Ordering::Release);
        }
    }
}

/// Installs `hook` at `point`. The hook runs on whichever thread reaches the
/// point. Returns [`ArmConflict`] if a hook is already installed there —
/// layering hooks at one point silently breaks whichever trap armed first.
pub fn try_install(
    point: &'static str,
    hook: impl Fn() + Send + Sync + 'static,
) -> Result<HookGuard, ArmConflict> {
    let mut map = hooks().lock().unwrap_or_else(|e| e.into_inner());
    if map.contains_key(point) {
        return Err(ArmConflict { point });
    }
    map.insert(point, Arc::new(hook));
    ACTIVE_HOOKS.fetch_add(1, Ordering::Release);
    Ok(HookGuard { point })
}

/// Installs `hook` at `point`, panicking if a hook is already installed there.
///
/// # Panics
///
/// Panics with a clear diagnostic on a double-install — see [`try_install`] for
/// the fallible variant.
pub fn install(point: &'static str, hook: impl Fn() + Send + Sync + 'static) -> HookGuard {
    match try_install(point, hook) {
        Ok(guard) => guard,
        Err(conflict) => panic!("{conflict}"),
    }
}

/// Uninstalls the scheduler on drop.
pub struct SchedulerGuard {
    _private: (),
}

impl Drop for SchedulerGuard {
    fn drop(&mut self) {
        let mut slot = scheduler().lock().unwrap_or_else(|e| e.into_inner());
        SCHEDULER_ACTIVE.store(false, Ordering::Release);
        *slot = None;
    }
}

/// Installs the process-global scheduler hook: `sched` is called with the point
/// name at **every** pause point on every thread until the returned guard
/// drops. At most one scheduler can be active; a second [`try_set_scheduler`]
/// returns [`ArmConflict`] (explorers must serialize, exactly like traps).
pub fn try_set_scheduler(
    sched: impl Fn(&'static str) + Send + Sync + 'static,
) -> Result<SchedulerGuard, ArmConflict> {
    let mut slot = scheduler().lock().unwrap_or_else(|e| e.into_inner());
    if slot.is_some() {
        return Err(ArmConflict {
            point: "<scheduler>",
        });
    }
    *slot = Some(Arc::new(sched));
    SCHEDULER_ACTIVE.store(true, Ordering::Release);
    Ok(SchedulerGuard { _private: () })
}

/// Panicking variant of [`try_set_scheduler`].
pub fn set_scheduler(sched: impl Fn(&'static str) + Send + Sync + 'static) -> SchedulerGuard {
    match try_set_scheduler(sched) {
        Ok(guard) => guard,
        Err(conflict) => panic!("{conflict}"),
    }
}

#[derive(Default)]
struct TrapState {
    /// Number of threads that have reached the point so far.
    arrivals: usize,
    /// True once the test has released the trap; later arrivals pass through.
    released: bool,
}

/// A one-shot rendezvous at a pause point: the **first** thread to reach the
/// point parks until [`release`](Trap::release); every later (or post-release)
/// arrival passes straight through. This is the shape every forced schedule in
/// this repo needs — park the victim thread in its window once, drive the
/// conflicting operation to completion, resume.
pub struct Trap {
    state: Arc<(Mutex<TrapState>, Condvar)>,
    _guard: HookGuard,
}

impl Trap {
    /// Arms a one-shot trap at `point`, panicking if the point already has a
    /// hook (see [`Trap::try_arm`]).
    pub fn arm(point: &'static str) -> Self {
        match Self::try_arm(point) {
            Ok(trap) => trap,
            Err(conflict) => panic!("{conflict}"),
        }
    }

    /// Arms a one-shot trap at `point`; returns [`ArmConflict`] if the point
    /// already has a hook installed.
    pub fn try_arm(point: &'static str) -> Result<Self, ArmConflict> {
        let state = Arc::new((Mutex::new(TrapState::default()), Condvar::new()));
        let hook_state = Arc::clone(&state);
        let guard = try_install(point, move || {
            let (lock, cvar) = &*hook_state;
            let mut s = lock.lock().unwrap_or_else(|e| e.into_inner());
            s.arrivals += 1;
            if s.arrivals > 1 || s.released {
                return; // one-shot: only the first arrival parks
            }
            cvar.notify_all(); // wake `wait_for_parked`
            while !s.released {
                s = cvar.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        })?;
        Ok(Self {
            state,
            _guard: guard,
        })
    }

    /// Blocks until a thread is parked at the point (i.e. the window is open).
    pub fn wait_for_parked(&self) {
        let (lock, cvar) = &*self.state;
        let mut s = lock.lock().unwrap_or_else(|e| e.into_inner());
        while s.arrivals == 0 {
            s = cvar.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Releases the parked thread (and lets every future arrival pass through).
    pub fn release(&self) {
        let (lock, cvar) = &*self.state;
        let mut s = lock.lock().unwrap_or_else(|e| e.into_inner());
        s.released = true;
        cvar.notify_all();
    }

    /// How many times the point has been reached so far.
    pub fn arrivals(&self) -> usize {
        let (lock, _) = &*self.state;
        lock.lock().unwrap_or_else(|e| e.into_inner()).arrivals
    }
}

/// Counts hits at a pause point without blocking anyone (for asserting that a
/// forced schedule actually drove the code through the instrumented window).
pub struct Counter {
    count: Arc<AtomicUsize>,
    _guard: HookGuard,
}

impl Counter {
    /// Installs a counting hook at `point`, panicking on conflict like
    /// [`install`].
    pub fn arm(point: &'static str) -> Self {
        let count = Arc::new(AtomicUsize::new(0));
        let hook_count = Arc::clone(&count);
        let guard = install(point, move || {
            hook_count.fetch_add(1, Ordering::Relaxed);
        });
        Self {
            count,
            _guard: guard,
        }
    }

    /// Number of times the point has been hit since arming.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

/// Whether any hook is currently installed (diagnostics).
pub fn any_active() -> bool {
    ACTIVE_HOOKS.load(Ordering::Acquire) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    // The hook registry is process-global; these unit tests use distinct point
    // names so they can run concurrently with each other.

    #[test]
    fn hit_without_hooks_is_a_no_op() {
        hit("interleave::test::never-installed");
    }

    #[test]
    fn install_and_drop_toggle_activity() {
        let before = ACTIVE_HOOKS.load(Ordering::Acquire);
        let guard = install("interleave::test::toggle", || {});
        assert!(ACTIVE_HOOKS.load(Ordering::Acquire) > before);
        drop(guard);
        assert_eq!(ACTIVE_HOOKS.load(Ordering::Acquire), before);
    }

    #[test]
    fn double_install_is_a_clear_error_and_first_hook_survives() {
        let count = Arc::new(AtomicUsize::new(0));
        let hook_count = Arc::clone(&count);
        let first = install("interleave::test::conflict", move || {
            hook_count.fetch_add(1, Ordering::Relaxed);
        });
        let err = try_install("interleave::test::conflict", || {})
            .err()
            .expect("second install at the same point must be rejected");
        assert_eq!(err.point, "interleave::test::conflict");
        assert!(err.to_string().contains("interleave::test::conflict"));
        // The rejected install must not have disturbed the original hook.
        hit("interleave::test::conflict");
        assert_eq!(count.load(Ordering::Relaxed), 1, "first hook still live");
        drop(first);
        hit("interleave::test::conflict");
        assert_eq!(count.load(Ordering::Relaxed), 1, "now uninstalled");
        // The slot is free again after the guard drops.
        let _again = install("interleave::test::conflict", || {});
    }

    #[test]
    fn trap_arm_conflict_panics_with_point_name() {
        let _first = Trap::arm("interleave::test::trap-conflict");
        let second = Trap::try_arm("interleave::test::trap-conflict");
        assert!(second.is_err());
        let panic = std::panic::catch_unwind(|| {
            let _ = Trap::arm("interleave::test::trap-conflict");
        })
        .expect_err("arming over a live trap must panic");
        let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("interleave::test::trap-conflict"),
            "panic must name the contested point, got: {msg}"
        );
    }

    #[test]
    fn counter_counts_hits() {
        let counter = Counter::arm("interleave::test::counter");
        hit("interleave::test::counter");
        hit("interleave::test::counter");
        assert_eq!(counter.count(), 2);
    }

    #[test]
    fn trap_parks_first_arrival_until_release() {
        let trap = Trap::arm("interleave::test::trap");
        let worker = thread::spawn(|| {
            hit("interleave::test::trap");
            hit("interleave::test::trap"); // second arrival passes through
        });
        trap.wait_for_parked();
        assert_eq!(trap.arrivals(), 1);
        trap.release();
        worker.join().unwrap();
        assert_eq!(trap.arrivals(), 2);
    }

    #[test]
    fn released_trap_never_blocks() {
        let trap = Trap::arm("interleave::test::released");
        trap.release();
        hit("interleave::test::released"); // must not deadlock
        assert_eq!(trap.arrivals(), 1);
    }

    #[test]
    fn scheduler_sees_every_point_and_second_scheduler_is_rejected() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sched_seen = Arc::clone(&seen);
        let guard = set_scheduler(move |point| {
            sched_seen
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(point);
        });
        assert!(try_set_scheduler(|_| {}).is_err());
        hit("interleave::test::sched-a");
        hit("interleave::test::sched-b");
        {
            let seen = seen.lock().unwrap_or_else(|e| e.into_inner());
            assert!(seen.contains(&"interleave::test::sched-a"));
            assert!(seen.contains(&"interleave::test::sched-b"));
        }
        drop(guard);
        hit("interleave::test::sched-after-drop");
        let seen = seen.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!seen.contains(&"interleave::test::sched-after-drop"));
    }
}
