//! Deterministic interleaving harness (test-only).
//!
//! The races this crate's structures have to defend against live in windows of a
//! few instructions — between a traversal's *validation* of a link and the CAS
//! that acts on what was validated. Stress tests cross those windows once in
//! millions of runs; this module makes the crossing *deterministic* instead.
//!
//! Structures call [`hit`] at named **pause points** placed exactly at the
//! validate/CAS boundaries. With the `interleave` feature disabled (the default,
//! and always the case for release builds: the feature is only enabled by test
//! targets), `hit` compiles to an empty inline function — zero cost, no
//! dependencies. With the feature enabled, a test installs a hook for a point
//! and can park the thread that reaches it, run a conflicting operation to
//! completion on another thread, and only then let the parked thread take its
//! CAS — forcing the exact schedule a bug report describes, every run.
//!
//! The primary client is the skip-list upper-level re-link race (see
//! `skiplist.rs`): a complete `remove` (mark all levels + sweep + retire) is
//! driven through the window between `insert`'s per-level validation
//! (`succs[0] == node`) and its `pred.next[level]` CAS. The same harness audits
//! the analogous windows in `list.rs` and `bst.rs`.
//!
//! Hooks are process-global (the pause points are reached deep inside data
//! structure internals), so tests that install hooks must serialize themselves
//! (e.g. with a shared `Mutex`) if they can run in the same process.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Fast-path gate: pause points only take the hook lock while at least one hook
/// is installed, so an instrumented binary with no active test pays one relaxed
/// load per pause point.
static ACTIVE_HOOKS: AtomicUsize = AtomicUsize::new(0);

type Hook = Arc<dyn Fn() + Send + Sync>;

/// Installed hooks, each tagged with a unique token so a [`HookGuard`] whose
/// hook was since *replaced* cannot remove (or mis-account) its successor.
fn hooks() -> &'static Mutex<HashMap<&'static str, (u64, Hook)>> {
    static HOOKS: OnceLock<Mutex<HashMap<&'static str, (u64, Hook)>>> = OnceLock::new();
    HOOKS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn next_token() -> u64 {
    static TOKEN: AtomicUsize = AtomicUsize::new(1);
    TOKEN.fetch_add(1, Ordering::Relaxed) as u64
}

/// A pause point. Structures call this at validate/CAS boundaries; if a test
/// installed a hook for `point`, the hook runs on the calling thread (and may
/// block it until the test releases it).
#[inline]
pub fn hit(point: &'static str) {
    if ACTIVE_HOOKS.load(Ordering::Acquire) == 0 {
        return;
    }
    let hook = hooks()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(point)
        .map(|(_, hook)| Arc::clone(hook));
    if let Some(hook) = hook {
        hook();
    }
}

/// Uninstalls its hook on drop — but only if that exact hook is still the one
/// installed: a guard whose hook was replaced by a later [`install`] at the
/// same point is stale and must neither remove the successor nor decrement the
/// active count (the replacing `install` already absorbed this guard's share).
pub struct HookGuard {
    point: &'static str,
    token: u64,
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        let mut map = hooks().lock().unwrap_or_else(|e| e.into_inner());
        if map.get(self.point).is_some_and(|(t, _)| *t == self.token)
            && map.remove(self.point).is_some()
        {
            ACTIVE_HOOKS.fetch_sub(1, Ordering::Release);
        }
    }
}

/// Installs `hook` at `point`, replacing any previous hook there (the previous
/// hook's guard becomes inert). The hook runs on whichever thread reaches the
/// point.
pub fn install(point: &'static str, hook: impl Fn() + Send + Sync + 'static) -> HookGuard {
    let token = next_token();
    let mut map = hooks().lock().unwrap_or_else(|e| e.into_inner());
    if map.insert(point, (token, Arc::new(hook))).is_none() {
        ACTIVE_HOOKS.fetch_add(1, Ordering::Release);
    }
    HookGuard { point, token }
}

#[derive(Default)]
struct TrapState {
    /// Number of threads that have reached the point so far.
    arrivals: usize,
    /// True once the test has released the trap; later arrivals pass through.
    released: bool,
}

/// A one-shot rendezvous at a pause point: the **first** thread to reach the
/// point parks until [`release`](Trap::release); every later (or post-release)
/// arrival passes straight through. This is the shape every forced schedule in
/// this repo needs — park the victim thread in its window once, drive the
/// conflicting operation to completion, resume.
pub struct Trap {
    state: Arc<(Mutex<TrapState>, Condvar)>,
    _guard: HookGuard,
}

impl Trap {
    /// Arms a one-shot trap at `point`.
    pub fn arm(point: &'static str) -> Self {
        let state = Arc::new((Mutex::new(TrapState::default()), Condvar::new()));
        let hook_state = Arc::clone(&state);
        let guard = install(point, move || {
            let (lock, cvar) = &*hook_state;
            let mut s = lock.lock().unwrap_or_else(|e| e.into_inner());
            s.arrivals += 1;
            if s.arrivals > 1 || s.released {
                return; // one-shot: only the first arrival parks
            }
            cvar.notify_all(); // wake `wait_for_parked`
            while !s.released {
                s = cvar.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        });
        Self {
            state,
            _guard: guard,
        }
    }

    /// Blocks until a thread is parked at the point (i.e. the window is open).
    pub fn wait_for_parked(&self) {
        let (lock, cvar) = &*self.state;
        let mut s = lock.lock().unwrap_or_else(|e| e.into_inner());
        while s.arrivals == 0 {
            s = cvar.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Releases the parked thread (and lets every future arrival pass through).
    pub fn release(&self) {
        let (lock, cvar) = &*self.state;
        let mut s = lock.lock().unwrap_or_else(|e| e.into_inner());
        s.released = true;
        cvar.notify_all();
    }

    /// How many times the point has been reached so far.
    pub fn arrivals(&self) -> usize {
        let (lock, _) = &*self.state;
        lock.lock().unwrap_or_else(|e| e.into_inner()).arrivals
    }
}

/// Counts hits at a pause point without blocking anyone (for asserting that a
/// forced schedule actually drove the code through the instrumented window).
pub struct Counter {
    count: Arc<AtomicUsize>,
    _guard: HookGuard,
}

impl Counter {
    /// Installs a counting hook at `point`.
    pub fn arm(point: &'static str) -> Self {
        let count = Arc::new(AtomicUsize::new(0));
        let hook_count = Arc::clone(&count);
        let guard = install(point, move || {
            hook_count.fetch_add(1, Ordering::Relaxed);
        });
        Self {
            count,
            _guard: guard,
        }
    }

    /// Number of times the point has been hit since arming.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

/// Whether any hook is currently installed (diagnostics).
pub fn any_active() -> bool {
    ACTIVE_HOOKS.load(Ordering::Acquire) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    // The hook registry is process-global; these unit tests use distinct point
    // names so they can run concurrently with each other.

    #[test]
    fn hit_without_hooks_is_a_no_op() {
        hit("interleave::test::never-installed");
    }

    #[test]
    fn install_and_drop_toggle_activity() {
        let before = ACTIVE_HOOKS.load(Ordering::Acquire);
        let guard = install("interleave::test::toggle", || {});
        assert!(ACTIVE_HOOKS.load(Ordering::Acquire) > before);
        drop(guard);
        assert_eq!(ACTIVE_HOOKS.load(Ordering::Acquire), before);
    }

    #[test]
    fn replacing_a_hook_leaves_the_successor_live_after_the_stale_guard_drops() {
        let count = Arc::new(AtomicUsize::new(0));
        let first = install("interleave::test::replace", || {});
        let hook_count = Arc::clone(&count);
        let second = install("interleave::test::replace", move || {
            hook_count.fetch_add(1, Ordering::Relaxed);
        });
        // Dropping the *replaced* guard must not uninstall (or de-activate) the
        // replacement.
        drop(first);
        hit("interleave::test::replace");
        assert_eq!(count.load(Ordering::Relaxed), 1, "successor hook must fire");
        drop(second);
        hit("interleave::test::replace");
        assert_eq!(count.load(Ordering::Relaxed), 1, "now uninstalled");
    }

    #[test]
    fn counter_counts_hits() {
        let counter = Counter::arm("interleave::test::counter");
        hit("interleave::test::counter");
        hit("interleave::test::counter");
        assert_eq!(counter.count(), 2);
    }

    #[test]
    fn trap_parks_first_arrival_until_release() {
        let trap = Trap::arm("interleave::test::trap");
        let worker = thread::spawn(|| {
            hit("interleave::test::trap");
            hit("interleave::test::trap"); // second arrival passes through
        });
        trap.wait_for_parked();
        assert_eq!(trap.arrivals(), 1);
        trap.release();
        worker.join().unwrap();
        assert_eq!(trap.arrivals(), 2);
    }

    #[test]
    fn released_trap_never_blocks() {
        let trap = Trap::arm("interleave::test::released");
        trap.release();
        hit("interleave::test::released"); // must not deadlock
        assert_eq!(trap.arrivals(), 1);
    }
}
