//! # ebr — epoch-based reclamation with per-operation pinning
//!
//! The classic epoch-based technique from the paper's related work (§8,
//! "Epoch-based techniques" [13, 14]): every operation *pins* the thread at the
//! current global epoch; the epoch may advance once every pinned thread has observed
//! it; a retired node may be freed two epoch advances after its retirement.
//!
//! This crate exists as an additional baseline for the evaluation, sitting between
//! the paper's two fast-path candidates:
//!
//! | scheme | hot-path cost | blocked by an idle thread | blocked by a stalled operation |
//! |--------|---------------|---------------------------|--------------------------------|
//! | QSBR (`qsbr`) | nothing (one shared store per `Q` ops) | **yes** | yes |
//! | EBR (this crate) | one shared store per op | no | **yes** |
//! | Cadence / QSense fallback | one local store per node | no | no |
//!
//! Like QSBR it is *blocking* in the paper's sense — a thread delayed in the middle
//! of an operation stops all reclamation — so it cannot replace the Cadence fallback
//! path; it documents where the classic alternative lands on the fast/robust
//! trade-off the paper's introduction describes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod pin;
mod scheme;

pub use pin::PinRecord;
pub use scheme::{Ebr, EbrHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::{retire_box, Smr, SmrConfig, SmrHandle};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>) -> *mut Tracked {
        Box::into_raw(Box::new(Tracked(Arc::clone(drops))))
    }

    #[test]
    fn interleaved_pins_from_many_threads_never_lose_nodes() {
        let drops = Arc::new(AtomicUsize::new(0));
        let retired = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(
            SmrConfig::default()
                .with_max_threads(8)
                .with_scan_threshold(8),
        );
        let threads: Vec<_> = (0..6)
            .map(|t| {
                let scheme = Arc::clone(&scheme);
                let drops = Arc::clone(&drops);
                let retired = Arc::clone(&retired);
                thread::spawn(move || {
                    let mut handle = scheme.register();
                    for i in 0..400 {
                        handle.begin_op();
                        if (i + t) % 3 != 0 {
                            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
                            unsafe { retire_box(&mut handle, tracked(&drops)) };
                            retired.fetch_add(1, Ordering::SeqCst);
                        }
                        handle.end_op();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), retired.load(Ordering::SeqCst));
    }

    #[test]
    fn stats_track_retired_and_freed_consistently() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(SmrConfig::default().with_scan_threshold(2));
        let mut handle = scheme.register();
        for _ in 0..20 {
            handle.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
            handle.end_op();
        }
        handle.flush();
        let snap = scheme.stats();
        assert_eq!(snap.retired, 20);
        assert_eq!(snap.freed, 20);
        assert_eq!(snap.in_limbo(), 0);
        assert!(snap.quiescent_states > 0, "epoch advances are counted");
        assert_eq!(snap.traversal_fences, 0, "EBR issues no traversal fences");
    }

    #[test]
    fn handle_drop_parks_protected_leftovers_instead_of_leaking() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_scan_threshold(1_000),
        );
        let mut blocker = scheme.register();
        blocker.begin_op(); // holds the epoch back so the worker's nodes stay young
        {
            let mut worker = scheme.register();
            worker.begin_op();
            for _ in 0..10 {
                // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
                unsafe { retire_box(&mut worker, tracked(&drops)) };
            }
            worker.end_op();
            // worker drops here with its nodes still too young to free
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "nothing freed while blocked"
        );
        blocker.end_op();
        drop(blocker);
        drop(scheme);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            10,
            "scheme drop releases parked nodes"
        );
    }
}
