//! The EBR scheme object and per-thread handle.

use crate::pin::PinRecord;
use qsbr::GlobalEpoch;
use reclaim_core::retired::DropFn;
use reclaim_core::stats::{StatStripe, StatsSnapshot};
use reclaim_core::{
    CachePadded, Registry, RetiredBag, RetiredPtr, SlotId, Smr, SmrConfig, SmrHandle,
};
use std::sync::{Arc, Mutex};

/// A retired node may be freed once the global epoch has advanced this many times
/// past the epoch in which it was retired: by then every thread that was pinned when
/// the node was unlinked has unpinned at least once, dropping its references.
const SAFE_EPOCH_GAP: u64 = 2;

/// Epoch-based reclamation with per-operation pinning (the classic epoch scheme of
/// the paper's related work, [13, 14] — Fraser's technique, the one crossbeam-epoch
/// popularized).
///
/// Compared to [`qsbr::Qsbr`]:
///
/// * protection is the *operation* (a thread pins on `begin_op` and unpins on
///   `end_op`), so an idle registered thread never blocks reclamation — under QSBR an
///   idle thread that stops calling `manage_qsense_state` blocks everyone;
/// * the price is one shared store per operation on the hot path (the pin) instead
///   of one per `Q` operations;
/// * a thread *delayed in the middle of an operation* still blocks the epoch, so the
///   scheme remains blocking in the sense that motivates the paper: it is a faster
///   point in the same robustness class as QSBR, not a replacement for the fallback
///   path.
pub struct Ebr {
    config: SmrConfig,
    global_epoch: GlobalEpoch,
    registry: Registry<PinRecord>,
    /// Counter stripe for events with no owning slot (successful epoch advances,
    /// parked-bag frees at drop).
    scheme_stats: CachePadded<StatStripe>,
    /// Limbo leftovers of threads that deregistered before their nodes became
    /// reclaimable; freed when the scheme drops.
    parked: Mutex<Vec<RetiredBag>>,
}

impl Ebr {
    /// Creates an EBR scheme with the given configuration.
    pub fn new(config: SmrConfig) -> Arc<Self> {
        let registry = Registry::new(config.max_threads, |_| PinRecord::new());
        Arc::new(Self {
            config,
            global_epoch: GlobalEpoch::new(),
            registry,
            scheme_stats: CachePadded::new(StatStripe::new()),
            parked: Mutex::new(Vec::new()),
        })
    }

    /// Creates an EBR scheme with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SmrConfig::default())
    }

    /// The configuration this scheme was created with.
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }

    /// The current global epoch (exposed for tests and diagnostics).
    pub fn current_epoch(&self) -> u64 {
        self.global_epoch.load()
    }

    /// Attempts to advance the global epoch by one. Succeeds only if every *pinned*
    /// thread has already observed the current epoch; idle (unpinned) threads are
    /// ignored — the defining difference from QSBR.
    pub fn try_advance(&self) -> bool {
        let global = self.global_epoch.load();
        let all_caught_up = self
            .registry
            .iter_claimed()
            .all(|(_, record)| record.permits_advance_from(global));
        if all_caught_up && self.global_epoch.try_advance(global) {
            self.scheme_stats.add_quiescent_state();
            return true;
        }
        false
    }
}

impl Smr for Ebr {
    type Handle = EbrHandle;

    fn register(self: &Arc<Self>) -> EbrHandle {
        let slot = self
            .registry
            .acquire()
            .expect("ebr: more threads registered than config.max_threads");
        // A fresh thread starts unpinned; an unpinned record never blocks advancement.
        self.registry.get_mine(slot).unpin();
        EbrHandle {
            scheme: Arc::clone(self),
            slot,
            limbo: Vec::new(),
            retires_since_advance: 0,
        }
    }

    fn name(&self) -> &'static str {
        "ebr"
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        self.registry.merge_stats(&mut snap);
        self.scheme_stats.merge_into(&mut snap);
        snap
    }
}

impl Drop for Ebr {
    fn drop(&mut self) {
        // All handles are gone, so nobody can hold a reference to any parked node.
        let mut parked = self.parked.lock().unwrap_or_else(|e| e.into_inner());
        for mut bag in parked.drain(..) {
            let freed = unsafe { bag.reclaim_all() };
            self.scheme_stats.add_freed(freed as u64);
        }
    }
}

/// Per-thread handle for [`Ebr`].
pub struct EbrHandle {
    scheme: Arc<Ebr>,
    slot: SlotId,
    /// Retired nodes tagged with the global epoch observed at retirement time.
    /// A node may be freed once `global >= epoch + SAFE_EPOCH_GAP`.
    limbo: Vec<(u64, RetiredPtr)>,
    retires_since_advance: usize,
}

impl EbrHandle {
    fn record(&self) -> &PinRecord {
        self.scheme.registry.get_mine(self.slot)
    }

    /// Number of retired-but-unreclaimed nodes held by this thread.
    pub fn limbo_size(&self) -> usize {
        self.limbo.len()
    }

    fn stats(&self) -> &StatStripe {
        self.scheme.registry.stats(self.slot)
    }

    /// Frees every limbo node whose retirement epoch is at least [`SAFE_EPOCH_GAP`]
    /// behind the current global epoch. Returns the number of nodes freed.
    ///
    /// The partition is done in place with `swap_remove` (allocation-free; runs on
    /// every pin once the limbo list is non-empty).
    fn collect(&mut self) -> usize {
        let global = self.scheme.global_epoch.load();
        let mut freed = 0usize;
        let mut i = 0usize;
        while i < self.limbo.len() {
            if global >= self.limbo[i].0 + SAFE_EPOCH_GAP {
                let (_, node) = self.limbo.swap_remove(i);
                // SAFETY: a node tagged with epoch `e` was already unlinked when the
                // tag was taken. Only threads pinned at that moment can still hold
                // references to it, and every epoch advance requires all pinned
                // threads to have observed the epoch being left; by the time the
                // global epoch reaches `e + 2` every thread that was pinned at an
                // epoch `<= e` has unpinned at least once, dropping all references
                // obtained before the unlink. The node is therefore unreachable.
                unsafe { node.reclaim() };
                freed += 1;
                // The entry swapped into `i` is unexamined; stay put.
            } else {
                i += 1;
            }
        }
        self.stats().add_freed(freed as u64);
        freed
    }
}

impl SmrHandle for EbrHandle {
    fn begin_op(&mut self) {
        // Pin: observe the global epoch and announce it together with the active
        // flag. This store-per-operation is EBR's hot-path cost.
        let global = self.scheme.global_epoch.load();
        self.record().pin(global);
        // Pinning is also the natural point to free what previous epoch advances
        // made safe (equivalent to crossbeam's collect-on-pin).
        if !self.limbo.is_empty() {
            self.collect();
        }
    }

    fn end_op(&mut self) {
        self.record().unpin();
    }

    fn protect(&mut self, _index: usize, _ptr: *mut u8) {
        // EBR needs no per-node protection: being pinned protects every node
        // reachable during the operation.
    }

    fn clear_protections(&mut self) {}

    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn) {
        self.stats().add_retired(1);
        let now = self.scheme.config.clock.now();
        // Tag with the *current* global epoch (not the pin-time one): the global may
        // have advanced once since this thread pinned, and the larger tag only delays
        // reclamation, never endangers it.
        let epoch = self.scheme.global_epoch.load();
        // SAFETY: forwarded from the caller's contract.
        self.limbo
            .push((epoch, unsafe { RetiredPtr::new(ptr, drop_fn, now) }));
        self.retires_since_advance += 1;
        if self.retires_since_advance >= self.scheme.config.scan_threshold {
            self.retires_since_advance = 0;
            self.scheme.try_advance();
        }
    }

    fn flush(&mut self) {
        // Make a best-effort attempt to push the epoch far enough forward that every
        // limbo node becomes reclaimable, then free whatever the advances allowed.
        // The thread must not be pinned while doing this (flush is called between
        // operations), so unpin defensively.
        self.record().unpin();
        for _ in 0..2 * SAFE_EPOCH_GAP {
            self.scheme.try_advance();
        }
        self.collect();
    }

    fn local_in_limbo(&self) -> usize {
        self.limbo.len()
    }
}

impl Drop for EbrHandle {
    fn drop(&mut self) {
        self.flush();
        if !self.limbo.is_empty() {
            // Whatever is still too young is parked on the scheme and released when
            // the scheme itself drops (no thread can touch the nodes by then).
            let mut leftovers = RetiredBag::new();
            for (_, node) in self.limbo.drain(..) {
                leftovers.push(node);
            }
            self.scheme
                .parked
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(leftovers);
        }
        self.scheme.registry.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::retire_box;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>) -> *mut Tracked {
        Box::into_raw(Box::new(Tracked(Arc::clone(drops))))
    }

    #[test]
    fn epoch_advances_even_with_an_idle_registered_thread() {
        let scheme = Ebr::new(SmrConfig::default().with_max_threads(2));
        let mut a = scheme.register();
        let _b = scheme.register(); // registered but idle: must not block
        let start = scheme.current_epoch();
        for _ in 0..4 {
            a.begin_op();
            a.end_op();
            scheme.try_advance();
        }
        assert!(scheme.current_epoch() > start);
    }

    #[test]
    fn a_thread_pinned_at_an_old_epoch_blocks_advancement() {
        let scheme = Ebr::new(SmrConfig::default().with_max_threads(2));
        let mut stuck = scheme.register();
        let mut active = scheme.register();
        stuck.begin_op(); // pins at the current epoch and never unpins
        let pinned_epoch = scheme.current_epoch();
        // The active thread can advance at most once (past the epoch the stuck
        // thread has already observed), then stalls.
        for _ in 0..10 {
            active.begin_op();
            active.end_op();
            scheme.try_advance();
        }
        assert!(scheme.current_epoch() <= pinned_epoch + 1);
        stuck.end_op();
        for _ in 0..4 {
            active.begin_op();
            active.end_op();
            scheme.try_advance();
        }
        assert!(scheme.current_epoch() > pinned_epoch + 1);
    }

    #[test]
    fn single_thread_reclaims_everything_on_flush() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(SmrConfig::default().with_scan_threshold(4));
        let mut handle = scheme.register();
        for _ in 0..100 {
            handle.begin_op();
            unsafe { retire_box(&mut handle, tracked(&drops)) };
            handle.end_op();
        }
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 100);
        let snap = scheme.stats();
        assert_eq!(snap.retired, 100);
        assert_eq!(snap.freed, 100);
    }

    #[test]
    fn an_idle_registered_thread_does_not_block_reclamation() {
        // The behavioural difference from QSBR: a registered thread that never
        // operates (and therefore never quiesces in QSBR terms) does not stop EBR
        // from reclaiming.
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_scan_threshold(1),
        );
        let _idle = scheme.register();
        let mut worker = scheme.register();
        for _ in 0..100 {
            worker.begin_op();
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        worker.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            100,
            "an idle thread must not block EBR"
        );
    }

    #[test]
    fn a_thread_stalled_mid_operation_blocks_reclamation() {
        // ... but a thread delayed *inside* an operation does block it — EBR is not
        // robust in the paper's sense, which is why QSense still needs Cadence.
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_scan_threshold(1),
        );
        let mut stalled = scheme.register();
        stalled.begin_op(); // never ends its operation
        let mut worker = scheme.register();
        for _ in 0..100 {
            worker.begin_op();
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        worker.flush();
        // The epoch can advance at most once past the stalled pin, so nothing the
        // worker retired can have aged by the required two epochs.
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "a mid-operation stall must block reclamation"
        );
        assert_eq!(worker.local_in_limbo(), 100);
        stalled.end_op();
        worker.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn nodes_are_never_freed_before_two_epoch_advances() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(SmrConfig::default().with_scan_threshold(1_000_000));
        let mut handle = scheme.register();
        handle.begin_op();
        for _ in 0..10 {
            unsafe { retire_box(&mut handle, tracked(&drops)) };
        }
        // Still pinned, no advance attempted: nothing may have been freed.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(handle.local_in_limbo(), 10);
        handle.end_op();
        // One advance is not enough.
        scheme.try_advance();
        handle.begin_op();
        handle.end_op();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_workers_reclaim_everything_by_scheme_drop() {
        use std::thread;
        let drops = Arc::new(AtomicUsize::new(0));
        let total = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(
            SmrConfig::default()
                .with_max_threads(4)
                .with_scan_threshold(16),
        );
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let scheme = Arc::clone(&scheme);
                let drops = Arc::clone(&drops);
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    let mut handle = scheme.register();
                    for _ in 0..500 {
                        handle.begin_op();
                        unsafe { retire_box(&mut handle, tracked(&drops)) };
                        total.fetch_add(1, Ordering::SeqCst);
                        handle.end_op();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), total.load(Ordering::SeqCst));
    }

    #[test]
    fn scheme_reports_name_and_config() {
        let scheme = Ebr::with_defaults();
        assert_eq!(scheme.name(), "ebr");
        assert!(scheme.config().max_threads >= 1);
    }
}
