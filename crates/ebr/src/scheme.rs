//! The EBR scheme object and per-thread handle.

use crate::pin::PinRecord;
use qsbr::GlobalEpoch;
use reclaim_core::retired::DropFn;
use reclaim_core::stats::{StatStripe, StatsSnapshot};
use reclaim_core::{
    BudgetGovernor, BudgetVerdict, CachePadded, CapacityExhausted, Era, HandleCache,
    HandleTelemetry, ParkedChain, Registry, RetiredPtr, SegBag, SegPool, SlotId, Smr, SmrConfig,
    SmrHandle, Telemetry, NO_BIRTH_ERA,
};
use std::sync::Arc;
use std::time::Instant;

/// A retired node may be freed once the global epoch has advanced this many times
/// past its **pin-time** tag. Three, not the classic two, because the tag is the
/// epoch the retirer observed when it *pinned*, which can lag the global epoch at
/// unlink time by one: a node tagged `T` may have been unlinked while the global
/// was already `T + 1`, and a reader that pinned at `T + 1` before the unlink can
/// hold a reference without ever blocking the advances to `T + 2` (a pin at `p`
/// only blocks advancement beyond `p + 1`). Only once the global reaches
/// `T + 3 >= p + 2` for every possible reader pin `p <= T + 1` is each such
/// reader guaranteed to have unpinned since the unlink. (A gap of 2 is sound
/// only for tags taken from a fresh global load *at retire time*, which is the
/// shared load per retire this design removes.)
const SAFE_EPOCH_GAP: u64 = 3;

/// Number of per-epoch limbo chains a handle keeps. Nodes tagged with epoch `e`
/// land in chain `e % LIMBO_BUCKETS`; two tags can collide in a bucket only when
/// they differ by at least `LIMBO_BUCKETS > SAFE_EPOCH_GAP` epochs, by which time
/// the older tag's nodes are reclaimable wholesale (see `EbrHandle::retire`).
const LIMBO_BUCKETS: usize = SAFE_EPOCH_GAP as usize + 1;

/// Epoch-based reclamation with per-operation pinning (the classic epoch scheme of
/// the paper's related work, [13, 14] — Fraser's technique, the one crossbeam-epoch
/// popularized).
///
/// Compared to [`qsbr::Qsbr`]:
///
/// * protection is the *operation* (a thread pins on `begin_op` and unpins on
///   `end_op`), so an idle registered thread never blocks reclamation — under QSBR an
///   idle thread that stops calling `manage_qsense_state` blocks everyone;
/// * the price is one shared store per operation on the hot path (the pin) instead
///   of one per `Q` operations;
/// * a thread *delayed in the middle of an operation* still blocks the epoch, so the
///   scheme remains blocking in the sense that motivates the paper: it is a faster
///   point in the same robustness class as QSBR, not a replacement for the fallback
///   path.
pub struct Ebr {
    config: SmrConfig,
    global_epoch: GlobalEpoch,
    registry: Registry<PinRecord>,
    /// Counter stripe for events with no owning slot (successful epoch advances,
    /// parked-bag frees at drop).
    scheme_stats: CachePadded<StatStripe>,
    /// Limbo leftovers of threads that deregistered before their nodes became
    /// reclaimable: the next surviving handle to flush adopts the chain into its
    /// current-epoch bucket, so the nodes are freed after an ordinary grace
    /// period instead of waiting for scheme drop (see [`ParkedChain`]).
    parked: ParkedChain,
    /// Segment pools of exited threads, adopted by the next registrant so
    /// handle churn is allocation-free after the first wave.
    handle_cache: HandleCache<SegPool>,
    /// Limbo-byte accounting and the budget escalation ladder. Unlike QSBR,
    /// EBR *can* escalate mid-operation — `try_advance` plus a bucket collect
    /// are safe at any point — but a thread stalled inside an operation still
    /// caps the epoch at `pin + 1`, so escalation helps against bursty load
    /// and is powerless against a mid-op stall (the verdict records which).
    governor: BudgetGovernor,
    /// Telemetry histograms (op latency, collect duration, retire→free delay).
    telemetry: Arc<Telemetry>,
}

impl Ebr {
    /// Creates an EBR scheme with the given configuration.
    pub fn new(config: SmrConfig) -> Arc<Self> {
        let registry = Registry::new(config.max_threads, |_| PinRecord::new());
        let handle_cache = HandleCache::with_capacity(config.max_threads);
        let governor = BudgetGovernor::new(config.limbo_budget, config.clock.clone());
        let telemetry = Arc::new(Telemetry::from_config(&config));
        Arc::new(Self {
            config,
            global_epoch: GlobalEpoch::new(),
            registry,
            scheme_stats: CachePadded::new(StatStripe::new()),
            parked: ParkedChain::new(),
            handle_cache,
            governor,
            telemetry,
        })
    }

    /// Creates an EBR scheme with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SmrConfig::default())
    }

    /// The configuration this scheme was created with.
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }

    /// The current global epoch (exposed for tests and diagnostics).
    pub fn current_epoch(&self) -> u64 {
        self.global_epoch.load()
    }

    /// Attempts to advance the global epoch by one. Succeeds only if every *pinned*
    /// thread has already observed the current epoch; idle (unpinned) threads are
    /// ignored — the defining difference from QSBR.
    pub fn try_advance(&self) -> bool {
        let global = self.global_epoch.load();
        let all_caught_up = self
            .registry
            .iter_claimed()
            .all(|(_, record)| record.permits_advance_from(global));
        if all_caught_up && self.global_epoch.try_advance(global) {
            self.scheme_stats.add_quiescent_state();
            return true;
        }
        false
    }
}

impl Smr for Ebr {
    type Handle = EbrHandle;

    fn try_register(self: &Arc<Self>) -> Result<EbrHandle, CapacityExhausted> {
        let slot = self.registry.try_acquire().map_err(|e| CapacityExhausted {
            scheme: "ebr",
            capacity: e.capacity,
        })?;
        // A fresh thread starts unpinned; an unpinned record never blocks advancement.
        self.registry.get_mine(slot).unpin();
        Ok(EbrHandle {
            budget_stripe: BudgetGovernor::stripe_for(slot.shard()),
            budget_reported: 0,
            tele: HandleTelemetry::attach(&self.telemetry),
            scheme: Arc::clone(self),
            slot,
            limbo: std::array::from_fn(|_| EpochChain {
                epoch: 0,
                bag: SegBag::new(),
            }),
            // Adopt a previous tenant's segment pool when available
            // (thread-pool churn; see `HandleCache`).
            pool: self.handle_cache.adopt().unwrap_or_default(),
            pin_epoch: self.global_epoch.load(),
            pinned: false,
            retires_since_advance: 0,
        })
    }

    fn name(&self) -> &'static str {
        "ebr"
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        self.registry.merge_stats(&mut snap);
        self.scheme_stats.merge_into(&mut snap);
        snap.peak_limbo_bytes = self.governor.peak_bytes();
        snap
    }

    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Some(self.governor.verdict())
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.telemetry)
    }
}

impl Drop for Ebr {
    fn drop(&mut self) {
        // All handles are gone, so nobody can hold a reference to any parked node.
        // SAFETY: parked nodes were retired by departed handles and survive until a scan proves them unprotected.
        let (freed, freed_bytes) = unsafe { self.parked.drain_all() };
        self.scheme_stats.add_freed(freed as u64);
        self.scheme_stats.add_freed_bytes(freed_bytes as u64);
        self.governor.note_parked(-(freed_bytes as i64));
    }
}

/// One per-epoch limbo chain: every node in `bag` was retired while the owner
/// was pinned at `epoch`, so the whole chain becomes reclaimable at once when
/// `global >= epoch + SAFE_EPOCH_GAP` — no per-node examination needed.
struct EpochChain {
    epoch: u64,
    bag: SegBag,
}

/// Per-thread handle for [`Ebr`].
///
/// The limbo state is the heart of EBR's retire-path cost model. A previous
/// revision kept one flat `Vec<(epoch, node)>` and re-examined *every* entry on
/// *every* pin; whenever the epoch stalled (one preempted thread suffices — the
/// single-CPU pathology behind the 8-thread retire blowup in
/// `BENCH_overhead.json`), the list grew while each pin rescanned all of it:
/// quadratic work, on top of one shared global-epoch load per retire. Nodes now
/// land in one of [`LIMBO_BUCKETS`] per-epoch segment chains, tagged with the
/// **pin-time** epoch the handle already holds, so `retire` touches no shared
/// state at all and freeing is a whole-chain `reclaim_all` at segment
/// granularity: each pin checks `LIMBO_BUCKETS` bucket tags, never individual
/// nodes.
pub struct EbrHandle {
    scheme: Arc<Ebr>,
    slot: SlotId,
    limbo: [EpochChain; LIMBO_BUCKETS],
    /// Recycled segments shared by all limbo buckets.
    pool: SegPool,
    /// The global epoch observed at the last pin. While pinned, `retire` tags
    /// nodes with this cached value instead of re-loading the (contended)
    /// global epoch: a pin at `pin_epoch` bounds the global at
    /// `pin_epoch + 1`, and the grace-period argument below covers the
    /// difference.
    pin_epoch: u64,
    /// Whether the owner is currently inside an operation. Handle-local mirror
    /// of the shared active flag: it decides, without a shared load, whether
    /// `retire` may trust `pin_epoch` (the [`SmrHandle::retire`] contract does
    /// not require being inside an operation, and an *unpinned* retire must
    /// not use a stale cached tag — that would free nodes before a real grace
    /// period).
    pinned: bool,
    retires_since_advance: usize,
    /// This handle's stripe in the scheme's [`BudgetGovernor`].
    budget_stripe: usize,
    /// Local-bytes figure last pushed into the governor (delta-report cursor).
    budget_reported: usize,
    /// Telemetry recording cursor (stripe + op-sampling counter).
    tele: HandleTelemetry,
}

impl EbrHandle {
    fn record(&self) -> &PinRecord {
        self.scheme.registry.get_mine(self.slot)
    }

    /// Number of retired-but-unreclaimed nodes held by this thread.
    pub fn limbo_size(&self) -> usize {
        self.limbo.iter().map(|chain| chain.bag.len()).sum()
    }

    /// Total stamped bytes across the per-epoch limbo chains.
    pub fn limbo_bytes(&self) -> usize {
        self.limbo.iter().map(|chain| chain.bag.bytes()).sum()
    }

    fn stats(&self) -> &StatStripe {
        self.scheme.registry.stats(self.slot)
    }

    /// Frees every limbo bucket whose tag is at least [`SAFE_EPOCH_GAP`] behind
    /// `global`, wholesale. Returns the number of nodes freed. O([`LIMBO_BUCKETS`])
    /// bucket checks regardless of limbo size — this runs on every pin.
    fn collect(&mut self, global: u64) -> usize {
        let mut freed = 0usize;
        let mut freed_bytes = 0usize;
        // Clone the Arc so the stats/observer borrows are independent of `self`
        // (the drain below needs `&mut self.limbo` and `&mut self.pool`).
        let scheme = Arc::clone(&self.scheme);
        let stats = scheme.registry.stats(self.slot);
        // This path runs on every pin and usually frees nothing; only pay the
        // observer's clock reads when some bucket has actually matured.
        let any_matured = self
            .limbo
            .iter()
            .any(|chain| !chain.bag.is_empty() && global >= chain.epoch + SAFE_EPOCH_GAP);
        let observer = if any_matured {
            scheme.telemetry.scan_observer(self.tele.stripe())
        } else {
            None
        };
        for chain in &mut self.limbo {
            if chain.bag.is_empty() {
                continue;
            }
            if global >= chain.epoch + SAFE_EPOCH_GAP {
                // A matured bucket is freed wholesale — no per-node tests.
                stats.add_scan_wholesale();
                freed_bytes += chain.bag.bytes();
                // SAFETY: every node in this bucket was unlinked while its owner
                // was pinned at `chain.epoch`, i.e. at a global epoch of at most
                // `chain.epoch + 1`. Any thread still holding a reference has
                // been pinned continuously since before that unlink, so its pin
                // epoch is at most `chain.epoch + 1` — and a continuous pin at
                // `p` blocks every advance beyond `p + 1`. The global having
                // reached `chain.epoch + 3 >= p + 2` therefore proves each such
                // thread has unpinned at least once since the unlink, dropping
                // all references obtained before it (see [`SAFE_EPOCH_GAP`] for
                // why 3 and not the retire-time-tag gap of 2). The nodes are
                // unreachable.
                freed += unsafe {
                    match observer.as_ref() {
                        Some(obs) => chain.bag.reclaim_if(&mut self.pool, |node| {
                            obs.note_free(node);
                            true
                        }),
                        None => chain.bag.reclaim_all(&mut self.pool),
                    }
                };
            } else {
                // Non-empty but too young: the collect passes it over unexamined.
                stats.add_scan_skip();
            }
        }
        if let Some(obs) = observer {
            obs.finish();
        }
        if freed > 0 {
            self.stats().add_freed(freed as u64);
            self.stats().add_freed_bytes(freed_bytes as u64);
            self.scheme.governor.report(
                self.budget_stripe,
                self.limbo_bytes(),
                &mut self.budget_reported,
            );
        }
        freed
    }

    /// Index of the limbo bucket for nodes tagged `epoch`, retagging (and
    /// draining) it if it still carries an older epoch's tag.
    fn bucket_for(&mut self, epoch: u64) -> usize {
        let b = (epoch % LIMBO_BUCKETS as u64) as usize;
        let chain = &mut self.limbo[b];
        if chain.epoch != epoch {
            if !chain.bag.is_empty() {
                // A colliding tag differs by >= LIMBO_BUCKETS epochs, and the
                // owner's epoch tags are monotone, so the old contents are at
                // least LIMBO_BUCKETS > SAFE_EPOCH_GAP advances old — and the
                // global epoch has reached at least `epoch` (the owner observed
                // it) — hence reclaimable wholesale (same argument as `collect`).
                debug_assert!(epoch >= chain.epoch + LIMBO_BUCKETS as u64);
                let freed_bytes = chain.bag.bytes();
                let stats = self.scheme.registry.stats(self.slot);
                stats.add_scan_wholesale();
                let observer = self.scheme.telemetry.scan_observer(self.tele.stripe());
                // SAFETY: the chain is LIMBO_BUCKETS epochs old — every registered thread has crossed at least two epoch boundaries since these nodes were retired, so none can still hold a reference.
                let freed = unsafe {
                    match observer.as_ref() {
                        Some(obs) => chain.bag.reclaim_if(&mut self.pool, |node| {
                            obs.note_free(node);
                            true
                        }),
                        None => chain.bag.reclaim_all(&mut self.pool),
                    }
                };
                if let Some(obs) = observer {
                    obs.finish();
                }
                stats.add_freed(freed as u64);
                stats.add_freed_bytes(freed_bytes as u64);
            }
            chain.epoch = epoch;
        }
        b
    }
}

impl SmrHandle for EbrHandle {
    fn begin_op(&mut self) {
        // Pin: observe the global epoch and announce it together with the active
        // flag. This store-per-operation is EBR's hot-path cost; the loaded epoch
        // is cached so `retire` never touches the shared counter.
        let global = self.scheme.global_epoch.load();
        self.record().pin(global);
        self.pin_epoch = global;
        self.pinned = true;
        // Pinning is also the natural point to free what previous epoch advances
        // made safe (equivalent to crossbeam's collect-on-pin) — a constant-time
        // bucket-tag check, not a walk of the limbo contents.
        self.collect(global);
    }

    fn end_op(&mut self) {
        self.record().unpin();
        self.pinned = false;
    }

    fn protect(&mut self, _index: usize, _ptr: *mut u8) {
        // EBR needs no per-node protection: being pinned protects every node
        // reachable during the operation.
    }

    fn clear_protections(&mut self) {}

    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.retire_sized(ptr, drop_fn, NO_BIRTH_ERA, 0) }
    }

    unsafe fn retire_sized(
        &mut self,
        ptr: *mut u8,
        drop_fn: DropFn,
        _birth_era: Era,
        size_bytes: usize,
    ) {
        self.stats().add_retired(1);
        self.stats().add_retired_bytes(size_bytes as u64);
        if size_bytes == 0 {
            self.stats().add_size_unknown_retire();
        }
        let now = self.scheme.config.clock.now();
        // While pinned (the normal case — retires happen inside operations),
        // tag with the cached pin-time epoch: the pin bounds the global at
        // `pin_epoch + 1`, which is exactly why [`SAFE_EPOCH_GAP`] is 3 rather
        // than the 2 a fresh retire-time tag would need. Re-loading the global
        // here (as a previous revision did) put one shared acquire load on
        // every retire, the dominant contention source at high thread counts.
        //
        // The `SmrHandle::retire` contract does NOT require being inside an
        // operation, and an unpinned handle's `pin_epoch` can be arbitrarily
        // stale — tagging with it would free nodes arbitrarily early. Unpinned
        // retires therefore pay the fresh global load: any reader still
        // holding a reference was pinned before the (earlier) unlink, so its
        // pin epoch is at most the loaded value and the same gap covers it.
        let epoch = if self.pinned {
            self.pin_epoch
        } else {
            self.scheme.global_epoch.load()
        };
        // SAFETY: forwarded from the caller's contract.
        let mut node =
            unsafe { RetiredPtr::with_birth_sized(ptr, drop_fn, now, NO_BIRTH_ERA, size_bytes) };
        node.set_retire_tick(self.tele.retire_tick());
        let b = self.bucket_for(epoch);
        self.limbo[b].bag.push(&mut self.pool, node);
        self.retires_since_advance += 1;
        if self.retires_since_advance >= self.scheme.config.scan_threshold {
            self.retires_since_advance = 0;
            self.scheme.try_advance();
        } else if self.scheme.governor.observe(
            self.budget_stripe,
            self.limbo_bytes(),
            &mut self.budget_reported,
        ) {
            // Budget breach: push the epoch forward and collect what aged out
            // (rung 1 — both are safe mid-operation). If a mid-op stall
            // elsewhere keeps the epoch capped and us over budget, take one
            // bounded backpressure yield (rung 3).
            self.scheme.governor.count_forced_scan();
            self.retires_since_advance = 0;
            self.scheme.try_advance();
            let global = self.scheme.global_epoch.load();
            self.collect(global);
            if self.scheme.governor.report(
                self.budget_stripe,
                self.limbo_bytes(),
                &mut self.budget_reported,
            ) {
                self.scheme.governor.count_backpressure();
                std::thread::yield_now();
            }
        }
    }

    fn flush(&mut self) {
        // Adopt limbo leftovers of exited threads into the current-epoch bucket:
        // they were unlinked before this adoption, so any reader still holding a
        // reference pinned at an epoch <= global + 1, and the bucket's
        // `SAFE_EPOCH_GAP` wait covers it. O(1) splices, no allocation.
        let global = self.scheme.global_epoch.load();
        let b = self.bucket_for(global);
        let before = self.limbo[b].bag.bytes();
        self.scheme.parked.adopt_into(&mut self.limbo[b].bag);
        let adopted = self.limbo[b].bag.bytes() - before;
        self.scheme.governor.note_parked(-(adopted as i64));
        // Make a best-effort attempt to push the epoch far enough forward that every
        // limbo node becomes reclaimable, then free whatever the advances allowed.
        // The thread must not be pinned while doing this (flush is called between
        // operations), so unpin defensively.
        self.record().unpin();
        self.pinned = false;
        for _ in 0..2 * SAFE_EPOCH_GAP {
            self.scheme.try_advance();
        }
        let global = self.scheme.global_epoch.load();
        self.collect(global);
        self.scheme.governor.report(
            self.budget_stripe,
            self.limbo_bytes(),
            &mut self.budget_reported,
        );
    }

    fn local_in_limbo(&self) -> usize {
        self.limbo_size()
    }

    fn local_limbo_bytes(&self) -> usize {
        self.limbo_bytes()
    }

    fn telemetry_op_begin(&mut self) -> Option<Instant> {
        self.tele.op_begin()
    }

    fn telemetry_op_end(&mut self, started: Instant) {
        self.tele.op_end(started);
    }
}

impl Drop for EbrHandle {
    fn drop(&mut self) {
        self.flush();
        // Whatever is still too young is parked on the scheme with O(1) splices
        // and adopted by the next flushing handle (or released when the scheme
        // itself drops; no thread can touch the nodes by then).
        let mut leftovers = SegBag::new();
        for chain in &mut self.limbo {
            leftovers.splice(&mut chain.bag);
        }
        // The governor's parked counter takes over the byte accounting so a
        // leaked handle's limbo never goes invisible.
        let parked_bytes = leftovers.bytes();
        self.scheme
            .governor
            .note_handle_exit(self.budget_stripe, &mut self.budget_reported);
        self.scheme.governor.note_parked(parked_bytes as i64);
        self.scheme.parked.park(&mut leftovers);
        self.scheme.registry.release(self.slot);
        // Recycle the segment pool to the next registrant.
        self.scheme
            .handle_cache
            .park(std::mem::take(&mut self.pool));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::retire_box;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>) -> *mut Tracked {
        Box::into_raw(Box::new(Tracked(Arc::clone(drops))))
    }

    #[test]
    fn epoch_advances_even_with_an_idle_registered_thread() {
        let scheme = Ebr::new(SmrConfig::default().with_max_threads(2));
        let mut a = scheme.register();
        let _b = scheme.register(); // registered but idle: must not block
        let start = scheme.current_epoch();
        for _ in 0..4 {
            a.begin_op();
            a.end_op();
            scheme.try_advance();
        }
        assert!(scheme.current_epoch() > start);
    }

    #[test]
    fn a_thread_pinned_at_an_old_epoch_blocks_advancement() {
        let scheme = Ebr::new(SmrConfig::default().with_max_threads(2));
        let mut stuck = scheme.register();
        let mut active = scheme.register();
        stuck.begin_op(); // pins at the current epoch and never unpins
        let pinned_epoch = scheme.current_epoch();
        // The active thread can advance at most once (past the epoch the stuck
        // thread has already observed), then stalls.
        for _ in 0..10 {
            active.begin_op();
            active.end_op();
            scheme.try_advance();
        }
        assert!(scheme.current_epoch() <= pinned_epoch + 1);
        stuck.end_op();
        for _ in 0..4 {
            active.begin_op();
            active.end_op();
            scheme.try_advance();
        }
        assert!(scheme.current_epoch() > pinned_epoch + 1);
    }

    #[test]
    fn single_thread_reclaims_everything_on_flush() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(SmrConfig::default().with_scan_threshold(4));
        let mut handle = scheme.register();
        for _ in 0..100 {
            handle.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
            handle.end_op();
        }
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 100);
        let snap = scheme.stats();
        assert_eq!(snap.retired, 100);
        assert_eq!(snap.freed, 100);
    }

    #[test]
    fn an_idle_registered_thread_does_not_block_reclamation() {
        // The behavioural difference from QSBR: a registered thread that never
        // operates (and therefore never quiesces in QSBR terms) does not stop EBR
        // from reclaiming.
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_scan_threshold(1),
        );
        let _idle = scheme.register();
        let mut worker = scheme.register();
        for _ in 0..100 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        worker.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            100,
            "an idle thread must not block EBR"
        );
    }

    #[test]
    fn a_thread_stalled_mid_operation_blocks_reclamation() {
        // ... but a thread delayed *inside* an operation does block it — EBR is not
        // robust in the paper's sense, which is why QSense still needs Cadence.
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_scan_threshold(1),
        );
        let mut stalled = scheme.register();
        stalled.begin_op(); // never ends its operation
        let mut worker = scheme.register();
        for _ in 0..100 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        worker.flush();
        // The epoch can advance at most once past the stalled pin, so nothing the
        // worker retired can have aged by the required two epochs.
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "a mid-operation stall must block reclamation"
        );
        assert_eq!(worker.local_in_limbo(), 100);
        stalled.end_op();
        worker.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn nodes_are_never_freed_before_three_epoch_advances_past_their_pin_tag() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(SmrConfig::default().with_scan_threshold(1_000_000));
        let mut handle = scheme.register();
        handle.begin_op();
        let tag = scheme.current_epoch();
        for _ in 0..10 {
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
        }
        // Still pinned, no advance attempted: nothing may have been freed.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(handle.local_in_limbo(), 10);
        handle.end_op();
        // Nodes are tagged with the *pin-time* epoch, which can lag the global
        // at unlink time by one — so even two advances are not enough: a reader
        // pinned at `tag + 1` since before the unlink never blocks them (the
        // use-after-free a SAFE_EPOCH_GAP of 2 would reintroduce).
        for expected_gap in 1..SAFE_EPOCH_GAP {
            assert!(scheme.try_advance());
            handle.begin_op();
            handle.end_op();
            assert_eq!(
                drops.load(Ordering::SeqCst),
                0,
                "freed after only {expected_gap} advance(s) past the pin tag"
            );
        }
        // The third advance completes the grace period.
        assert!(scheme.try_advance());
        assert_eq!(scheme.current_epoch(), tag + SAFE_EPOCH_GAP);
        handle.begin_op();
        handle.end_op();
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    /// The `SmrHandle::retire` contract allows retiring outside an operation;
    /// an unpinned handle must not tag such nodes with its stale cached pin
    /// epoch (which would free them while a current reader is still pinned).
    #[test]
    fn out_of_op_retires_use_a_fresh_epoch_tag() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_scan_threshold(1_000_000),
        );
        let mut idle = scheme.register();
        // Cache a pin epoch, then go idle while the epoch moves far past it.
        idle.begin_op();
        idle.end_op();
        let stale_tag = scheme.current_epoch();
        let mut reader = scheme.register();
        for _ in 0..SAFE_EPOCH_GAP + 1 {
            reader.begin_op();
            reader.end_op();
            assert!(scheme.try_advance());
        }
        assert!(scheme.current_epoch() > stale_tag + SAFE_EPOCH_GAP);
        // The reader pins at the current epoch and keeps holding references.
        reader.begin_op();
        // Out-of-op retire on the idle handle (legal per the trait contract).
        // Tagging with the stale cached epoch would make the node immediately
        // "old enough" and free it under the still-pinned reader.
        // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
        unsafe { retire_box(&mut idle, tracked(&drops)) };
        idle.begin_op();
        idle.end_op();
        idle.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "out-of-op retire must not be freed while a current reader is pinned"
        );
        assert_eq!(idle.local_in_limbo(), 1);
        reader.end_op();
        idle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_workers_reclaim_everything_by_scheme_drop() {
        use std::thread;
        let drops = Arc::new(AtomicUsize::new(0));
        let total = Arc::new(AtomicUsize::new(0));
        let scheme = Ebr::new(
            SmrConfig::default()
                .with_max_threads(4)
                .with_scan_threshold(16),
        );
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let scheme = Arc::clone(&scheme);
                let drops = Arc::clone(&drops);
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    let mut handle = scheme.register();
                    for _ in 0..500 {
                        handle.begin_op();
                        // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
                        unsafe { retire_box(&mut handle, tracked(&drops)) };
                        total.fetch_add(1, Ordering::SeqCst);
                        handle.end_op();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), total.load(Ordering::SeqCst));
    }

    #[test]
    fn scheme_reports_name_and_config() {
        let scheme = Ebr::with_defaults();
        assert_eq!(scheme.name(), "ebr");
        assert!(scheme.config().max_threads >= 1);
    }
}
