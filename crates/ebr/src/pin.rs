//! Per-thread pin records.
//!
//! Epoch-based reclamation differs from QSBR in *when* a thread is considered safe
//! to ignore: QSBR waits for every registered thread to pass through an explicit
//! quiescent state, whereas EBR tracks whether a thread is currently *inside* an
//! operation (pinned). A thread that is registered but idle (not pinned) never blocks
//! the epoch from advancing. The cost is one extra shared store per operation (the
//! pin) that QSBR's batched quiescence avoids — exactly the trade-off the paper's
//! related-work section ([13, 14]) attributes to epoch-based techniques.

use reclaim_core::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Per-thread shared record scanned by threads attempting to advance the global
/// epoch: whether the owner is currently pinned and, if so, which epoch it observed
/// when it pinned.
#[derive(Debug, Default)]
pub struct PinRecord {
    /// True while the owning thread is inside a data-structure operation.
    active: CachePadded<AtomicBool>,
    /// The global epoch the owner observed when it last pinned.
    epoch: CachePadded<AtomicU64>,
}

impl PinRecord {
    /// Creates an unpinned record at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the owner as pinned at `epoch`.
    ///
    /// The epoch is published before the active flag so that a scanner that sees
    /// `active == true` is guaranteed to also see an epoch at least as recent as the
    /// one the owner adopted; both stores are `SeqCst` so they are totally ordered
    /// with the global-epoch loads performed by advancing threads.
    #[inline]
    pub fn pin(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::SeqCst);
        self.active.store(true, Ordering::SeqCst);
    }

    /// Marks the owner as no longer pinned.
    #[inline]
    pub fn unpin(&self) {
        self.active.store(false, Ordering::SeqCst);
    }

    /// True if the owner is currently pinned.
    #[inline]
    pub fn is_pinned(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }

    /// The epoch the owner observed at its last pin.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// True if this record does not prevent the global epoch from advancing past
    /// `global`: either the owner is not pinned at all, or it has already observed
    /// `global`.
    #[inline]
    pub fn permits_advance_from(&self, global: u64) -> bool {
        !self.is_pinned() || self.epoch() == global
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unpinned_at_epoch_zero() {
        let r = PinRecord::new();
        assert!(!r.is_pinned());
        assert_eq!(r.epoch(), 0);
        assert!(r.permits_advance_from(0));
        assert!(
            r.permits_advance_from(17),
            "an unpinned thread never blocks"
        );
    }

    #[test]
    fn pin_publishes_epoch_and_activity() {
        let r = PinRecord::new();
        r.pin(4);
        assert!(r.is_pinned());
        assert_eq!(r.epoch(), 4);
        assert!(r.permits_advance_from(4));
        assert!(
            !r.permits_advance_from(5),
            "a pinned thread at an older epoch blocks"
        );
        r.unpin();
        assert!(!r.is_pinned());
        assert!(r.permits_advance_from(5));
    }

    #[test]
    fn repinning_adopts_the_new_epoch() {
        let r = PinRecord::new();
        r.pin(1);
        r.unpin();
        r.pin(3);
        assert_eq!(r.epoch(), 3);
        assert!(r.permits_advance_from(3));
    }
}
