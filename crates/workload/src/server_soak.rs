//! Server soak: thousands of short sessions leasing few registered handles.
//!
//! The sharded-registry + [`LeasePool`](reclaim_core::LeasePool) combination
//! exists for exactly one deployment shape: a server that spawns a short-lived
//! task per request against a shared structure. Registering a handle per task
//! would exhaust `max_threads` and bloat every scan; this scenario instead
//! runs `M` worker threads draining a queue of `sessions` short sessions,
//! each session checking one of `N` pooled handles out, performing a burst of
//! skip-list operations through it, and checking it back in.
//!
//! What the run proves, and reports:
//!
//! * **throughput** — total operations and sessions per second across the
//!   whole soak (checkout/checkin overhead rides on every session, so a slow
//!   pool would show up directly);
//! * **session latency** — each session's wall time recorded into a
//!   [`LogHistogram`] (the telemetry layer's allocation-free log2 histogram),
//!   reported as p50/p99/p99.9; the tail captures lease contention under
//!   `M > N`;
//! * **reclamation health** — peak in-limbo bytes, retired/freed conservation
//!   and the registry's shard skip/walk counters; with `N ≤ 8` leased slots
//!   every scan should be dispatching on one or two shards no matter how
//!   large `max_threads` is.
//!
//! The scenario is deterministic per seed (splitmix64 per session) and runs on
//! every scheme in the matrix — the `server_soak` bench records the four
//! facade schemes (hp, cadence, qsense, he) into `BENCH_server_soak.json`.

use crate::spec::Structure;
use crate::structures::config_for;
use crate::SchemeKind;
use lockfree_ds::LockFreeSkipList;
use reclaim_core::stats::StatsSnapshot;
use reclaim_core::telemetry::{HistSnapshot, LogHistogram, HIST_STRIPES};
use reclaim_core::{LeasePolicy, LeasePool, Smr, SmrConfig};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of one soak run. `Default` gives the acceptance-criteria shape:
/// 1024 sessions over 8 leased slots, 16 worker threads.
#[derive(Clone, Debug)]
pub struct ServerSoakSpec {
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Total short sessions to run (the request count).
    pub sessions: usize,
    /// Concurrent worker threads draining the session queue (`M`).
    pub workers: usize,
    /// Leased handles in the pool (`N`); the only registered slots the soak
    /// claims beyond the prefill handle.
    pub slots: usize,
    /// Skip-list operations per session (mixed insert/remove/contains burst).
    pub ops_per_session: usize,
    /// Key range of the shared skip list (pre-filled to half).
    pub key_range: u64,
    /// Seed for the per-session splitmix64 streams.
    pub seed: u64,
    /// Registry capacity to configure (`SmrConfig::max_threads`). Deliberately
    /// independent of `slots`: a 256-capacity registry serving 8 leased slots
    /// is precisely the shape the sharded scan dispatch is for.
    pub max_threads: usize,
}

impl ServerSoakSpec {
    /// The default soak for `scheme`: ≥1000 sessions over 8 slots.
    pub fn new(scheme: SchemeKind) -> Self {
        Self {
            scheme,
            sessions: 1024,
            workers: 16,
            slots: 8,
            ops_per_session: 64,
            key_range: 512,
            seed: 0xBA1_5EED,
            max_threads: 64,
        }
    }

    /// A fast variant for CI smokes and unit tests.
    pub fn smoke(scheme: SchemeKind) -> Self {
        Self {
            sessions: 200,
            workers: 8,
            ops_per_session: 32,
            key_range: 128,
            ..Self::new(scheme)
        }
    }
}

/// What one soak run measured.
#[derive(Clone, Debug)]
pub struct ServerSoakResult {
    /// Scheme name (matches the figures' legend).
    pub scheme: &'static str,
    /// Sessions actually completed (always the spec's count).
    pub sessions: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Leased handles in the pool.
    pub slots: usize,
    /// Total skip-list operations performed.
    pub total_ops: u64,
    /// Wall time of the whole soak (prefill excluded).
    pub elapsed: Duration,
    /// Session wall-time histogram, in nanoseconds.
    pub session_ns: HistSnapshot,
    /// Checkouts that found the pool empty and had to block for a checkin.
    pub lease_waits: u64,
    /// Scheme counters at the end of the run (retired/freed, peak limbo
    /// bytes, registry shard skip/walk counters).
    pub stats: StatsSnapshot,
}

impl ServerSoakResult {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1.0e6
    }

    /// Sessions served per second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.sessions as f64 / self.elapsed.as_secs_f64()
    }

    /// Session wall-time percentile in microseconds (log2-bucket upper
    /// bound); `p` is a fraction in `(0.0, 1.0]`, e.g. `0.999` for p99.9.
    pub fn session_percentile_us(&self, p: f64) -> f64 {
        self.session_ns.percentile(p) as f64 / 1.0e3
    }
}

/// splitmix64: one multiply-shift-xor chain per draw, deterministic per seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn soak<S: Smr>(scheme: Arc<S>, spec: &ServerSoakSpec) -> ServerSoakResult {
    let list = Arc::new(LockFreeSkipList::<u64, S>::new(Arc::clone(&scheme)));
    // Pre-fill to half the range with a transient handle, then release its
    // slot so the steady state holds exactly the `slots` leased registrations.
    {
        let mut handle = scheme.register();
        for key in (0..spec.key_range).step_by(2) {
            list.insert(key, &mut handle);
        }
    }
    let pool = LeasePool::for_scheme(&scheme, spec.slots, LeasePolicy::Wait)
        .expect("soak slots must fit the registry");
    let tickets = AtomicUsize::new(0);
    let lease_waits = AtomicU64::new(0);
    let session_ns = LogHistogram::new();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..spec.workers {
            let list = Arc::clone(&list);
            let pool = &pool;
            let tickets = &tickets;
            let lease_waits = &lease_waits;
            let session_ns = &session_ns;
            scope.spawn(move || {
                let stripe = worker % HIST_STRIPES;
                loop {
                    let ticket = tickets.fetch_add(1, Ordering::Relaxed);
                    if ticket >= spec.sessions {
                        break;
                    }
                    let session_start = Instant::now();
                    // Count contended checkouts (pool momentarily empty), then
                    // block under the Wait policy like a real request would.
                    let mut lease = match pool.try_checkout() {
                        Some(lease) => lease,
                        None => {
                            lease_waits.fetch_add(1, Ordering::Relaxed);
                            pool.checkout().expect("wait policy never errors")
                        }
                    };
                    let mut rng = spec.seed ^ (ticket as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
                    for _ in 0..spec.ops_per_session {
                        let draw = splitmix64(&mut rng);
                        let key = draw % spec.key_range;
                        match (draw >> 32) % 4 {
                            0 => {
                                list.insert(key, &mut *lease);
                            }
                            1 => {
                                list.remove(&key, &mut *lease);
                            }
                            _ => {
                                list.contains(&key, &mut *lease);
                            }
                        }
                    }
                    drop(lease); // checkin: the next session may adopt it
                    session_ns.record(stripe, session_start.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    let elapsed = started.elapsed();

    ServerSoakResult {
        scheme: scheme.name(),
        sessions: spec.sessions,
        workers: spec.workers,
        slots: spec.slots,
        total_ops: (spec.sessions * spec.ops_per_session) as u64,
        elapsed,
        session_ns: session_ns.snapshot(),
        lease_waits: lease_waits.load(Ordering::Relaxed),
        stats: Smr::stats(&*scheme),
    }
}

/// Runs the soak for `spec.scheme`, building the scheme from the shared bench
/// configuration (skip-list hazard budget, `spec.max_threads` registry slots).
pub fn run_server_soak(spec: &ServerSoakSpec) -> ServerSoakResult {
    run_server_soak_with(spec, crate::default_bench_config(spec.max_threads))
}

/// Like [`run_server_soak`], but with an explicit base reclamation
/// configuration. The soak always runs against a skip list, so the hazard
/// budget is forced to the skip list's (as is `max_threads`, to the spec's
/// registry capacity) — everything else is the caller's.
pub fn run_server_soak_with(spec: &ServerSoakSpec, config: SmrConfig) -> ServerSoakResult {
    assert!(spec.slots > 0 && spec.workers > 0 && spec.ops_per_session > 0);
    assert!(spec.key_range > 0, "key range must be non-empty");
    assert!(
        spec.slots < spec.max_threads,
        "the pool plus the prefill handle must fit the registry"
    );
    let config = config_for(Structure::SkipList, config).with_max_threads(spec.max_threads);
    match spec.scheme {
        SchemeKind::None => soak(reclaim_core::Leaky::new(config), spec),
        SchemeKind::Qsbr => soak(qsbr::Qsbr::new(config), spec),
        SchemeKind::Hp => soak(hazard::Hazard::new(config), spec),
        SchemeKind::Cadence => soak(cadence::Cadence::new(config), spec),
        SchemeKind::QSense => soak(qsense::QSense::new(config), spec),
        SchemeKind::Ebr => soak(ebr::Ebr::new(config), spec),
        SchemeKind::He => soak(he::He::new(config), spec),
        SchemeKind::RefCount => soak(refcount::RefCount::new(config), spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soak_completes_every_session_on_the_facade_schemes() {
        for kind in [
            SchemeKind::Hp,
            SchemeKind::Cadence,
            SchemeKind::QSense,
            SchemeKind::He,
        ] {
            let spec = ServerSoakSpec {
                sessions: 64,
                workers: 4,
                slots: 2,
                ops_per_session: 16,
                key_range: 64,
                ..ServerSoakSpec::smoke(kind)
            };
            let result = run_server_soak(&spec);
            assert_eq!(result.scheme, kind.name(), "{kind:?}");
            assert_eq!(result.sessions, 64);
            assert_eq!(result.total_ops, 64 * 16);
            assert_eq!(
                result.session_ns.count(),
                64,
                "{kind:?}: every session records one latency sample"
            );
            assert!(
                result.stats.retired >= result.stats.freed,
                "{kind:?}: conservation"
            );
        }
    }

    #[test]
    fn soak_scans_dispatch_on_shards_not_capacity() {
        // 256-slot registry, 8 leased slots: scans must be skipping almost
        // every shard (the acceptance shape of the sharded registry).
        let spec = ServerSoakSpec {
            sessions: 128,
            workers: 8,
            slots: 8,
            ops_per_session: 32,
            key_range: 128,
            max_threads: 256,
            ..ServerSoakSpec::smoke(SchemeKind::Hp)
        };
        let result = run_server_soak(&spec);
        assert!(
            result.stats.shard_skips > 0,
            "a 256-capacity registry with <=9 claimed slots must skip shards: {:?}",
            result.stats
        );
        // Round-robin homes spread the 8 leased handles (plus the transient
        // prefill handle) across up to 9 distinct shards, so each scan walks
        // at most 9 of the 32 shards and skips the other 23+.
        assert!(
            result.stats.shard_skips >= 2 * result.stats.shard_walks,
            "at most 9 of 32 shards are ever occupied, so skips dominate walks \
             (skips = {}, walks = {})",
            result.stats.shard_skips,
            result.stats.shard_walks
        );
    }

    #[test]
    fn soak_is_deterministic_in_shape_not_schedule() {
        let spec = ServerSoakSpec {
            sessions: 32,
            workers: 2,
            slots: 1,
            ops_per_session: 8,
            key_range: 32,
            ..ServerSoakSpec::smoke(SchemeKind::Qsbr)
        };
        let a = run_server_soak(&spec);
        let b = run_server_soak(&spec);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.slots, 1);
    }
}
