//! Workload specifications matching the paper's methodology (§7.2).
//!
//! Every experiment in the paper is described by three numbers: the key range, the
//! operation mix (percentage of searches / inserts / deletes) and the number of
//! threads; the data structure is pre-filled to half the key range before
//! measurement. [`WorkloadSpec`] captures the first two (plus the fill factor) and
//! provides the exact presets the paper uses.

/// Operation mix in percent. Inserts and deletes are kept equal, as in the paper, so
/// that the structure size stays around its initial fill during the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpMix {
    /// Percentage of `contains` operations.
    pub read_pct: u8,
    /// Percentage of `insert` operations.
    pub insert_pct: u8,
    /// Percentage of `remove` operations.
    pub delete_pct: u8,
}

impl OpMix {
    /// Creates a mix, checking that the percentages sum to 100.
    pub fn new(read_pct: u8, insert_pct: u8, delete_pct: u8) -> Self {
        assert_eq!(
            read_pct as u16 + insert_pct as u16 + delete_pct as u16,
            100,
            "operation mix must sum to 100%"
        );
        Self {
            read_pct,
            insert_pct,
            delete_pct,
        }
    }

    /// The paper's "10% updates" mix (Figure 3): 90% searches, 5% inserts, 5% deletes.
    pub fn updates_10() -> Self {
        Self::new(90, 5, 5)
    }

    /// The paper's "50% updates" mix (Figure 5): 50% searches, 25% inserts, 25% deletes.
    pub fn updates_50() -> Self {
        Self::new(50, 25, 25)
    }

    /// 100% churn: no reads, half inserts, half deletes. The natural workload for
    /// the FIFO/LIFO structures (every queue/stack operation mutates), also usable
    /// as a worst-case reclamation stressor on the sets.
    pub fn churn() -> Self {
        Self::new(0, 50, 50)
    }

    /// Percentage of operations that modify the structure.
    pub fn update_pct(&self) -> u8 {
        self.insert_pct + self.delete_pct
    }
}

/// Which data structure an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Structure {
    /// Harris–Michael linked list (paper key range 2 000).
    List,
    /// Lock-free skip list (paper key range 20 000).
    SkipList,
    /// External lock-free BST (paper key range 2 000 000).
    Bst,
    /// Lock-free hash map (Michael's bucket-array table). Not part of the paper's
    /// evaluation matrix; used by the extension benchmarks that demonstrate
    /// applicability beyond the three evaluated structures.
    HashMap,
    /// Michael–Scott queue (FIFO). Extension structure; runs 100%-churn
    /// workloads — every operation mutates, so the read percentage of a mix is
    /// served by an `is_empty` probe.
    Queue,
    /// Treiber stack (LIFO). Extension structure; same 100%-churn character as
    /// the queue.
    Stack,
}

impl Structure {
    /// Human-readable name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            Structure::List => "linked-list",
            Structure::SkipList => "skip-list",
            Structure::Bst => "bst",
            Structure::HashMap => "hash-map",
            Structure::Queue => "queue",
            Structure::Stack => "stack",
        }
    }

    /// The key range the paper uses for this structure. The hash map does not appear
    /// in the paper; its "paper" range is the extension default.
    pub fn paper_key_range(&self) -> u64 {
        match self {
            Structure::List => 2_000,
            Structure::SkipList => 20_000,
            Structure::Bst => 2_000_000,
            Structure::HashMap => 1_000_000,
            // The FIFO/LIFO structures are not keyed; the "range" only sizes the
            // value stream and the pre-fill.
            Structure::Queue => 10_000,
            Structure::Stack => 10_000,
        }
    }

    /// The key range this reproduction uses by default (the BST is scaled down so
    /// that initialization fits the container; see DESIGN.md §3).
    pub fn default_key_range(&self) -> u64 {
        match self {
            Structure::List => 2_000,
            Structure::SkipList => 20_000,
            Structure::Bst => 200_000,
            Structure::HashMap => 100_000,
            Structure::Queue => 10_000,
            Structure::Stack => 10_000,
        }
    }

    /// The three structures of the paper's evaluation matrix (§7.1), in the order the
    /// figures present them.
    pub fn paper_structures() -> [Structure; 3] {
        [Structure::List, Structure::SkipList, Structure::Bst]
    }
}

/// A complete workload description.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// Fraction of the key range inserted before measurement starts (paper: 0.5).
    pub initial_fill: f64,
}

impl WorkloadSpec {
    /// Creates a workload specification.
    pub fn new(key_range: u64, mix: OpMix) -> Self {
        assert!(key_range > 0, "key range must be positive");
        Self {
            key_range,
            mix,
            initial_fill: 0.5,
        }
    }

    /// Overrides the initial fill fraction.
    pub fn with_initial_fill(mut self, fill: f64) -> Self {
        assert!((0.0..=1.0).contains(&fill), "fill must be within [0, 1]");
        self.initial_fill = fill;
        self
    }

    /// Number of keys inserted before measurement.
    pub fn initial_keys(&self) -> u64 {
        (self.key_range as f64 * self.initial_fill) as u64
    }

    /// The paper's Figure 3 workload: linked list, 2 000 keys, 10% updates.
    pub fn fig3_list() -> Self {
        Self::new(Structure::List.default_key_range(), OpMix::updates_10())
    }

    /// The paper's Figure 5 scalability workload for the given structure
    /// (50% updates, structure-specific key range).
    pub fn fig5_scaling(structure: Structure) -> Self {
        Self::new(structure.default_key_range(), OpMix::updates_50())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper() {
        assert_eq!(OpMix::updates_10(), OpMix::new(90, 5, 5));
        assert_eq!(OpMix::updates_50(), OpMix::new(50, 25, 25));
        assert_eq!(OpMix::updates_10().update_pct(), 10);
        assert_eq!(OpMix::updates_50().update_pct(), 50);
        assert_eq!(Structure::List.paper_key_range(), 2_000);
        assert_eq!(Structure::SkipList.paper_key_range(), 20_000);
        assert_eq!(Structure::Bst.paper_key_range(), 2_000_000);
        let spec = WorkloadSpec::fig3_list();
        assert_eq!(spec.key_range, 2_000);
        assert_eq!(spec.initial_keys(), 1_000);
    }

    #[test]
    fn structure_names_are_stable() {
        assert_eq!(Structure::List.name(), "linked-list");
        assert_eq!(Structure::SkipList.name(), "skip-list");
        assert_eq!(Structure::Bst.name(), "bst");
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_is_rejected() {
        let _ = OpMix::new(50, 30, 30);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn empty_key_range_is_rejected() {
        let _ = WorkloadSpec::new(0, OpMix::updates_10());
    }
}
