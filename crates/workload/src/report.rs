//! Plain-text reporting helpers used by the benchmark binaries.
//!
//! Every figure/table of the paper is regenerated as a text table: one row per
//! (scheme, x-value) pair for the scalability plots, one row per time sample for the
//! delay timelines, plus aggregate overhead summaries. Keeping the output textual
//! makes `cargo bench` logs directly comparable with the numbers quoted in the paper
//! and in EXPERIMENTS.md.

use crate::runner::RunResult;

/// Prints a header line for an experiment section.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Formats a throughput table row: scheme, threads, Mops/s, overhead vs baseline.
pub fn throughput_row(result: &RunResult, baseline_mops: Option<f64>) -> String {
    let overhead = match baseline_mops {
        Some(base) if base > 0.0 => {
            format!("{:>8.1}%", (1.0 - result.mops() / base) * 100.0)
        }
        _ => "       -".to_string(),
    };
    format!(
        "{:<12} {:>3} threads  {:>9.3} Mops/s  overhead vs none: {}  in-limbo: {:>8}",
        result.scheme,
        result.threads,
        result.mops(),
        overhead,
        result.stats.in_limbo(),
    )
}

/// Prints a complete scalability series (one scheme, many thread counts).
pub fn print_series(title: &str, results: &[RunResult], baseline: Option<&[RunResult]>) {
    section(title);
    for (i, result) in results.iter().enumerate() {
        let base = baseline.and_then(|b| b.get(i)).map(RunResult::mops);
        println!("{}", throughput_row(result, base));
    }
}

/// Prints the time-series samples of a delay-injection run in a gnuplot-friendly
/// format: `elapsed_seconds throughput_mops in_limbo`.
pub fn print_timeline(result: &RunResult) {
    println!(
        "# timeline scheme={} structure={} threads={}{}",
        result.scheme,
        result.structure,
        result.threads,
        match result.aborted_at {
            Some(at) => format!(
                " ABORTED_AT={:.1}s (unreclaimed-memory cap reached)",
                at.as_secs_f64()
            ),
            None => String::new(),
        }
    );
    for sample in &result.samples {
        println!(
            "{:>7.2} {:>10.4} {:>10}",
            sample.at.as_secs_f64(),
            sample.ops_per_sec / 1.0e6,
            sample.in_limbo
        );
    }
}

/// Formats the telemetry percentile lines for one run: one row per histogram
/// (guard-bracket op latency, scan duration, retire→free delay) with the
/// p50/p90/p99/p99.9 quadruple. Empty when the run carried no telemetry or a
/// histogram recorded nothing (e.g. the delay histogram of a leaky run).
pub fn telemetry_rows(result: &RunResult) -> Vec<String> {
    let Some(summary) = &result.telemetry else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for (label, unit, hist) in [
        ("op-latency", "ns", &summary.op_latency_ns),
        ("scan-duration", "ns", &summary.scan_ns),
        ("retire->free", "us", &summary.reclaim_delay_us),
    ] {
        if hist.is_empty() {
            continue;
        }
        let (p50, p90, p99, p999) = hist.quantiles();
        rows.push(format!(
            "{:<12} {:<14} p50 {p50:>10} {unit}  p90 {p90:>10} {unit}  p99 {p99:>10} {unit}  p99.9 {p999:>10} {unit}  (n={})",
            result.scheme,
            label,
            hist.count(),
        ));
    }
    rows
}

/// Formats the scan-dispatch class counters (how often a reclamation pass
/// freed a whole batch wholesale, skipped it unexamined, or walked it
/// node-by-node) — the per-scheme generalization of HE's fast/slow-path
/// diagnostics — plus the registry's shard-dispatch counters (vacant shards
/// skipped in one bitmap probe vs. shards actually walked slot-by-slot).
pub fn dispatch_row(result: &RunResult) -> String {
    format!(
        "{:<12} scan-dispatch  wholesale: {:>8}  skips: {:>8}  walks: {:>8}  shard-skips: {:>8}  shard-walks: {:>8}",
        result.scheme,
        result.stats.scan_wholesale,
        result.stats.scan_skips,
        result.stats.scan_walks,
        result.stats.shard_skips,
        result.stats.shard_walks,
    )
}

/// Formats the limbo-budget verdict line, or `None` when the run carried no
/// verdict. Printed by the CLI whenever a `--limbo-budget` is set.
pub fn budget_row(result: &RunResult) -> Option<String> {
    let verdict = result.budget_verdict.as_ref()?;
    Some(format!(
        "{:<12} budget {:>10} B  peak: {:>10} B  over-budget: {:>8.3}s  forced-scans: {}  pacer-boosts: {}  fallback-trips: {}  backpressure: {}",
        result.scheme,
        verdict.budget_bytes,
        verdict.peak_bytes,
        verdict.time_over_budget.as_secs_f64(),
        verdict.forced_scans,
        verdict.pacer_boosts,
        verdict.fallback_trips,
        verdict.backpressure_events,
    ))
}

/// Geometric-mean overhead (in percent) of `results` relative to the paired
/// `baseline` runs, mirroring the "X% overhead on average over the leaky
/// implementation" statements in §7.3 of the paper.
pub fn average_overhead_pct(results: &[RunResult], baseline: &[RunResult]) -> f64 {
    assert_eq!(results.len(), baseline.len(), "paired series required");
    if results.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    let mut counted = 0usize;
    for (run, base) in results.iter().zip(baseline) {
        if run.mops() > 0.0 && base.mops() > 0.0 {
            log_sum += (run.mops() / base.mops()).ln();
            counted += 1;
        }
    }
    if counted == 0 {
        return 0.0;
    }
    let ratio = (log_sum / counted as f64).exp();
    (1.0 - ratio) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::stats::StatsSnapshot;
    use std::time::Duration;

    fn result(scheme: &str, mops: f64) -> RunResult {
        RunResult {
            scheme: scheme.to_string(),
            structure: "linked-list".to_string(),
            threads: 4,
            total_ops: (mops * 1.0e6) as u64,
            elapsed: Duration::from_secs(1),
            samples: Vec::new(),
            stats: StatsSnapshot::default(),
            budget_verdict: None,
            telemetry: None,
            aborted_at: None,
        }
    }

    #[test]
    fn mops_and_rows_format() {
        let run = result("qsense", 2.5);
        assert!((run.mops() - 2.5).abs() < 1e-9);
        let row = throughput_row(&run, Some(5.0));
        assert!(row.contains("qsense"));
        assert!(row.contains("50.0%"), "row = {row}");
        let row_no_base = throughput_row(&run, None);
        assert!(row_no_base.contains('-'));
    }

    #[test]
    fn average_overhead_is_zero_against_itself() {
        let a = vec![result("qsbr", 3.0), result("qsbr", 4.0)];
        let overhead = average_overhead_pct(&a, &a);
        assert!(overhead.abs() < 1e-9);
    }

    #[test]
    fn telemetry_rows_print_percentiles_and_skip_empty_histograms() {
        let mut run = result("qsense", 1.0);
        assert!(telemetry_rows(&run).is_empty(), "no telemetry, no rows");
        run.telemetry = Some(reclaim_core::TelemetrySummary {
            op_latency_ns: {
                let hist = reclaim_core::LogHistogram::new();
                hist.record(0, 100);
                hist.record(0, 3_000);
                hist.snapshot()
            },
            ..Default::default()
        });
        let rows = telemetry_rows(&run);
        assert_eq!(rows.len(), 1, "empty histograms are skipped: {rows:?}");
        assert!(rows[0].contains("op-latency"), "row = {}", rows[0]);
        assert!(rows[0].contains("p99.9"), "row = {}", rows[0]);
        assert!(rows[0].contains("(n=2)"), "row = {}", rows[0]);
    }

    #[test]
    fn dispatch_and_budget_rows_format() {
        let mut run = result("he", 1.0);
        run.stats.scan_wholesale = 7;
        run.stats.scan_skips = 3;
        run.stats.scan_walks = 1;
        run.stats.shard_skips = 31;
        run.stats.shard_walks = 2;
        let row = dispatch_row(&run);
        assert!(row.contains("wholesale:"), "row = {row}");
        assert!(row.contains('7') && row.contains('3'), "row = {row}");
        assert!(row.contains("shard-skips:"), "row = {row}");
        assert!(row.contains("31"), "row = {row}");
        assert!(budget_row(&run).is_none(), "no verdict, no row");
        run.budget_verdict = Some(reclaim_core::BudgetVerdict {
            budget_bytes: 4096,
            current_bytes: 128,
            peak_bytes: 8192,
            time_over_budget: Duration::from_millis(250),
            forced_scans: 2,
            pacer_boosts: 1,
            fallback_trips: 0,
            backpressure_events: 1,
        });
        let row = budget_row(&run).expect("verdict present");
        assert!(row.contains("4096"), "row = {row}");
        assert!(row.contains("forced-scans: 2"), "row = {row}");
        assert!(row.contains("0.250"), "row = {row}");
    }

    #[test]
    fn average_overhead_matches_simple_ratio() {
        let schemes = vec![result("hp", 1.0), result("hp", 2.0)];
        let baseline = vec![result("none", 2.0), result("none", 4.0)];
        let overhead = average_overhead_pct(&schemes, &baseline);
        assert!((overhead - 50.0).abs() < 1e-6, "overhead = {overhead}");
    }
}
