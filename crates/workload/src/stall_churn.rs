//! The `stall-churn` robustness scenario: a reader stalled mid-operation while
//! writers burst-allocate and handle churn runs.
//!
//! This is the workload the ROADMAP asked for before touching the era-advance
//! policy — the one where the policy *matters*. Each episode, the reader
//! re-enters an operation (announcing a fresh reservation at the current era)
//! and stalls there; a writer then bursts through allocate→retire pairs and
//! forces a reclamation pass; every few episodes the writer handle is dropped
//! and re-registered (thread-pool churn, exercising the park/adopt path). The
//! in-limbo count is sampled after every episode.
//!
//! What the samples show, per scheme family:
//!
//! * **QSBR** — the stalled reader never quiesces, so limbo grows with every
//!   retirement performed during the stall: unbounded.
//! * **Hazard Eras, static era policy** — each episode pins the nodes born at
//!   the stall era, i.e. up to one full era-advance interval's worth of the
//!   burst: bounded by the *tick constant*.
//! * **Hazard Eras, adaptive era policy** — the limbo the first episodes pin
//!   drives the pacer's interval down, so later stalls pin less: bounded by
//!   *observed reclamation pressure* (and never above the static bound when
//!   the adaptive `max_interval` equals the static interval).
//!
//! The scenario is deliberately single-threaded and allocation-order
//! deterministic (the "stall" is a handle that begins an operation and stops,
//! exactly as in the he/ebr unit suites), so two runs differing only in policy
//! are sample-by-sample comparable — which is what
//! `tests/robustness_bounds.rs` and the `ablation_era_advance` bench assert.

use crate::sampler::{mean, peak, percentile, LimboSampler};
use reclaim_core::{retire_box_with_birth, Smr, SmrHandle};
use std::sync::Arc;

/// Shape of one stall-churn run.
#[derive(Clone, Copy, Debug)]
pub struct StallChurnSpec {
    /// Number of stall episodes (the reader re-stalls at the start of each).
    pub episodes: usize,
    /// Allocate→retire pairs the writer performs per episode.
    pub burst: usize,
    /// Drop and re-register the writer handle every this many episodes
    /// (0 disables churn).
    pub churn_every: usize,
}

impl Default for StallChurnSpec {
    fn default() -> Self {
        Self {
            episodes: 24,
            burst: 256,
            churn_every: 8,
        }
    }
}

/// The samples one stall-churn run produces.
#[derive(Clone, Debug)]
pub struct StallChurnResult {
    /// Scheme-wide in-limbo count after each episode's reclamation pass.
    pub limbo_samples: Vec<u64>,
    /// Scheme-wide in-limbo byte count, sampled at the same instants.
    pub limbo_byte_samples: Vec<u64>,
    /// Nodes retired over the whole run.
    pub total_retired: u64,
    /// In-limbo count after the final cleanup flush (reader released).
    pub end_limbo: u64,
}

impl StallChurnResult {
    /// The highest sampled in-limbo count.
    pub fn peak_limbo(&self) -> u64 {
        peak(&self.limbo_samples)
    }

    /// The highest sampled in-limbo byte count.
    pub fn peak_limbo_bytes(&self) -> u64 {
        peak(&self.limbo_byte_samples)
    }

    /// The arithmetic mean of the sampled in-limbo counts.
    pub fn mean_limbo(&self) -> f64 {
        mean(&self.limbo_samples)
    }

    /// Exact percentile (`0.0 < p <= 1.0`) of the sampled in-limbo counts —
    /// the trajectory figure reports quote next to the peak, so a single
    /// outlier episode cannot masquerade as sustained pressure.
    pub fn limbo_percentile(&self, p: f64) -> u64 {
        percentile(&self.limbo_samples, p)
    }
}

/// Runs the stall-churn scenario against `scheme` and returns the sampled
/// limbo trajectory. Generic over [`Smr`] so era schemes (whose `alloc_node`
/// stamps real birth eras) and the epoch schemes (where it is a no-op) run the
/// byte-identical operation sequence.
// Sanctioned raw-protocol site: this driver churns the raw retire pipeline
// below the guard layer on purpose, measuring the scheme itself.
#[allow(clippy::disallowed_methods)]
pub fn run_stall_churn<S: Smr>(scheme: &Arc<S>, spec: &StallChurnSpec) -> StallChurnResult {
    let mut reader = scheme.register();
    let mut writer = Some(scheme.register());
    let mut sampler = LimboSampler::with_capacity(spec.episodes);
    let mut total_retired = 0u64;
    let mut stalled = false;
    for episode in 0..spec.episodes {
        // Re-stall: the reader announces a reservation at the current era and
        // goes silent for the rest of the episode (for QSBR this is one op
        // boundary followed by non-participation — the same blocked shape).
        if stalled {
            reader.end_op();
        }
        reader.begin_op();
        stalled = true;
        let w = writer.as_mut().expect("writer handle is always present");
        for _ in 0..spec.burst {
            w.begin_op();
            let birth = w.alloc_node();
            let ptr = Box::into_raw(Box::new(0u64));
            // SAFETY: freshly boxed, unlinked by construction, retired once.
            unsafe { retire_box_with_birth(w, ptr, birth) };
            total_retired += 1;
            w.end_op();
        }
        // One forced reclamation pass per episode, so the samples measure the
        // residue the stalled reservation actually pins, not scan latency.
        w.flush();
        if spec.churn_every != 0 && (episode + 1) % spec.churn_every == 0 {
            drop(writer.take());
            writer = Some(scheme.register());
        }
        sampler.sample(scheme);
    }
    if stalled {
        reader.end_op();
    }
    drop(reader);
    if let Some(mut w) = writer.take() {
        w.flush();
        drop(w);
    }
    // One last adopter pass so parked leftovers rejoin scanning.
    let mut cleaner = scheme.register();
    cleaner.flush();
    drop(cleaner);
    let end_limbo = scheme.stats().in_limbo();
    let (limbo_samples, limbo_byte_samples) = sampler.into_samples();
    StallChurnResult {
        limbo_samples,
        limbo_byte_samples,
        total_retired,
        end_limbo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::SmrConfig;

    fn config() -> SmrConfig {
        SmrConfig::default()
            .with_max_threads(4)
            .with_scan_threshold(128)
            .with_quiescence_threshold(1_000_000)
            .with_rooster_threads(0)
    }

    #[test]
    fn stall_churn_samples_every_episode_and_cleans_up() {
        let spec = StallChurnSpec {
            episodes: 6,
            burst: 64,
            churn_every: 2,
        };
        let scheme = he::He::new(config().with_era_advance_interval(16));
        let result = run_stall_churn(&scheme, &spec);
        assert_eq!(result.limbo_samples.len(), 6);
        assert_eq!(result.total_retired, 6 * 64);
        assert!(result.peak_limbo() >= result.end_limbo);
        assert!(result.mean_limbo() >= 0.0);
        // Once the reader is released everything must eventually free.
        assert_eq!(result.end_limbo, 0, "cleanup drains the limbo");
        let stats = scheme.stats();
        assert_eq!(stats.retired, stats.freed);
    }

    #[test]
    fn stall_churn_pins_everything_for_qsbr() {
        let spec = StallChurnSpec {
            episodes: 4,
            burst: 64,
            churn_every: 0,
        };
        let scheme = qsbr::Qsbr::new(config());
        let result = run_stall_churn(&scheme, &spec);
        // The stalled participant blocks every grace period: limbo tracks the
        // total number of retirements.
        assert_eq!(result.peak_limbo(), result.total_retired);
    }
}
