//! Seeded, deterministic fault injection: the robustness claims as runnable
//! scenarios.
//!
//! [`stall_churn`](crate::stall_churn) demonstrates one failure shape (a
//! reader stalled mid-operation). This module generalizes it into a
//! [`FaultPlan`] — a seeded, deterministic schedule of one injected fault
//! running against a background allocate→retire churn — so the scheme ×
//! fault matrix the paper argues about informally becomes something the CLI
//! and CI can execute and assert on:
//!
//! * [`FaultKind::StalledReader`] — a reader re-enters an operation each
//!   episode and goes silent inside it (the paper's delay experiment, §7.2);
//! * [`FaultKind::SilentThread`] — a thread registers and then never
//!   participates at all: no operations, no quiescent states, no exit;
//! * [`FaultKind::LeakedHandle`] — a thread retires garbage mid-operation and
//!   then drops its handle without ever flushing; the parked bytes must stay
//!   visible to the limbo accounting until a survivor adopts them;
//! * [`FaultKind::RandomDelay`] — a seeded coin decides each episode whether
//!   the reader stalls or passes an operation boundary, so delays of varying
//!   length land at reproducible but non-periodic points.
//!
//! Every retired node carries the same fixed [`PAYLOAD_BYTES`] payload, so
//! byte budgets translate to node counts by hand and two runs differing only
//! in scheme are sample-by-sample comparable.

use crate::sampler::{mean, peak, percentile, LimboSampler};
use crate::structures::SchemeKind;
use reclaim_core::{
    retire_box_with_birth, BudgetVerdict, EraAdvancePolicy, Leaky, Smr, SmrConfig, SmrHandle,
};
use std::sync::Arc;
use std::time::Duration;

/// Size of every node a fault run retires. 256 bytes sits between the small
/// list node and the fat skip-list tower, and divides budgets evenly.
pub const PAYLOAD_BYTES: usize = 256;

/// Which fault a plan injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A reader stalled mid-operation while the background churn runs.
    StalledReader,
    /// A registered thread that never participates (and never exits).
    SilentThread,
    /// A handle that retires garbage mid-operation and is dropped without an
    /// explicit flush halfway through the run.
    LeakedHandle,
    /// Seeded random per-episode stalls of the reader.
    RandomDelay,
}

impl FaultKind {
    /// Name used on the CLI and in the robustness-matrix JSON.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::StalledReader => "stalled-reader",
            FaultKind::SilentThread => "silent-thread",
            FaultKind::LeakedHandle => "leaked-handle",
            FaultKind::RandomDelay => "random-delay",
        }
    }

    /// Parses a CLI name back into a kind.
    pub fn parse(name: &str) -> Option<FaultKind> {
        Self::all().into_iter().find(|kind| kind.name() == name)
    }

    /// Every fault, in matrix order.
    pub fn all() -> [FaultKind; 4] {
        [
            FaultKind::StalledReader,
            FaultKind::SilentThread,
            FaultKind::LeakedHandle,
            FaultKind::RandomDelay,
        ]
    }
}

/// Shape of one fault run: which fault, how much background churn, and the
/// seed that makes the random-delay schedule reproducible.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// The injected fault.
    pub kind: FaultKind,
    /// Seed for the deterministic delay schedule (random-delay only; the other
    /// faults ignore it).
    pub seed: u64,
    /// Number of episodes (one writer burst + forced reclamation pass each).
    pub episodes: usize,
    /// Allocate→retire pairs the background writer performs per episode.
    pub burst: usize,
    /// Drop and re-register the writer handle every this many episodes
    /// (0 disables churn).
    pub churn_every: usize,
    /// Wall-clock pause after each episode, so age-gated schemes (Cadence,
    /// QSense's fallback path) get to see nodes older than `T + ε` at the next
    /// pass. Zero keeps the run instantaneous for schemes without age gates.
    pub episode_pause: Duration,
}

impl FaultPlan {
    /// A plan for `kind` with the default matrix shape.
    pub fn new(kind: FaultKind) -> Self {
        Self {
            kind,
            seed: 0x5eed_cafe,
            episodes: 24,
            burst: 256,
            churn_every: 8,
            episode_pause: Duration::from_millis(2),
        }
    }

    /// Bytes the background churn retires per episode — the unit budgets are
    /// naturally expressed in.
    pub fn episode_bytes(&self) -> usize {
        self.burst * PAYLOAD_BYTES
    }
}

/// What one fault run produced: the limbo trajectory plus the scheme's own
/// budget verdict.
#[derive(Clone, Debug)]
pub struct FaultResult {
    /// Scheme name ("qsbr", "hp", ...), as reported by the scheme itself.
    pub scheme: &'static str,
    /// The injected fault.
    pub fault: FaultKind,
    /// Nodes retired over the whole run (background churn + the fault's own).
    pub total_retired: u64,
    /// Scheme-wide in-limbo node count after each episode's reclamation pass.
    pub limbo_samples: Vec<u64>,
    /// Scheme-wide in-limbo byte count, sampled at the same instants.
    pub limbo_byte_samples: Vec<u64>,
    /// The governor's high-water byte mark — unlike the episode samples this
    /// also sees the peak *inside* an episode, before the flush.
    pub peak_limbo_bytes: u64,
    /// In-limbo node count after the final cleanup flush.
    pub end_limbo: u64,
    /// In-limbo byte count after the final cleanup flush.
    pub end_limbo_bytes: u64,
    /// The scheme's budget verdict, when it runs a governor (all schemes do).
    pub verdict: Option<BudgetVerdict>,
}

impl FaultResult {
    /// The highest sampled in-limbo node count.
    pub fn peak_limbo(&self) -> u64 {
        peak(&self.limbo_samples)
    }

    /// The arithmetic mean of the sampled in-limbo node counts.
    pub fn mean_limbo(&self) -> f64 {
        mean(&self.limbo_samples)
    }

    /// Exact percentile (`0.0 < p <= 1.0`) of the sampled in-limbo node
    /// counts (see [`crate::sampler::percentile`]).
    pub fn limbo_percentile(&self, p: f64) -> u64 {
        percentile(&self.limbo_samples, p)
    }

    /// Exact percentile of the sampled in-limbo byte counts.
    pub fn limbo_bytes_percentile(&self, p: f64) -> u64 {
        percentile(&self.limbo_byte_samples, p)
    }
}

/// SplitMix64: the deterministic generator behind the random-delay schedule.
/// Small, seedable, and dependency-free; statistical quality is irrelevant
/// here — reproducibility is the requirement.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Runs `plan` against `scheme` and returns the sampled trajectory plus the
/// scheme's budget verdict. Generic over [`Smr`] so era schemes (whose
/// `alloc_node` stamps real birth eras) and the epoch schemes run the
/// byte-identical operation sequence — the same contract as
/// [`run_stall_churn`](crate::stall_churn::run_stall_churn).
// Sanctioned raw-protocol site: the fault injector drives the raw retire
// pipeline below the guard layer on purpose, measuring the scheme itself.
#[allow(clippy::disallowed_methods)]
pub fn run_fault<S: Smr>(scheme: &Arc<S>, plan: &FaultPlan) -> FaultResult {
    let mut rng = SplitMix64::new(plan.seed);
    let mut sampler = LimboSampler::with_capacity(plan.episodes);
    let mut total_retired = 0u64;

    // The faulty participant and the background writer.
    let mut faulty = Some(scheme.register());
    let mut writer = Some(scheme.register());
    let mut faulty_mid_op = false;

    if matches!(
        plan.kind,
        FaultKind::StalledReader | FaultKind::LeakedHandle
    ) {
        // Both faults misbehave from *inside* an operation: the reader stalls
        // there, the leaked handle retires (and later dies) there.
        faulty
            .as_mut()
            .expect("faulty handle present at start")
            .begin_op();
        faulty_mid_op = true;
    }

    for episode in 0..plan.episodes {
        match plan.kind {
            FaultKind::StalledReader => {
                // Re-stall: pass exactly one operation boundary, then go
                // silent again for the rest of the episode.
                let f = faulty.as_mut().expect("stalled reader lives all run");
                f.end_op();
                f.begin_op();
            }
            FaultKind::SilentThread => {
                // Registered, never participating: the fault is the absence
                // of any call.
            }
            FaultKind::LeakedHandle => {
                if let Some(f) = faulty.as_mut() {
                    // Retire a burst mid-operation, never flushing.
                    for _ in 0..plan.burst {
                        let birth = f.alloc_node();
                        let ptr = Box::into_raw(Box::new([0u8; PAYLOAD_BYTES]));
                        // SAFETY: freshly boxed, unlinked by construction,
                        // retired once.
                        unsafe { retire_box_with_birth(f, ptr, birth) };
                        total_retired += 1;
                    }
                }
                if episode + 1 == plan.episodes / 2 {
                    // The leak: dropped mid-operation, without an explicit
                    // flush. Whatever the handle's own drop cannot free must
                    // park *visibly* — the byte accounting may never dip here.
                    drop(faulty.take());
                    faulty_mid_op = false;
                }
            }
            FaultKind::RandomDelay => {
                let f = faulty.as_mut().expect("delayed reader lives all run");
                if faulty_mid_op {
                    f.end_op();
                    faulty_mid_op = false;
                }
                if rng.next_u64() & 1 == 0 {
                    f.begin_op();
                    faulty_mid_op = true;
                }
            }
        }

        // The background churn is identical across faults, so trajectories
        // differ only by the injected failure.
        let w = writer.as_mut().expect("writer handle is always present");
        for _ in 0..plan.burst {
            w.begin_op();
            let birth = w.alloc_node();
            let ptr = Box::into_raw(Box::new([0u8; PAYLOAD_BYTES]));
            // SAFETY: freshly boxed, unlinked by construction, retired once.
            unsafe { retire_box_with_birth(w, ptr, birth) };
            total_retired += 1;
            w.end_op();
        }
        // One forced reclamation pass per episode, so the samples measure the
        // residue the fault actually pins, not scan latency.
        w.flush();
        if plan.churn_every != 0 && (episode + 1) % plan.churn_every == 0 {
            drop(writer.take());
            writer = Some(scheme.register());
        }
        sampler.sample(scheme);
        if !plan.episode_pause.is_zero() {
            std::thread::sleep(plan.episode_pause);
        }
    }

    // Release the fault and clean up, exactly as stall-churn does.
    if let Some(mut f) = faulty.take() {
        if faulty_mid_op {
            f.end_op();
        }
        drop(f);
    }
    if let Some(mut w) = writer.take() {
        w.flush();
        drop(w);
    }
    let mut cleaner = scheme.register();
    cleaner.flush();
    drop(cleaner);

    let snap = scheme.stats();
    let (limbo_samples, limbo_byte_samples) = sampler.into_samples();
    FaultResult {
        scheme: scheme.name(),
        fault: plan.kind,
        total_retired,
        limbo_samples,
        limbo_byte_samples,
        peak_limbo_bytes: snap.peak_limbo_bytes,
        end_limbo: snap.in_limbo(),
        end_limbo_bytes: snap.limbo_bytes(),
        verdict: scheme.budget_verdict(),
    }
}

/// The reclamation configuration the fault matrix runs under: prompt rooster
/// ticks so age gates resolve within an episode pause, an adaptive era policy
/// so HE's byte-mode pacer can engage, and the given limbo budget.
pub fn default_fault_config(budget: Option<usize>) -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(8)
        .with_quiescence_threshold(64)
        .with_scan_threshold(64)
        .with_fallback_threshold(1 << 20)
        .with_rooster_interval(Duration::from_millis(1))
        .with_rooster_epsilon(Duration::from_micros(200))
        .with_rooster_threads(1)
        .with_era_policy(EraAdvancePolicy::Adaptive {
            min_interval: 16,
            max_interval: 256,
            limbo_low_water: 1 << 14,
        })
        .with_limbo_budget(budget)
}

/// Runs `plan` against a freshly built scheme of the given kind under
/// `config` — the matrix dispatch the CLI and the robustness bench share.
pub fn run_fault_for(kind: SchemeKind, config: SmrConfig, plan: &FaultPlan) -> FaultResult {
    match kind {
        SchemeKind::None => run_fault(&Leaky::new(config), plan),
        SchemeKind::Qsbr => run_fault(&qsbr::Qsbr::new(config), plan),
        SchemeKind::Hp => run_fault(&hazard::Hazard::new(config), plan),
        SchemeKind::Cadence => run_fault(&cadence::Cadence::new(config), plan),
        SchemeKind::QSense => run_fault(&qsense::QSense::new(config), plan),
        SchemeKind::Ebr => run_fault(&ebr::Ebr::new(config), plan),
        SchemeKind::He => run_fault(&he::He::new(config), plan),
        SchemeKind::RefCount => run_fault(&refcount::RefCount::new(config), plan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_plan(kind: FaultKind) -> FaultPlan {
        FaultPlan {
            episodes: 6,
            burst: 64,
            churn_every: 2,
            episode_pause: Duration::ZERO,
            ..FaultPlan::new(kind)
        }
    }

    #[test]
    fn fault_names_round_trip_through_parse() {
        for kind in FaultKind::all() {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::parse("bogus"), None);
    }

    #[test]
    fn split_mix_is_deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut rng = SplitMix64::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let mut rng = SplitMix64::new(42);
        let b: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn stalled_reader_fault_matches_the_stall_churn_shape() {
        let plan = quick_plan(FaultKind::StalledReader);
        let config = default_fault_config(None).with_rooster_threads(0);
        let result = run_fault_for(SchemeKind::Qsbr, config, &plan);
        assert_eq!(result.scheme, "qsbr");
        assert_eq!(result.limbo_samples.len(), plan.episodes);
        assert_eq!(result.limbo_byte_samples.len(), plan.episodes);
        // The stalled participant blocks every grace period: limbo tracks the
        // total number of retirements, in nodes and in bytes.
        assert_eq!(result.peak_limbo(), result.total_retired);
        assert_eq!(
            peak(&result.limbo_byte_samples),
            result.total_retired * PAYLOAD_BYTES as u64
        );
        assert_eq!(result.end_limbo, 0, "cleanup drains the limbo");
        assert_eq!(result.end_limbo_bytes, 0);
    }

    #[test]
    fn silent_thread_blocks_qsbr_but_not_hp() {
        let plan = quick_plan(FaultKind::SilentThread);
        let config = default_fault_config(None).with_rooster_threads(0);
        let qsbr = run_fault_for(SchemeKind::Qsbr, config.clone(), &plan);
        assert_eq!(
            qsbr.peak_limbo(),
            qsbr.total_retired,
            "a silent registered thread pins every QSBR grace period"
        );
        let hp = run_fault_for(SchemeKind::Hp, config, &plan);
        assert!(
            hp.peak_limbo() < hp.total_retired / 2,
            "hazard pointers ignore silent threads (peak {} of {})",
            hp.peak_limbo(),
            hp.total_retired
        );
        assert_eq!(hp.end_limbo, 0);
    }

    #[test]
    fn leaked_handle_bytes_never_strand_invisibly() {
        let plan = quick_plan(FaultKind::LeakedHandle);
        let config = default_fault_config(None).with_rooster_threads(0);
        let result = run_fault_for(SchemeKind::Qsbr, config, &plan);
        // The leak happens mid-run; afterwards the survivor adopts and the
        // cleanup drains everything — nothing may be lost track of.
        assert_eq!(result.end_limbo, 0, "parked leftovers must be adopted");
        assert_eq!(result.end_limbo_bytes, 0);
        let verdict = result.verdict.expect("every scheme runs a governor");
        assert_eq!(
            verdict.current_bytes, 0,
            "the governor's estimate must conserve bytes across the leak"
        );
    }

    #[test]
    fn random_delay_is_reproducible_for_a_fixed_seed() {
        let plan = quick_plan(FaultKind::RandomDelay);
        let config = default_fault_config(None).with_rooster_threads(0);
        let a = run_fault_for(SchemeKind::Qsbr, config.clone(), &plan);
        let b = run_fault_for(SchemeKind::Qsbr, config, &plan);
        assert_eq!(a.limbo_samples, b.limbo_samples, "same seed, same run");
        let mut other = plan;
        other.seed ^= 0xdead_beef;
        let c = run_fault_for(SchemeKind::Qsbr, default_fault_config(None), &other);
        // Different seed, same totals — only the stall schedule moves.
        assert_eq!(c.total_retired, a.total_retired);
    }

    #[test]
    fn budgeted_hp_run_records_escalations_and_stays_bounded() {
        let mut plan = quick_plan(FaultKind::StalledReader);
        plan.episodes = 12;
        // Half an episode's bytes, with the node-count scan threshold pushed
        // out of the way so the byte budget is the binding constraint.
        let budget = plan.episode_bytes() / 2;
        let config = default_fault_config(Some(budget))
            .with_scan_threshold(1 << 20)
            .with_rooster_threads(0);
        let result = run_fault_for(SchemeKind::Hp, config, &plan);
        let verdict = result.verdict.expect("hp runs a governor");
        assert_eq!(verdict.budget_bytes, budget as u64);
        assert!(
            verdict.escalations() > 0,
            "crossing the budget must engage the ladder: {verdict:?}"
        );
        assert!(
            result.peak_limbo_bytes <= 4 * budget as u64,
            "hp must degrade gracefully (peak {} vs budget {budget})",
            result.peak_limbo_bytes,
        );
    }
}
