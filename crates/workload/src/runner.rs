//! The experiment runner: spawns worker threads, drives them with generated
//! operations for a fixed duration, injects delays, samples throughput over time and
//! aborts a run when an unreclaimed-memory cap is exceeded (the "QSBR runs out of
//! memory" outcome of Figure 5, reproduced without actually exhausting the
//! container's memory).

use crate::generator::{OpGenerator, Operation};
use crate::spec::WorkloadSpec;
use crate::structures::BenchSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Delay-injection schedule reproducing the paper's Figure 5 (bottom): one worker
/// thread is put to sleep for `delay` every `period`, starting after the first
/// `period − delay` of work (the paper delays a process during seconds 10–20, 30–40,
/// … of a 100-second run, i.e. `period = 20 s`, `delay = 10 s`).
#[derive(Clone, Copy, Debug)]
pub struct DelaySchedule {
    /// Index of the worker thread that experiences the delays.
    pub victim: usize,
    /// Full cycle length (active time + delayed time).
    pub period: Duration,
    /// How long the victim sleeps in each cycle.
    pub delay: Duration,
}

impl DelaySchedule {
    /// The paper's schedule scaled by `scale` (1.0 = the original 20 s / 10 s cycle).
    pub fn paper_scaled(scale: f64) -> Self {
        Self {
            victim: 0,
            period: Duration::from_secs_f64(20.0 * scale),
            delay: Duration::from_secs_f64(10.0 * scale),
        }
    }

    /// True if the victim should be sleeping at `elapsed` time into the run.
    pub fn is_delayed_at(&self, elapsed: Duration) -> bool {
        let period = self.period.as_secs_f64();
        let active = period - self.delay.as_secs_f64();
        if period <= 0.0 {
            return false;
        }
        let position = elapsed.as_secs_f64() % period;
        position >= active
    }
}

/// Everything needed to run one experiment cell.
pub struct Experiment {
    /// Structure + scheme under test.
    pub set: Arc<dyn BenchSet>,
    /// Workload description.
    pub spec: WorkloadSpec,
    /// Number of worker threads.
    pub threads: usize,
    /// Measured run duration (after pre-fill).
    pub duration: Duration,
    /// Optional delay injection.
    pub delay: Option<DelaySchedule>,
    /// Throughput sampling interval for the time series (None = no time series).
    pub sample_interval: Option<Duration>,
    /// Abort the run when the scheme's unreclaimed-node count exceeds this value
    /// (reproduces "the system runs out of memory and eventually fails" without
    /// taking the process down). `None` = never abort.
    pub limbo_cap: Option<u64>,
}

/// One sample of the throughput time series.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Time since the start of the measured run.
    pub at: Duration,
    /// Throughput over the sampling interval, in operations per second.
    pub ops_per_sec: f64,
    /// Retired-but-unreclaimed nodes at the end of the interval.
    pub in_limbo: u64,
}

/// The outcome of one experiment cell.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Scheme name (as in the paper's legend).
    pub scheme: String,
    /// Structure name.
    pub structure: String,
    /// Worker threads used.
    pub threads: usize,
    /// Total operations completed by all threads.
    pub total_ops: u64,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Throughput time series (empty unless sampling was requested).
    pub samples: Vec<Sample>,
    /// Reclamation counters at the end of the run.
    pub stats: reclaim_core::stats::StatsSnapshot,
    /// The scheme's limbo-budget verdict at the end of the run (present
    /// whenever the scheme runs a governor, which all schemes do).
    pub budget_verdict: Option<reclaim_core::BudgetVerdict>,
    /// Latency/delay histograms at the end of the run (empty histograms
    /// unless the configuration enabled telemetry).
    pub telemetry: Option<reclaim_core::TelemetrySummary>,
    /// Time at which the run hit the unreclaimed-memory cap, if it did.
    pub aborted_at: Option<Duration>,
}

impl RunResult {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1.0e6
    }
}

/// Runs one experiment cell to completion and returns its result.
pub fn run_experiment(experiment: &Experiment) -> RunResult {
    let Experiment {
        set,
        spec,
        threads,
        duration,
        delay,
        sample_interval,
        limbo_cap,
    } = experiment;
    let threads = (*threads).max(1);

    // Pre-fill to half the key range, as in the paper.
    let prefill = OpGenerator::prefill_keys(spec, 0x00C0_FFEE);
    set.prefill(&prefill);

    let stop = Arc::new(AtomicBool::new(false));
    let aborted = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let deadline = *duration;

    let (samples, abort_time) = thread::scope(|scope| {
        // Worker threads.
        for worker_index in 0..threads {
            let set = Arc::clone(set);
            let stop = Arc::clone(&stop);
            let total_ops = Arc::clone(&total_ops);
            let spec = *spec;
            let delay = *delay;
            scope.spawn(move || {
                let mut session = set.session();
                let mut generator = OpGenerator::new(spec, worker_index as u64 + 1);
                let mut since_check = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    // Delay injection: the victim thread sleeps through its windows,
                    // mimicking a process stalled in I/O or descheduled (paper §7.2).
                    if let Some(schedule) = delay {
                        if schedule.victim == worker_index
                            && schedule.is_delayed_at(start.elapsed())
                        {
                            thread::sleep(Duration::from_millis(1));
                            continue;
                        }
                    }
                    match generator.next_op() {
                        Operation::Contains(k) => {
                            session.contains(k);
                        }
                        Operation::Insert(k) => {
                            session.insert(k);
                        }
                        Operation::Remove(k) => {
                            session.remove(k);
                        }
                    }
                    since_check += 1;
                    // Publish progress and re-check the stop flag in batches so the
                    // hot loop stays cheap.
                    if since_check == 256 {
                        total_ops.fetch_add(u64::from(since_check), Ordering::Relaxed);
                        since_check = 0;
                    }
                }
                total_ops.fetch_add(u64::from(since_check), Ordering::Relaxed);
            });
        }

        // Coordinator: samples throughput, enforces the limbo cap and the deadline.
        let samples = {
            let set = Arc::clone(set);
            let stop = Arc::clone(&stop);
            let aborted = Arc::clone(&aborted);
            let total_ops = Arc::clone(&total_ops);
            let sample_interval = *sample_interval;
            let limbo_cap = *limbo_cap;
            scope.spawn(move || {
                let tick = sample_interval.unwrap_or(Duration::from_millis(50));
                let mut samples = Vec::new();
                let mut last_ops = 0u64;
                let mut last_at = Duration::ZERO;
                loop {
                    thread::sleep(tick.min(Duration::from_millis(200)));
                    let elapsed = start.elapsed();
                    let stats = set.smr_stats();
                    if let Some(interval) = sample_interval {
                        if elapsed - last_at >= interval {
                            let ops = total_ops.load(Ordering::Relaxed);
                            let window = (elapsed - last_at).as_secs_f64();
                            samples.push(Sample {
                                at: elapsed,
                                ops_per_sec: (ops - last_ops) as f64 / window,
                                in_limbo: stats.in_limbo(),
                            });
                            last_ops = ops;
                            last_at = elapsed;
                        }
                    }
                    if let Some(cap) = limbo_cap {
                        if stats.in_limbo() > cap {
                            aborted.store(true, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                            return (samples, Some(elapsed));
                        }
                    }
                    if elapsed >= deadline {
                        stop.store(true, Ordering::Relaxed);
                        return (samples, None);
                    }
                }
            })
        };

        samples.join().expect("coordinator thread panicked")
    });

    let elapsed = start.elapsed().min(*duration + Duration::from_secs(1));
    let stats = set.smr_stats();
    RunResult {
        scheme: set.scheme_name().to_string(),
        structure: set.structure_name().to_string(),
        threads,
        total_ops: total_ops.load(Ordering::Relaxed),
        elapsed,
        samples,
        stats,
        budget_verdict: set.budget_verdict(),
        telemetry: set.telemetry_summary(),
        aborted_at: if aborted.load(Ordering::Relaxed) {
            abort_time
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_schedule_windows_match_the_paper_pattern() {
        let schedule = DelaySchedule::paper_scaled(1.0);
        // Active during [0, 10), delayed during [10, 20), active during [20, 30), ...
        assert!(!schedule.is_delayed_at(Duration::from_secs(5)));
        assert!(schedule.is_delayed_at(Duration::from_secs(15)));
        assert!(!schedule.is_delayed_at(Duration::from_secs(25)));
        assert!(schedule.is_delayed_at(Duration::from_secs(35)));
    }

    #[test]
    fn scaled_schedule_shrinks_the_cycle() {
        let schedule = DelaySchedule::paper_scaled(0.1);
        assert_eq!(schedule.period, Duration::from_secs(2));
        assert_eq!(schedule.delay, Duration::from_secs(1));
        assert!(!schedule.is_delayed_at(Duration::from_millis(500)));
        assert!(schedule.is_delayed_at(Duration::from_millis(1_500)));
    }
}
