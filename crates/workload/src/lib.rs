//! # workload — the paper's experimental methodology as a library
//!
//! Reproduces §7.1–7.2 of *Fast and Robust Memory Reclamation for Concurrent Data
//! Structures*: uniformly random operations over a key range, structures pre-filled
//! to half their range, throughput measured either against the number of threads
//! (scalability experiments) or against time under periodic process delays
//! (robustness experiments).
//!
//! * [`spec`] — operation mixes, key ranges and the paper's presets;
//! * [`generator`] — deterministic per-thread operation streams;
//! * [`structures`] — the (structure × scheme) evaluation matrix behind one trait;
//! * [`runner`] — the measurement loop, delay injection and memory-cap abort;
//! * [`stall_churn`] — the deterministic stalled-reader / writer-burst /
//!   handle-churn robustness scenario (the era-advance policy's showcase);
//! * [`faults`] — the seeded fault-injection matrix generalizing stall-churn
//!   (stalled reader, silent thread, leaked handle, random delays) that the
//!   CLI and CI run against byte budgets;
//! * [`sampler`] — the per-episode limbo sampling the robustness scenarios
//!   share;
//! * [`server_soak`] — the M:N lease scenario (thousands of short sessions
//!   borrowing few registered handles) proving the sharded registry's
//!   scan-dispatch and the lease pool's checkout cost;
//! * [`report`] — text tables matching the figures' series.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod faults;
pub mod generator;
pub mod report;
pub mod runner;
pub mod sampler;
pub mod server_soak;
pub mod spec;
pub mod stall_churn;
pub mod structures;

pub use faults::{
    default_fault_config, run_fault, run_fault_for, FaultKind, FaultPlan, FaultResult,
    PAYLOAD_BYTES,
};
pub use generator::{OpGenerator, Operation};
pub use runner::{run_experiment, DelaySchedule, Experiment, RunResult, Sample};
pub use sampler::{percentile, LimboSampler};
pub use server_soak::{run_server_soak, run_server_soak_with, ServerSoakResult, ServerSoakSpec};
pub use spec::{OpMix, Structure, WorkloadSpec};
pub use stall_churn::{run_stall_churn, StallChurnResult, StallChurnSpec};
pub use structures::{default_bench_config, make_set, BenchSet, SchemeKind, SetSession};
