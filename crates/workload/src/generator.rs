//! Per-thread operation generation.
//!
//! Each worker thread owns an [`OpGenerator`] seeded independently, so threads do not
//! contend on a shared random-number generator (which would serialize the very
//! workload whose scalability is being measured). Operations and keys are drawn
//! uniformly, exactly as described in the paper (§7.1: "Each operation is chosen at
//! random, according to a given probability distribution, with a randomly chosen
//! key").

use crate::spec::WorkloadSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A single set operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operation {
    /// Membership query.
    Contains(u64),
    /// Insertion.
    Insert(u64),
    /// Removal.
    Remove(u64),
}

impl Operation {
    /// The key this operation targets.
    pub fn key(&self) -> u64 {
        match *self {
            Operation::Contains(k) | Operation::Insert(k) | Operation::Remove(k) => k,
        }
    }

    /// True if the operation can modify the structure.
    pub fn is_update(&self) -> bool {
        !matches!(self, Operation::Contains(_))
    }
}

/// A deterministic, thread-local operation stream.
#[derive(Debug)]
pub struct OpGenerator {
    spec: WorkloadSpec,
    rng: SmallRng,
}

impl OpGenerator {
    /// Creates a generator for `spec`, seeded by `seed` (threads use their index so
    /// runs are reproducible).
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        Self {
            spec,
            // Mix the seed so consecutive thread indices do not produce correlated
            // SmallRng streams.
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1)),
        }
    }

    /// The workload this generator draws from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Operation {
        let key = self.rng.gen_range(0..self.spec.key_range);
        let roll: u8 = self.rng.gen_range(0..100);
        if roll < self.spec.mix.read_pct {
            Operation::Contains(key)
        } else if roll < self.spec.mix.read_pct + self.spec.mix.insert_pct {
            Operation::Insert(key)
        } else {
            Operation::Remove(key)
        }
    }

    /// Draws the keys used to pre-fill the structure to its initial size: distinct
    /// keys drawn uniformly until `initial_keys` of them have been produced.
    pub fn prefill_keys(spec: &WorkloadSpec, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let target = spec.initial_keys() as usize;
        let mut keys = Vec::with_capacity(target);
        let mut seen = std::collections::HashSet::with_capacity(target * 2);
        while keys.len() < target {
            let key = rng.gen_range(0..spec.key_range);
            if seen.insert(key) {
                keys.push(key);
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OpMix;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new(1_000, OpMix::updates_50())
    }

    #[test]
    fn keys_stay_in_range() {
        let mut generator = OpGenerator::new(spec(), 7);
        for _ in 0..10_000 {
            let op = generator.next_op();
            assert!(op.key() < 1_000);
        }
    }

    #[test]
    fn mix_is_respected_within_tolerance() {
        let mut generator = OpGenerator::new(spec(), 42);
        let mut updates = 0;
        let total = 100_000;
        for _ in 0..total {
            if generator.next_op().is_update() {
                updates += 1;
            }
        }
        let fraction = updates as f64 / total as f64;
        assert!(
            (fraction - 0.5).abs() < 0.02,
            "expected ~50% updates, got {fraction}"
        );
    }

    #[test]
    fn read_only_mix_generates_only_contains() {
        let spec = WorkloadSpec::new(100, OpMix::new(100, 0, 0));
        let mut generator = OpGenerator::new(spec, 3);
        for _ in 0..1_000 {
            assert!(!generator.next_op().is_update());
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = OpGenerator::new(spec(), 9);
        let mut b = OpGenerator::new(spec(), 9);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = OpGenerator::new(spec(), 10);
        let differs = (0..100).any(|_| a.next_op() != c.next_op());
        assert!(differs, "different seeds should give different streams");
    }

    #[test]
    fn prefill_produces_distinct_keys_of_requested_size() {
        let spec = spec();
        let keys = OpGenerator::prefill_keys(&spec, 1);
        assert_eq!(keys.len() as u64, spec.initial_keys());
        let unique: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len());
        assert!(keys.iter().all(|&k| k < spec.key_range));
    }
}
