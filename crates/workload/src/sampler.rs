//! Per-episode limbo sampling shared by the robustness scenarios.
//!
//! [`stall_churn`](crate::stall_churn) and [`faults`](crate::faults) both run
//! episode loops that snapshot the scheme-wide limbo after every forced
//! reclamation pass. The sampling (and the peak/mean reductions the reports
//! and CI assertions use) lives here so the two scenarios stay trajectory-
//! compatible: a stalled-reader fault run and a classic stall-churn run with
//! the same shape produce samples reduced by exactly the same code.

use reclaim_core::Smr;
use std::sync::Arc;

/// Collects one node-count and one byte-count limbo sample per episode.
#[derive(Clone, Debug, Default)]
pub struct LimboSampler {
    node_samples: Vec<u64>,
    byte_samples: Vec<u64>,
}

impl LimboSampler {
    /// A sampler pre-sized for `episodes` samples.
    pub fn with_capacity(episodes: usize) -> Self {
        Self {
            node_samples: Vec::with_capacity(episodes),
            byte_samples: Vec::with_capacity(episodes),
        }
    }

    /// Takes one sample: the scheme-wide in-limbo node count and the stamped
    /// in-limbo byte total, from a single stats snapshot so the two figures
    /// describe the same instant.
    pub fn sample<S: Smr + ?Sized>(&mut self, scheme: &Arc<S>) {
        let snap = scheme.stats();
        self.node_samples.push(snap.in_limbo());
        self.byte_samples.push(snap.limbo_bytes());
    }

    /// The node-count samples, one per episode.
    pub fn node_samples(&self) -> &[u64] {
        &self.node_samples
    }

    /// The byte-count samples, one per episode.
    pub fn byte_samples(&self) -> &[u64] {
        &self.byte_samples
    }

    /// Consumes the sampler, returning `(node_samples, byte_samples)`.
    pub fn into_samples(self) -> (Vec<u64>, Vec<u64>) {
        (self.node_samples, self.byte_samples)
    }
}

/// The highest sample, or 0 for an empty trajectory.
pub fn peak(samples: &[u64]) -> u64 {
    samples.iter().copied().max().unwrap_or(0)
}

/// The value at percentile `p` (`0.0 < p <= 1.0`) of a sampled trajectory,
/// computed exactly over a sorted copy (unlike the log-bucketed
/// [`reclaim_core::HistSnapshot::percentile`], which trades accuracy for a
/// fixed-size lock-free representation). Returns 0 for an empty trajectory.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The arithmetic mean, or 0.0 for an empty trajectory.
pub fn mean(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<u64>() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_handle_empty_and_filled_trajectories() {
        assert_eq!(peak(&[]), 0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(peak(&[3, 9, 4]), 9);
        assert!((mean(&[2, 4]) - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn percentile_is_exact_over_the_sorted_trajectory() {
        assert_eq!(percentile(&[], 0.5), 0);
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 0.50), 50);
        assert_eq!(percentile(&samples, 0.99), 99);
        assert_eq!(percentile(&samples, 1.0), 100);
        // Order must not matter.
        let shuffled = [9u64, 1, 5, 3, 7];
        assert_eq!(percentile(&shuffled, 0.5), 5);
        assert_eq!(percentile(&shuffled, 1.0), 9);
    }

    #[test]
    fn sampler_records_node_and_byte_figures_from_one_snapshot() {
        use reclaim_core::{retire_box, Leaky, SmrConfig, SmrHandle};
        let scheme = Leaky::new(SmrConfig::default().with_max_threads(2));
        let mut handle = scheme.register();
        let mut sampler = LimboSampler::with_capacity(2);
        sampler.sample(&scheme);
        // SAFETY: freshly boxed, unlinked by construction, retired once.
        unsafe { retire_box(&mut handle, Box::into_raw(Box::new([0u8; 64]))) };
        handle.flush();
        sampler.sample(&scheme);
        assert_eq!(sampler.node_samples(), &[0, 1], "leaky never frees");
        assert_eq!(sampler.byte_samples(), &[0, 64]);
        let (nodes, bytes) = sampler.into_samples();
        assert_eq!(peak(&nodes), 1);
        assert_eq!(peak(&bytes), 64);
    }
}
