//! Uniform access to every (data structure × reclamation scheme) combination.
//!
//! The paper's evaluation matrix crosses three structures with four reclamation
//! schemes (None, QSBR, HP, QSense — plus Cadence stand-alone in the fallback
//! analysis). [`make_set`] instantiates any cell of that matrix behind the
//! object-safe [`BenchSet`] / [`SetSession`] pair so that the benchmark runner and
//! the examples can be written once.

use lockfree_ds::{
    HarrisMichaelList, LockFreeBst, LockFreeHashMap, LockFreeSkipList, MichaelScottQueue,
    TreiberStack, HASHMAP_HP_SLOTS, SKIPLIST_HP_SLOTS,
};
use reclaim_core::stats::StatsSnapshot;
use reclaim_core::{BudgetVerdict, Leaky, Smr, SmrConfig, SmrHandle, Telemetry, TelemetrySummary};
use std::sync::Arc;
use std::time::Duration;

use crate::spec::Structure;

/// Which reclamation scheme to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// No reclamation (leaky baseline, "None" in the paper's figures).
    None,
    /// Quiescent-state-based reclamation.
    Qsbr,
    /// Classic hazard pointers with per-node fences.
    Hp,
    /// Cadence stand-alone (fence-free hazard pointers + rooster threads).
    Cadence,
    /// The QSense hybrid.
    QSense,
    /// Epoch-based reclamation with per-operation pinning (related-work baseline).
    Ebr,
    /// Hazard Eras / interval-based reclamation (robust like HP, amortized like
    /// the epoch schemes; nodes carry birth/retire era stamps).
    He,
    /// Reference counting (related-work baseline).
    RefCount,
}

impl SchemeKind {
    /// Name used in benchmark tables (matches the paper's legend where applicable).
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::None => "none",
            SchemeKind::Qsbr => "qsbr",
            SchemeKind::Hp => "hp",
            SchemeKind::Cadence => "cadence",
            SchemeKind::QSense => "qsense",
            SchemeKind::Ebr => "ebr",
            SchemeKind::He => "he",
            SchemeKind::RefCount => "rc",
        }
    }

    /// The schemes that appear in the paper's figures, in the order the figures list
    /// them.
    pub fn all() -> [SchemeKind; 5] {
        [
            SchemeKind::None,
            SchemeKind::Qsbr,
            SchemeKind::QSense,
            SchemeKind::Hp,
            SchemeKind::Cadence,
        ]
    }

    /// Every implemented scheme, including the related-work baselines that the paper
    /// discusses but does not plot (EBR, reference counting) and the Hazard-Eras
    /// extension. Used by the extension benchmarks.
    pub fn extended() -> [SchemeKind; 8] {
        [
            SchemeKind::None,
            SchemeKind::Qsbr,
            SchemeKind::Ebr,
            SchemeKind::He,
            SchemeKind::QSense,
            SchemeKind::Cadence,
            SchemeKind::Hp,
            SchemeKind::RefCount,
        ]
    }
}

/// A per-thread session on a concurrent set: a registered reclamation handle bound to
/// the structure. Obtained from [`BenchSet::session`]; one per worker thread.
pub trait SetSession: Send {
    /// Membership test.
    fn contains(&mut self, key: u64) -> bool;
    /// Insert; false if already present.
    fn insert(&mut self, key: u64) -> bool;
    /// Remove; false if absent.
    fn remove(&mut self, key: u64) -> bool;
    /// Forces a reclamation pass on this thread's retired nodes.
    fn flush(&mut self);
}

/// A concurrent set paired with its reclamation scheme, usable from many threads.
pub trait BenchSet: Send + Sync {
    /// Opens a per-thread session (registers with the reclamation scheme).
    fn session(&self) -> Box<dyn SetSession>;
    /// Inserts `keys` (used for the pre-fill phase).
    fn prefill(&self, keys: &[u64]);
    /// Number of elements (quiescent-only; used to sanity-check experiments).
    fn len(&self) -> usize;
    /// True when the set holds no elements (quiescent-only).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Reclamation counters of the underlying scheme.
    fn smr_stats(&self) -> StatsSnapshot;
    /// The scheme's limbo-budget verdict, when it runs a governor.
    fn budget_verdict(&self) -> Option<BudgetVerdict>;
    /// Latency/delay histograms, when the scheme was built with telemetry
    /// support (empty histograms when telemetry was not enabled in the config).
    fn telemetry_summary(&self) -> Option<TelemetrySummary>;
    /// Scheme name ("none", "qsbr", "hp", "cadence", "qsense").
    fn scheme_name(&self) -> &'static str;
    /// Structure name ("linked-list", "skip-list", "bst").
    fn structure_name(&self) -> &'static str;
}

macro_rules! impl_bench_set {
    ($set_ty:ident, $session_ty:ident, $ds:ident, $structure:expr) => {
        struct $set_ty<S: Smr> {
            ds: Arc<$ds<u64, S>>,
            scheme: Arc<S>,
        }

        struct $session_ty<S: Smr> {
            ds: Arc<$ds<u64, S>>,
            handle: S::Handle,
        }

        impl<S: Smr> SetSession for $session_ty<S> {
            fn contains(&mut self, key: u64) -> bool {
                self.ds.contains(&key, &mut self.handle)
            }
            fn insert(&mut self, key: u64) -> bool {
                self.ds.insert(key, &mut self.handle)
            }
            fn remove(&mut self, key: u64) -> bool {
                self.ds.remove(&key, &mut self.handle)
            }
            fn flush(&mut self) {
                self.handle.flush();
            }
        }

        impl<S: Smr> BenchSet for $set_ty<S> {
            fn session(&self) -> Box<dyn SetSession> {
                Box::new($session_ty {
                    ds: Arc::clone(&self.ds),
                    handle: self.scheme.register(),
                })
            }
            fn prefill(&self, keys: &[u64]) {
                let mut handle = self.scheme.register();
                for &key in keys {
                    self.ds.insert(key, &mut handle);
                }
                handle.flush();
            }
            fn len(&self) -> usize {
                let mut handle = self.scheme.register();
                self.ds.len(&mut handle)
            }
            fn smr_stats(&self) -> StatsSnapshot {
                Smr::stats(&*self.scheme)
            }
            fn budget_verdict(&self) -> Option<BudgetVerdict> {
                Smr::budget_verdict(&*self.scheme)
            }
            fn telemetry_summary(&self) -> Option<TelemetrySummary> {
                Smr::telemetry(&*self.scheme).map(Telemetry::summary)
            }
            fn scheme_name(&self) -> &'static str {
                Smr::name(&*self.scheme)
            }
            fn structure_name(&self) -> &'static str {
                $structure.name()
            }
        }
    };
}

impl_bench_set!(ListSet, ListSession, HarrisMichaelList, Structure::List);
impl_bench_set!(SkipSet, SkipSession, LockFreeSkipList, Structure::SkipList);
impl_bench_set!(BstSet, BstSession, LockFreeBst, Structure::Bst);

/// The hash map has a map-shaped API (`contains_key`, `get`, key → value insert), so
/// its [`BenchSet`] adapter is written out instead of generated by the macro; the
/// benchmark simply stores the key as its own value.
struct HashMapSet<S: Smr> {
    ds: Arc<LockFreeHashMap<u64, u64, S>>,
    scheme: Arc<S>,
}

struct HashMapSession<S: Smr> {
    ds: Arc<LockFreeHashMap<u64, u64, S>>,
    handle: S::Handle,
}

impl<S: Smr> SetSession for HashMapSession<S> {
    fn contains(&mut self, key: u64) -> bool {
        self.ds.contains_key(&key, &mut self.handle)
    }
    fn insert(&mut self, key: u64) -> bool {
        self.ds.insert(key, key, &mut self.handle)
    }
    fn remove(&mut self, key: u64) -> bool {
        self.ds.remove(&key, &mut self.handle)
    }
    fn flush(&mut self) {
        self.handle.flush();
    }
}

impl<S: Smr> BenchSet for HashMapSet<S> {
    fn session(&self) -> Box<dyn SetSession> {
        Box::new(HashMapSession {
            ds: Arc::clone(&self.ds),
            handle: self.scheme.register(),
        })
    }
    fn prefill(&self, keys: &[u64]) {
        let mut handle = self.scheme.register();
        for &key in keys {
            self.ds.insert(key, key, &mut handle);
        }
        handle.flush();
    }
    fn len(&self) -> usize {
        self.ds.len()
    }
    fn smr_stats(&self) -> StatsSnapshot {
        Smr::stats(&*self.scheme)
    }
    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Smr::budget_verdict(&*self.scheme)
    }
    fn telemetry_summary(&self) -> Option<TelemetrySummary> {
        Smr::telemetry(&*self.scheme).map(Telemetry::summary)
    }
    fn scheme_name(&self) -> &'static str {
        Smr::name(&*self.scheme)
    }
    fn structure_name(&self) -> &'static str {
        Structure::HashMap.name()
    }
}

/// The FIFO/LIFO structures have no membership test and ignore which key an
/// operation carries: `insert` is push/enqueue, `remove` is pop/dequeue (false
/// when empty), and `contains` is served by an emptiness probe so that mixed
/// workloads still run. The natural workload for them is 100% churn
/// ([`crate::OpMix::churn`]), where `contains` never fires.
struct QueueSet<S: Smr> {
    ds: Arc<MichaelScottQueue<u64, S>>,
    scheme: Arc<S>,
}

struct QueueSession<S: Smr> {
    ds: Arc<MichaelScottQueue<u64, S>>,
    handle: S::Handle,
}

impl<S: Smr> SetSession for QueueSession<S> {
    fn contains(&mut self, _key: u64) -> bool {
        !self.ds.is_empty()
    }
    fn insert(&mut self, key: u64) -> bool {
        self.ds.enqueue(key, &mut self.handle);
        true
    }
    fn remove(&mut self, _key: u64) -> bool {
        self.ds.dequeue(&mut self.handle).is_some()
    }
    fn flush(&mut self) {
        self.handle.flush();
    }
}

impl<S: Smr> BenchSet for QueueSet<S> {
    fn session(&self) -> Box<dyn SetSession> {
        Box::new(QueueSession {
            ds: Arc::clone(&self.ds),
            handle: self.scheme.register(),
        })
    }
    fn prefill(&self, keys: &[u64]) {
        let mut handle = self.scheme.register();
        for &key in keys {
            self.ds.enqueue(key, &mut handle);
        }
        handle.flush();
    }
    fn len(&self) -> usize {
        self.ds.len()
    }
    fn smr_stats(&self) -> StatsSnapshot {
        Smr::stats(&*self.scheme)
    }
    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Smr::budget_verdict(&*self.scheme)
    }
    fn telemetry_summary(&self) -> Option<TelemetrySummary> {
        Smr::telemetry(&*self.scheme).map(Telemetry::summary)
    }
    fn scheme_name(&self) -> &'static str {
        Smr::name(&*self.scheme)
    }
    fn structure_name(&self) -> &'static str {
        Structure::Queue.name()
    }
}

struct StackSet<S: Smr> {
    ds: Arc<TreiberStack<u64, S>>,
    scheme: Arc<S>,
}

struct StackSession<S: Smr> {
    ds: Arc<TreiberStack<u64, S>>,
    handle: S::Handle,
}

impl<S: Smr> SetSession for StackSession<S> {
    fn contains(&mut self, _key: u64) -> bool {
        !self.ds.is_empty()
    }
    fn insert(&mut self, key: u64) -> bool {
        self.ds.push(key, &mut self.handle);
        true
    }
    fn remove(&mut self, _key: u64) -> bool {
        self.ds.pop(&mut self.handle).is_some()
    }
    fn flush(&mut self) {
        self.handle.flush();
    }
}

impl<S: Smr> BenchSet for StackSet<S> {
    fn session(&self) -> Box<dyn SetSession> {
        Box::new(StackSession {
            ds: Arc::clone(&self.ds),
            handle: self.scheme.register(),
        })
    }
    fn prefill(&self, keys: &[u64]) {
        let mut handle = self.scheme.register();
        for &key in keys {
            self.ds.push(key, &mut handle);
        }
        handle.flush();
    }
    fn len(&self) -> usize {
        self.ds.len()
    }
    fn smr_stats(&self) -> StatsSnapshot {
        Smr::stats(&*self.scheme)
    }
    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Smr::budget_verdict(&*self.scheme)
    }
    fn telemetry_summary(&self) -> Option<TelemetrySummary> {
        Smr::telemetry(&*self.scheme).map(Telemetry::summary)
    }
    fn scheme_name(&self) -> &'static str {
        Smr::name(&*self.scheme)
    }
    fn structure_name(&self) -> &'static str {
        Structure::Stack.name()
    }
}

/// The reclamation configuration an experiment uses for `structure`: hazard-pointer
/// budget sized to the structure (2 / 33+ / 6, as in the paper), everything else
/// from the caller's base configuration.
pub fn config_for(structure: Structure, base: SmrConfig) -> SmrConfig {
    match structure {
        Structure::List => base.with_hp_per_thread(lockfree_ds::LIST_HP_SLOTS),
        Structure::SkipList => base.with_hp_per_thread(SKIPLIST_HP_SLOTS),
        Structure::Bst => base.with_hp_per_thread(lockfree_ds::BST_HP_SLOTS),
        Structure::HashMap => base.with_hp_per_thread(HASHMAP_HP_SLOTS),
        Structure::Queue => base.with_hp_per_thread(lockfree_ds::QUEUE_HP_SLOTS),
        Structure::Stack => base.with_hp_per_thread(lockfree_ds::STACK_HP_SLOTS),
    }
}

/// A reasonable base configuration for experiments: short rooster interval so the
/// fallback path reclaims promptly during benchmarks.
pub fn default_bench_config(max_threads: usize) -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(max_threads.max(2))
        .with_quiescence_threshold(64)
        .with_scan_threshold(128)
        .with_fallback_threshold(8_192)
        .with_rooster_interval(Duration::from_millis(5))
        .with_rooster_epsilon(Duration::from_millis(1))
        .with_rooster_threads(1)
}

fn build<S: Smr>(structure: Structure, scheme: Arc<S>) -> Arc<dyn BenchSet> {
    match structure {
        Structure::List => Arc::new(ListSet {
            ds: Arc::new(HarrisMichaelList::new(Arc::clone(&scheme))),
            scheme,
        }),
        Structure::SkipList => Arc::new(SkipSet {
            ds: Arc::new(LockFreeSkipList::new(Arc::clone(&scheme))),
            scheme,
        }),
        Structure::Bst => Arc::new(BstSet {
            ds: Arc::new(LockFreeBst::new(Arc::clone(&scheme))),
            scheme,
        }),
        Structure::HashMap => Arc::new(HashMapSet {
            ds: Arc::new(LockFreeHashMap::new(Arc::clone(&scheme))),
            scheme,
        }),
        Structure::Queue => Arc::new(QueueSet {
            ds: Arc::new(MichaelScottQueue::new(Arc::clone(&scheme))),
            scheme,
        }),
        Structure::Stack => Arc::new(StackSet {
            ds: Arc::new(TreiberStack::new(Arc::clone(&scheme))),
            scheme,
        }),
    }
}

/// Instantiates one cell of the evaluation matrix.
pub fn make_set(structure: Structure, scheme: SchemeKind, base: SmrConfig) -> Arc<dyn BenchSet> {
    let config = config_for(structure, base);
    match scheme {
        SchemeKind::None => build(structure, Leaky::new(config)),
        SchemeKind::Qsbr => build(structure, qsbr::Qsbr::new(config)),
        SchemeKind::Hp => build(structure, hazard::Hazard::new(config)),
        SchemeKind::Cadence => build(structure, cadence::Cadence::new(config)),
        SchemeKind::QSense => build(structure, qsense::QSense::new(config)),
        SchemeKind::Ebr => build(structure, ebr::Ebr::new(config)),
        SchemeKind::He => build(structure, he::He::new(config)),
        SchemeKind::RefCount => build(structure, refcount::RefCount::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_matrix_cell_supports_basic_operations() {
        for structure in [
            Structure::List,
            Structure::SkipList,
            Structure::Bst,
            Structure::HashMap,
        ] {
            for scheme in SchemeKind::extended() {
                let set = make_set(structure, scheme, default_bench_config(4));
                let mut session = set.session();
                assert!(session.insert(10), "{structure:?} {scheme:?}");
                assert!(!session.insert(10), "{structure:?} {scheme:?}");
                assert!(session.contains(10), "{structure:?} {scheme:?}");
                assert!(session.remove(10), "{structure:?} {scheme:?}");
                assert!(!session.contains(10), "{structure:?} {scheme:?}");
                session.flush();
                assert_eq!(set.scheme_name(), scheme.name());
                assert_eq!(set.structure_name(), structure.name());
            }
        }
    }

    #[test]
    fn prefill_populates_half_of_the_range() {
        let set = make_set(Structure::List, SchemeKind::QSense, default_bench_config(2));
        let keys: Vec<u64> = (0..100).collect();
        set.prefill(&keys);
        assert_eq!(set.len(), 100);
        let stats = set.smr_stats();
        assert_eq!(stats.retired, 0, "prefill of distinct keys retires nothing");
    }

    #[test]
    fn scheme_kind_names_match_paper_legend() {
        assert_eq!(SchemeKind::None.name(), "none");
        assert_eq!(SchemeKind::Qsbr.name(), "qsbr");
        assert_eq!(SchemeKind::Hp.name(), "hp");
        assert_eq!(SchemeKind::Cadence.name(), "cadence");
        assert_eq!(SchemeKind::QSense.name(), "qsense");
        assert_eq!(SchemeKind::Ebr.name(), "ebr");
        assert_eq!(SchemeKind::He.name(), "he");
        assert_eq!(SchemeKind::RefCount.name(), "rc");
        assert_eq!(SchemeKind::all().len(), 5);
        assert_eq!(SchemeKind::extended().len(), 8);
        for kind in SchemeKind::all() {
            assert!(
                SchemeKind::extended().contains(&kind),
                "extended() must be a superset of all()"
            );
        }
    }

    #[test]
    fn queue_and_stack_cells_churn_on_every_scheme() {
        for structure in [Structure::Queue, Structure::Stack] {
            for scheme in SchemeKind::extended() {
                let set = make_set(structure, scheme, default_bench_config(4));
                let mut session = set.session();
                assert!(
                    !session.contains(0),
                    "{structure:?} {scheme:?}: empty probe"
                );
                assert!(session.insert(1), "{structure:?} {scheme:?}");
                assert!(session.insert(2), "{structure:?} {scheme:?}");
                assert!(session.contains(0), "{structure:?} {scheme:?}");
                assert!(session.remove(0), "{structure:?} {scheme:?}");
                assert!(session.remove(0), "{structure:?} {scheme:?}");
                assert!(
                    !session.remove(0),
                    "{structure:?} {scheme:?}: drained empty"
                );
                session.flush();
                assert_eq!(set.scheme_name(), scheme.name());
                assert_eq!(set.structure_name(), structure.name());
            }
        }
    }

    #[test]
    fn queue_and_stack_prefill_report_their_length() {
        for structure in [Structure::Queue, Structure::Stack] {
            let set = make_set(structure, SchemeKind::QSense, default_bench_config(2));
            let keys: Vec<u64> = (0..100).collect();
            set.prefill(&keys);
            assert_eq!(set.len(), 100, "{structure:?}");
        }
    }

    #[test]
    fn hash_map_cell_reports_its_structure_name() {
        let set = make_set(
            Structure::HashMap,
            SchemeKind::QSense,
            default_bench_config(2),
        );
        assert_eq!(set.structure_name(), "hash-map");
        let keys: Vec<u64> = (0..64).collect();
        set.prefill(&keys);
        assert_eq!(set.len(), 64);
    }
}
