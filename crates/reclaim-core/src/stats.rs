//! Scheme statistics.
//!
//! Every scheme exposes the same counters so that the benchmark harness can report
//! memory behaviour uniformly: how many nodes have been retired, how many actually
//! freed, how many hazard-pointer scans and quiescent states were executed, how many
//! memory fences were issued on the traversal path (the quantity the paper's whole
//! design revolves around), and — for QSense — how often the system switched paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed ordering is sufficient everywhere here: the counters are monotonic
/// diagnostics, never used for synchronization decisions.
const R: Ordering = Ordering::Relaxed;

/// Monotonic counters describing a scheme's reclamation activity.
///
/// All methods take `&self`; the struct is meant to be shared behind an `Arc`.
#[derive(Debug, Default)]
pub struct SmrStats {
    retired: AtomicU64,
    freed: AtomicU64,
    scans: AtomicU64,
    quiescent_states: AtomicU64,
    traversal_fences: AtomicU64,
    fallback_switches: AtomicU64,
    fast_path_switches: AtomicU64,
}

/// A plain snapshot of [`SmrStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Nodes handed to `retire` (the paper's `free_node_later`).
    pub retired: u64,
    /// Nodes whose destructor has actually run.
    pub freed: u64,
    /// Hazard-pointer scans executed (HP / Cadence / QSense fallback).
    pub scans: u64,
    /// Quiescent states declared (QSBR / QSense fast path).
    pub quiescent_states: u64,
    /// Memory fences issued on the traversal path (classic HP only; Cadence's whole
    /// point is to keep this at zero).
    pub traversal_fences: u64,
    /// Fast-path → fallback-path switches (QSense).
    pub fallback_switches: u64,
    /// Fallback-path → fast-path switches (QSense).
    pub fast_path_switches: u64,
}

impl StatsSnapshot {
    /// Nodes retired but not yet freed (the union of limbo / removed-node lists).
    pub fn in_limbo(&self) -> u64 {
        self.retired.saturating_sub(self.freed)
    }
}

impl SmrStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` nodes retired.
    pub fn add_retired(&self, n: u64) {
        self.retired.fetch_add(n, R);
    }

    /// Records `n` nodes freed.
    pub fn add_freed(&self, n: u64) {
        self.freed.fetch_add(n, R);
    }

    /// Records one hazard-pointer scan.
    pub fn add_scan(&self) {
        self.scans.fetch_add(1, R);
    }

    /// Records one quiescent state.
    pub fn add_quiescent_state(&self) {
        self.quiescent_states.fetch_add(1, R);
    }

    /// Records `n` traversal-path memory fences.
    pub fn add_traversal_fences(&self, n: u64) {
        self.traversal_fences.fetch_add(n, R);
    }

    /// Records a switch to the fallback path.
    pub fn add_fallback_switch(&self) {
        self.fallback_switches.fetch_add(1, R);
    }

    /// Records a switch back to the fast path.
    pub fn add_fast_path_switch(&self) {
        self.fast_path_switches.fetch_add(1, R);
    }

    /// Takes a consistent-enough snapshot of all counters (each counter is read
    /// atomically; the set is not a single atomic cut, which is fine for reporting).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            retired: self.retired.load(R),
            freed: self.freed.load(R),
            scans: self.scans.load(R),
            quiescent_states: self.quiescent_states.load(R),
            traversal_fences: self.traversal_fences.load(R),
            fallback_switches: self.fallback_switches.load(R),
            fast_path_switches: self.fast_path_switches.load(R),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counters_accumulate() {
        let stats = SmrStats::new();
        stats.add_retired(10);
        stats.add_freed(4);
        stats.add_scan();
        stats.add_scan();
        stats.add_quiescent_state();
        stats.add_traversal_fences(7);
        stats.add_fallback_switch();
        stats.add_fast_path_switch();
        let snap = stats.snapshot();
        assert_eq!(snap.retired, 10);
        assert_eq!(snap.freed, 4);
        assert_eq!(snap.in_limbo(), 6);
        assert_eq!(snap.scans, 2);
        assert_eq!(snap.quiescent_states, 1);
        assert_eq!(snap.traversal_fences, 7);
        assert_eq!(snap.fallback_switches, 1);
        assert_eq!(snap.fast_path_switches, 1);
    }

    #[test]
    fn in_limbo_saturates() {
        let snap = StatsSnapshot {
            retired: 3,
            freed: 5,
            ..Default::default()
        };
        assert_eq!(snap.in_limbo(), 0);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let stats = Arc::new(SmrStats::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let stats = Arc::clone(&stats);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        stats.add_retired(1);
                        stats.add_freed(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = stats.snapshot();
        assert_eq!(snap.retired, 4000);
        assert_eq!(snap.freed, 4000);
        assert_eq!(snap.in_limbo(), 0);
    }
}
