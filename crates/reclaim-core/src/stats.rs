//! Scheme statistics, sharded for hot-path scalability.
//!
//! Every scheme exposes the same counters so that the benchmark harness can report
//! memory behaviour uniformly: how many nodes have been retired, how many actually
//! freed, how many hazard-pointer scans and quiescent states were executed, how many
//! memory fences were issued on the traversal path (the quantity the paper's whole
//! design revolves around), and — for QSense — how often the system switched paths.
//!
//! ## Why stripes
//!
//! The counters are bumped on the *measured hot path*: every `retire` and every
//! quiescent state touches them. An earlier revision kept seven unpadded `AtomicU64`s
//! in one shared struct — one cache line that every worker thread `fetch_add`ed on
//! every operation, i.e. a built-in contention floor of exactly the kind the paper's
//! design (and DEBRA's / Hyaline's "keep bookkeeping per-thread") warns about. The
//! counters now live in [`StatStripe`]s — one cache-padded stripe per writer — and
//! are only summed when somebody asks for a [`StatsSnapshot`]. Writers touch their
//! own line; readers pay O(#stripes) per snapshot, which is off the measured path.
//!
//! Registry-backed schemes (QSBR, EBR, HP, Cadence, QSense) keep one stripe per
//! registry slot, co-located with the slot record the owning thread already writes
//! (see [`crate::registry::Registry`]). Registry-less schemes (Leaky, RefCount) use
//! a standalone [`ShardedStats`] and deal stripes out round-robin at registration.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Relaxed ordering is sufficient for most counters: they are monotonic
/// diagnostics, never used for synchronization decisions. The exception is the
/// `freed`/`retired` pair — see [`StatStripe::add_freed`].
const R: Ordering = Ordering::Relaxed;

/// One cache-padded stripe of monotonic reclamation counters, written by a single
/// logical owner (a registry slot or a round-robin shard) and summed lazily.
///
/// All methods take `&self`; writes are single-writer in practice but remain safe
/// under arbitrary sharing.
#[derive(Debug, Default)]
pub struct StatStripe {
    retired: AtomicU64,
    freed: AtomicU64,
    size_unknown_retires: AtomicU64,
    retired_bytes: AtomicU64,
    freed_bytes: AtomicU64,
    scans: AtomicU64,
    scan_wholesale: AtomicU64,
    scan_skips: AtomicU64,
    scan_walks: AtomicU64,
    quiescent_states: AtomicU64,
    traversal_fences: AtomicU64,
    fallback_switches: AtomicU64,
    fast_path_switches: AtomicU64,
}

/// A plain snapshot of a scheme's counters at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Nodes handed to `retire` (the paper's `free_node_later`).
    pub retired: u64,
    /// Nodes whose destructor has actually run.
    pub freed: u64,
    /// Retires that reached the scheme without a byte size (`size_bytes == 0`,
    /// the sealed legacy path). The guard layer always stamps sizes, so every
    /// structure built on it pins this at zero; a non-zero value means some
    /// call site bypassed the sized birth-era-stamped path.
    pub size_unknown_retires: u64,
    /// Stamped allocation bytes handed to `retire` (size-unknown nodes add
    /// zero; see `RetiredPtr::size_bytes`).
    pub retired_bytes: u64,
    /// Stamped allocation bytes actually released.
    pub freed_bytes: u64,
    /// High-water mark of the scheme-wide limbo *byte* estimate, as tracked by
    /// the scheme's budget governor at its reporting grain (0 when the scheme
    /// carries no governor). Not a stripe counter: the scheme injects it at
    /// snapshot time.
    pub peak_limbo_bytes: u64,
    /// Hazard-pointer scans executed (HP / Cadence / QSense fallback).
    pub scans: u64,
    /// Scan-dispatch decisions that freed a whole batch (a bag, chain or era
    /// bucket) without testing its nodes individually — the cheapest cost
    /// class (QSBR grace-period drains, EBR safe buckets, QSense fast-path
    /// drains, HE wholesale chains).
    pub scan_wholesale: u64,
    /// Scan-dispatch decisions that skipped a whole batch unexamined (bucket
    /// still covered by a reservation, epoch not yet safe, nothing old
    /// enough) — zero per-node work, zero frees.
    pub scan_skips: u64,
    /// Scan-dispatch decisions that walked a batch node by node, testing each
    /// against protections or ages — the expensive cost class (HP/Cadence
    /// scans, QSense fallback, HE boundary chains, RefCount sweeps).
    pub scan_walks: u64,
    /// Registry shards stepped over as wholly vacant by scans and cursor walks
    /// (one bitmap load, zero slot lines touched) — the counter that proves
    /// scan cost tracks *active shards*, not registered capacity. Not a stripe
    /// counter: the registry tracks it and injects it at merge time (see
    /// [`crate::registry::Registry::merge_stats`]).
    pub shard_skips: u64,
    /// Registry shards actually walked (at least one claimed slot at the
    /// bitmap load). Registry-level, like [`shard_skips`](Self::shard_skips).
    pub shard_walks: u64,
    /// Quiescent states declared (QSBR / QSense fast path).
    pub quiescent_states: u64,
    /// Memory fences issued on the traversal path (classic HP only; Cadence's whole
    /// point is to keep this at zero).
    pub traversal_fences: u64,
    /// Fast-path → fallback-path switches (QSense).
    pub fallback_switches: u64,
    /// Fallback-path → fast-path switches (QSense).
    pub fast_path_switches: u64,
}

impl StatsSnapshot {
    /// Nodes retired but not yet freed (the union of limbo / removed-node lists).
    pub fn in_limbo(&self) -> u64 {
        self.retired.saturating_sub(self.freed)
    }

    /// Stamped bytes retired but not yet freed — the byte-denominated limbo
    /// total the budget subsystem enforces against.
    pub fn limbo_bytes(&self) -> u64 {
        self.retired_bytes.saturating_sub(self.freed_bytes)
    }
}

impl StatStripe {
    /// Creates a zeroed stripe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` nodes retired.
    #[inline]
    pub fn add_retired(&self, n: u64) {
        self.retired.fetch_add(n, R);
    }

    /// Records `n` nodes freed.
    ///
    /// The release ordering pairs with the acquire load in [`merge_into`]
    /// (which reads `freed` *before* `retired`): any free observed by a snapshot
    /// carries a happens-before edge to its own retire — a node is always retired
    /// by its owner before that same owner frees it — so a snapshot can never
    /// report `freed > retired`.
    #[inline]
    pub fn add_freed(&self, n: u64) {
        self.freed.fetch_add(n, Ordering::Release);
    }

    /// Records `n` stamped bytes retired.
    #[inline]
    pub fn add_retired_bytes(&self, n: u64) {
        self.retired_bytes.fetch_add(n, R);
    }

    /// Records one retire that arrived without a byte size (the sealed
    /// size-unknown path; see [`StatsSnapshot::size_unknown_retires`]).
    #[inline]
    pub fn add_size_unknown_retire(&self) {
        self.size_unknown_retires.fetch_add(1, R);
    }

    /// Records `n` stamped bytes freed. Release for the same reason as
    /// [`add_freed`](Self::add_freed): paired with the acquire freed-first
    /// read in [`merge_into`](Self::merge_into), a snapshot can never report
    /// `freed_bytes > retired_bytes`.
    #[inline]
    pub fn add_freed_bytes(&self, n: u64) {
        self.freed_bytes.fetch_add(n, Ordering::Release);
    }

    /// Records one hazard-pointer scan.
    #[inline]
    pub fn add_scan(&self) {
        self.scans.fetch_add(1, R);
    }

    /// Records one wholesale scan-dispatch decision (a whole batch freed with
    /// no per-node tests; see [`StatsSnapshot::scan_wholesale`]).
    #[inline]
    pub fn add_scan_wholesale(&self) {
        self.scan_wholesale.fetch_add(1, R);
    }

    /// Records one skipped batch (examined and passed over whole; see
    /// [`StatsSnapshot::scan_skips`]).
    #[inline]
    pub fn add_scan_skip(&self) {
        self.scan_skips.fetch_add(1, R);
    }

    /// Records one per-node walk over a batch (see
    /// [`StatsSnapshot::scan_walks`]).
    #[inline]
    pub fn add_scan_walk(&self) {
        self.scan_walks.fetch_add(1, R);
    }

    /// Records one quiescent state.
    #[inline]
    pub fn add_quiescent_state(&self) {
        self.quiescent_states.fetch_add(1, R);
    }

    /// Records `n` traversal-path memory fences.
    #[inline]
    pub fn add_traversal_fences(&self, n: u64) {
        self.traversal_fences.fetch_add(n, R);
    }

    /// Records a switch to the fallback path.
    pub fn add_fallback_switch(&self) {
        self.fallback_switches.fetch_add(1, R);
    }

    /// Records a switch back to the fast path.
    pub fn add_fast_path_switch(&self) {
        self.fast_path_switches.fetch_add(1, R);
    }

    /// Accumulates this stripe into `snap`.
    ///
    /// `freed` is read first (acquire): every free it observes happened-after the
    /// matching retire on the same stripe, so the subsequent `retired` read is
    /// guaranteed to include that retire. This keeps the aggregate
    /// `retired >= freed` invariant visible to concurrent snapshots.
    pub fn merge_into(&self, snap: &mut StatsSnapshot) {
        snap.freed += self.freed.load(Ordering::Acquire);
        snap.retired += self.retired.load(R);
        snap.size_unknown_retires += self.size_unknown_retires.load(R);
        snap.freed_bytes += self.freed_bytes.load(Ordering::Acquire);
        snap.retired_bytes += self.retired_bytes.load(R);
        snap.scans += self.scans.load(R);
        snap.scan_wholesale += self.scan_wholesale.load(R);
        snap.scan_skips += self.scan_skips.load(R);
        snap.scan_walks += self.scan_walks.load(R);
        snap.quiescent_states += self.quiescent_states.load(R);
        snap.traversal_fences += self.traversal_fences.load(R);
        snap.fallback_switches += self.fallback_switches.load(R);
        snap.fast_path_switches += self.fast_path_switches.load(R);
    }

    /// Snapshot of this stripe alone (tests and diagnostics).
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        self.merge_into(&mut snap);
        snap
    }
}

/// Standalone sharded counters for schemes that have no slot registry (Leaky,
/// RefCount): a fixed array of cache-padded stripes dealt out round-robin.
///
/// Registry-backed schemes should use the stripes embedded in
/// [`crate::registry::Registry`] instead, which co-locates each stripe with the
/// slot record its owner already touches.
#[derive(Debug)]
pub struct ShardedStats {
    stripes: Box<[CachePadded<StatStripe>]>,
    next: AtomicUsize,
}

impl ShardedStats {
    /// Creates `shards` zeroed stripes (at least one).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            stripes: (0..shards)
                .map(|_| CachePadded::new(StatStripe::new()))
                .collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of stripes.
    pub fn shards(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe for shard `index`, which must be in range — handles pass the
    /// index [`assign_stripe`](Self::assign_stripe) gave them. Direct indexing
    /// (no modulo): this runs on every `retire` of the registry-less schemes,
    /// including the Leaky throughput *baseline*, where even an integer division
    /// would inflate the floor every overhead number is measured against.
    #[inline]
    pub fn stripe(&self, index: usize) -> &StatStripe {
        &self.stripes[index]
    }

    /// Deals out the next stripe index round-robin. Handles grab one at
    /// registration; two handles never share a line as long as no more handles
    /// are **ever registered** than there are stripes (the counter does not
    /// reclaim stripes of dropped handles, so under handle churn assignments
    /// wrap and sharing — harmless but contended — can recur).
    pub fn assign_stripe(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % self.stripes.len()
    }

    /// Sums every stripe into one consistent-enough snapshot (each counter is read
    /// atomically; the set is not a single atomic cut, which is fine for
    /// reporting — except `retired >= freed`, which *is* guaranteed; see
    /// [`StatStripe::add_freed`]).
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        for stripe in self.stripes.iter() {
            stripe.merge_into(&mut snap);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn stripe_counters_accumulate() {
        let stats = StatStripe::new();
        stats.add_retired(10);
        stats.add_freed(4);
        stats.add_size_unknown_retire();
        stats.add_retired_bytes(640);
        stats.add_freed_bytes(256);
        stats.add_scan();
        stats.add_scan();
        stats.add_scan_wholesale();
        stats.add_scan_skip();
        stats.add_scan_skip();
        stats.add_scan_walk();
        stats.add_scan_walk();
        stats.add_scan_walk();
        stats.add_quiescent_state();
        stats.add_traversal_fences(7);
        stats.add_fallback_switch();
        stats.add_fast_path_switch();
        let snap = stats.snapshot();
        assert_eq!(snap.retired, 10);
        assert_eq!(snap.freed, 4);
        assert_eq!(snap.size_unknown_retires, 1);
        assert_eq!(snap.in_limbo(), 6);
        assert_eq!(snap.retired_bytes, 640);
        assert_eq!(snap.freed_bytes, 256);
        assert_eq!(snap.limbo_bytes(), 384);
        assert_eq!(snap.scans, 2);
        assert_eq!(snap.scan_wholesale, 1);
        assert_eq!(snap.scan_skips, 2);
        assert_eq!(snap.scan_walks, 3);
        assert_eq!(snap.quiescent_states, 1);
        assert_eq!(snap.traversal_fences, 7);
        assert_eq!(snap.fallback_switches, 1);
        assert_eq!(snap.fast_path_switches, 1);
    }

    #[test]
    fn in_limbo_saturates() {
        let snap = StatsSnapshot {
            retired: 3,
            freed: 5,
            retired_bytes: 100,
            freed_bytes: 300,
            ..Default::default()
        };
        assert_eq!(snap.in_limbo(), 0);
        assert_eq!(snap.limbo_bytes(), 0);
    }

    #[test]
    fn sharded_snapshot_merges_all_stripes() {
        let stats = ShardedStats::new(4);
        for i in 0..4 {
            stats.stripe(i).add_retired(i as u64 + 1);
        }
        stats.stripe(0).add_freed(1);
        let snap = stats.snapshot();
        assert_eq!(snap.retired, 1 + 2 + 3 + 4);
        assert_eq!(snap.freed, 1);
    }

    #[test]
    fn stripe_assignment_round_robins() {
        let stats = ShardedStats::new(3);
        let dealt: Vec<_> = (0..6).map(|_| stats.assign_stripe()).collect();
        assert_eq!(dealt, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let stats = ShardedStats::new(0);
        assert_eq!(stats.shards(), 1);
        stats.stripe(stats.assign_stripe()).add_retired(1);
        assert_eq!(stats.snapshot().retired, 1);
    }

    /// Satellite requirement: concurrent updates across stripes must never lose
    /// counts — the whole point of striping is to decontend, not to approximate.
    #[test]
    fn concurrent_striped_updates_are_not_lost() {
        const THREADS: usize = 8;
        const OPS: u64 = 10_000;
        let stats = Arc::new(ShardedStats::new(THREADS));
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let stats = Arc::clone(&stats);
                thread::spawn(move || {
                    let shard = stats.assign_stripe();
                    for _ in 0..OPS {
                        stats.stripe(shard).add_retired(1);
                        stats.stripe(shard).add_freed(1);
                        stats.stripe(shard).add_quiescent_state();
                    }
                })
            })
            .collect();
        for t in workers {
            t.join().unwrap();
        }
        let snap = stats.snapshot();
        assert_eq!(snap.retired, THREADS as u64 * OPS);
        assert_eq!(snap.freed, THREADS as u64 * OPS);
        assert_eq!(snap.quiescent_states, THREADS as u64 * OPS);
        assert_eq!(snap.in_limbo(), 0);
    }

    /// Satellite requirement: a snapshot taken at any instant, concurrent with
    /// writers that always retire before freeing, must report `retired >= freed`.
    #[test]
    fn snapshot_never_reports_more_freed_than_retired() {
        use std::sync::atomic::AtomicBool;
        let stats = Arc::new(ShardedStats::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|shard| {
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        stats.stripe(shard).add_retired(1);
                        stats.stripe(shard).add_retired_bytes(64);
                        stats.stripe(shard).add_freed(1);
                        stats.stripe(shard).add_freed_bytes(64);
                    }
                })
            })
            .collect();
        for _ in 0..20_000 {
            let snap = stats.snapshot();
            assert!(
                snap.retired >= snap.freed,
                "snapshot tore: retired {} < freed {}",
                snap.retired,
                snap.freed
            );
            assert!(
                snap.retired_bytes >= snap.freed_bytes,
                "snapshot tore: retired_bytes {} < freed_bytes {}",
                snap.retired_bytes,
                snap.freed_bytes
            );
        }
        stop.store(true, Ordering::Relaxed);
        for t in writers {
            t.join().unwrap();
        }
    }
}
