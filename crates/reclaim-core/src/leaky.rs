//! The *None* baseline: no reclamation at all.
//!
//! The paper's evaluation compares every scheme against a "leaky" implementation that
//! never frees removed nodes — the upper bound on throughput, since it pays zero
//! reclamation overhead on the hot path. [`Leaky`] reproduces that baseline:
//! `begin_op`, `protect` and `flush` are no-ops and `retire` merely records the node.
//!
//! Unlike a literal `free`-never-called port, retired nodes are parked in the scheme
//! object and released when the scheme itself is dropped. During a run the behaviour
//! is identical to the paper's leaky baseline (nothing is ever freed, no hot-path
//! work is done), but the benchmark process does not permanently leak the memory of
//! every experiment it has already finished.

use crate::budget::{BudgetGovernor, BudgetVerdict};
use crate::config::SmrConfig;
use crate::retired::{DropFn, RetiredPtr};
use crate::segbag::{ParkedChain, SegBag, SegPool};
use crate::smr::{CapacityExhausted, Smr, SmrHandle};
use crate::stats::{ShardedStats, StatsSnapshot};
use crate::telemetry::{HandleTelemetry, Telemetry};
use std::sync::Arc;
use std::time::Instant;

/// The no-reclamation scheme (paper: *None*).
pub struct Leaky {
    config: SmrConfig,
    /// Per-handle counter stripes: this is the throughput *baseline*, so its
    /// `retire` accounting must not introduce the very cacheline contention the
    /// other schemes are measured against.
    stats: ShardedStats,
    /// Nodes retired by all threads, parked until the scheme is dropped (one
    /// segment chain; dying handles splice into it in O(1)).
    parked: ParkedChain,
    /// Byte-budget bookkeeping. Leaky never frees, so there is no escalation
    /// ladder to climb — the governor only *tracks* limbo bytes so that the
    /// verdict (and `peak_limbo_bytes`) honestly reports the unbounded growth
    /// the None baseline exists to demonstrate.
    governor: BudgetGovernor,
    /// Telemetry histograms. Leaky never frees, so only the op-latency
    /// histogram ever fills — the delay distribution of the None baseline is
    /// honestly empty (garbage is never reclaimed, not reclaimed at delay 0).
    telemetry: Arc<Telemetry>,
}

impl Leaky {
    /// Creates a leaky scheme instance.
    pub fn new(config: SmrConfig) -> Arc<Self> {
        let stats = ShardedStats::new(config.max_threads);
        let governor = BudgetGovernor::new(config.limbo_budget, config.clock.clone());
        let telemetry = Arc::new(Telemetry::from_config(&config));
        Arc::new(Self {
            config,
            stats,
            parked: ParkedChain::new(),
            governor,
            telemetry,
        })
    }

    /// Creates a leaky scheme with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SmrConfig::default())
    }

    /// The configuration this scheme was created with.
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }
}

impl Smr for Leaky {
    type Handle = LeakyHandle;

    // Leaky has no slot registry, so registration can never exhaust: stripes
    // are dealt round-robin and shared past `max_threads` instead of refused.
    fn try_register(self: &Arc<Self>) -> Result<LeakyHandle, CapacityExhausted> {
        let stripe = self.stats.assign_stripe();
        Ok(LeakyHandle {
            stripe,
            budget_stripe: BudgetGovernor::stripe_for(stripe),
            budget_reported: 0,
            tele: HandleTelemetry::attach(&self.telemetry),
            scheme: Arc::clone(self),
            pool: SegPool::new(),
            bag: SegBag::new(),
        })
    }

    fn name(&self) -> &'static str {
        "none"
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.peak_limbo_bytes = self.governor.peak_bytes();
        snap
    }

    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Some(self.governor.verdict())
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.telemetry)
    }
}

impl Drop for Leaky {
    fn drop(&mut self) {
        // All handles are gone (they hold Arc<Self>), so no thread can reach any
        // retired node any more: releasing everything is safe.
        // SAFETY: parked nodes were retired by departed handles and survive until a scan proves them unprotected.
        let (freed, freed_bytes) = unsafe { self.parked.drain_all() };
        self.stats.stripe(0).add_freed(freed as u64);
        self.stats.stripe(0).add_freed_bytes(freed_bytes as u64);
        self.governor.note_parked(-(freed_bytes as i64));
    }
}

/// Per-thread handle for [`Leaky`].
pub struct LeakyHandle {
    scheme: Arc<Leaky>,
    /// Index of this handle's counter stripe in the scheme's [`ShardedStats`].
    stripe: usize,
    /// This handle's stripe in the scheme's [`BudgetGovernor`].
    budget_stripe: usize,
    /// Local-bytes figure last pushed into the governor (delta-report cursor).
    budget_reported: usize,
    /// Telemetry recording cursor (stripe + op-sampling counter).
    tele: HandleTelemetry,
    pool: SegPool,
    bag: SegBag,
}

impl SmrHandle for LeakyHandle {
    fn begin_op(&mut self) {}

    fn end_op(&mut self) {}

    fn protect(&mut self, _index: usize, _ptr: *mut u8) {}

    fn clear_protections(&mut self) {}

    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn) {
        // SAFETY: forwarded directly from the caller's contract.
        unsafe { self.retire_sized(ptr, drop_fn, crate::clock::NO_BIRTH_ERA, 0) }
    }

    unsafe fn retire_sized(
        &mut self,
        ptr: *mut u8,
        drop_fn: DropFn,
        _birth_era: crate::clock::Era,
        size_bytes: usize,
    ) {
        let stripe = self.scheme.stats.stripe(self.stripe);
        stripe.add_retired(1);
        stripe.add_retired_bytes(size_bytes as u64);
        if size_bytes == 0 {
            stripe.add_size_unknown_retire();
        }
        let now = self.scheme.config.clock.now();
        // SAFETY: forwarded directly from the caller's contract.
        let mut node = unsafe {
            RetiredPtr::with_birth_sized(ptr, drop_fn, now, crate::clock::NO_BIRTH_ERA, size_bytes)
        };
        node.set_retire_tick(self.tele.retire_tick());
        self.bag.push(&mut self.pool, node);
        // Track bytes (so peak/verdict are honest) but never escalate: Leaky
        // has no reclamation pass to force, and that is the point of the
        // baseline.
        self.scheme.governor.observe(
            self.budget_stripe,
            self.bag.bytes(),
            &mut self.budget_reported,
        );
    }

    fn flush(&mut self) {
        // Leaky never reclaims while running; that is the whole point of the baseline.
    }

    fn local_in_limbo(&self) -> usize {
        self.bag.len()
    }

    fn local_limbo_bytes(&self) -> usize {
        self.bag.bytes()
    }

    fn telemetry_op_begin(&mut self) -> Option<Instant> {
        self.tele.op_begin()
    }

    fn telemetry_op_end(&mut self, started: Instant) {
        self.tele.op_end(started);
    }
}

impl Drop for LeakyHandle {
    fn drop(&mut self) {
        // Park this thread's retired nodes on the scheme so they are released when
        // the scheme itself goes away — an O(1) chain splice, no allocation.
        let parked_bytes = self.bag.bytes();
        self.scheme.parked.park(&mut self.bag);
        self.scheme
            .governor
            .note_handle_exit(self.budget_stripe, &mut self.budget_reported);
        self.scheme.governor.note_parked(parked_bytes as i64);
    }
}

#[cfg(test)]
// Sanctioned raw-protocol site: these tests exercise the scheme's own
// `protect`/retire interface below the guard layer.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::retire_box;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retire_does_not_free_until_scheme_drop() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Leaky::with_defaults();
        {
            let mut handle = scheme.register();
            handle.begin_op();
            for _ in 0..10 {
                let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
                // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
                unsafe { retire_box(&mut handle, ptr) };
            }
            handle.flush();
            handle.end_op();
            assert_eq!(handle.local_in_limbo(), 10);
            assert_eq!(
                drops.load(Ordering::SeqCst),
                0,
                "leaky must not free while running"
            );
            let snap = scheme.stats();
            assert_eq!(snap.retired, 10);
            assert_eq!(snap.freed, 0);
        }
        // Handle dropped: still nothing freed.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(scheme);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            10,
            "scheme drop releases parked nodes"
        );
    }

    #[test]
    fn protect_and_begin_op_are_no_ops() {
        let scheme = Leaky::with_defaults();
        let mut handle = scheme.register();
        handle.begin_op();
        handle.protect(0, std::ptr::null_mut());
        handle.protect(5, 0x1000 as *mut u8);
        handle.clear_protections();
        handle.end_op();
        assert_eq!(handle.local_in_limbo(), 0);
        assert_eq!(scheme.name(), "none");
    }

    #[test]
    fn multiple_handles_park_independently() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Leaky::with_defaults();
        for _ in 0..3 {
            let mut handle = scheme.register();
            let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
            // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
            unsafe { retire_box(&mut handle, ptr) };
        }
        assert_eq!(scheme.stats().retired, 3);
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }
}
