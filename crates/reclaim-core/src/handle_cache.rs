//! Scheme-level cache of per-handle resources, for thread-pool churn.
//!
//! Handle registration is the one remaining allocation site of the retirement
//! pipeline: a fresh handle builds its [`SegPool`](crate::segbag::SegPool)
//! (pre-warmed to the scan threshold) and its scan scratch buffer (`N·K`
//! pointers). That is fine per *thread lifetime*, but a thread pool that
//! registers and deregisters a handle per task pays it per *task*.
//!
//! [`HandleCache`] closes the gap: a dying handle parks its reusable parts
//! (pool + scratch, bundled in a scheme-chosen `T`) on the scheme, and the next
//! `register` on the same scheme adopts them instead of building fresh ones —
//! so after the first wave of registrations, handle churn is allocation-free.
//! This is the resource-side twin of [`ParkedChain`](crate::segbag::ParkedChain)
//! (which moves the *retired nodes* of dying handles for free): the chain moves
//! the work, the cache moves the workspace.
//!
//! The cache is bounded by the scheme's `max_threads`: more parts than there
//! can ever be simultaneous handles would be dead weight, so excess parks are
//! simply dropped (releasing their segments to the allocator).

use crate::scratch::PtrScratch;
use crate::segbag::SegPool;
use std::fmt;
use std::sync::Mutex;

/// The recyclable resource bundle of the hazard-pointer-family schemes (HP,
/// Cadence, QSense): the segment pool backing the retired bags plus the `N·K`
/// pointer-snapshot scratch. Defined once here so every scheme's cache shares
/// one bundle shape (schemes with different workspaces — e.g. the era
/// reservation scratch of `he` — define their own).
pub struct ScanParts {
    /// Recycled segments for the new owner's bags.
    pub pool: SegPool,
    /// Reusable hazard-pointer snapshot buffer.
    pub scratch: PtrScratch,
}

/// A bounded LIFO cache of per-handle resource bundles (see the module docs).
pub struct HandleCache<T> {
    parts: Mutex<Vec<T>>,
    capacity: usize,
}

impl<T> HandleCache<T> {
    /// Creates a cache holding at most `capacity` parked bundles (the scheme's
    /// `max_threads` is the natural choice). The backing storage is allocated
    /// up front so that `park` itself never touches the allocator — parking
    /// happens on the handle-drop path, which the zero-alloc contract covers.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            parts: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
        }
    }

    /// Parks a dying handle's resource bundle for the next registrant. Bundles
    /// beyond the capacity are dropped (their resources are released normally).
    pub fn park(&self, bundle: T) {
        let mut parts = self.parts.lock().unwrap_or_else(|e| e.into_inner());
        if parts.len() < self.capacity {
            parts.push(bundle);
        }
    }

    /// Takes the most recently parked bundle, if any. LIFO keeps the hottest
    /// (most recently touched) segments and buffers in circulation.
    pub fn adopt(&self) -> Option<T> {
        self.parts.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    /// Number of bundles currently parked (diagnostics/tests).
    pub fn parked(&self) -> usize {
        self.parts.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl<T> fmt::Debug for HandleCache<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandleCache")
            .field("parked", &self.parked())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn park_adopt_is_lifo_within_capacity() {
        let cache = HandleCache::with_capacity(2);
        assert!(cache.adopt().is_none());
        cache.park(1);
        cache.park(2);
        cache.park(3); // over capacity: dropped
        assert_eq!(cache.parked(), 2);
        assert_eq!(cache.adopt(), Some(2));
        assert_eq!(cache.adopt(), Some(1));
        assert!(cache.adopt().is_none());
    }

    #[test]
    fn dropped_over_capacity_bundles_release_their_resources() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cache = HandleCache::with_capacity(1);
        cache.park(Tracked(Arc::clone(&drops)));
        cache.park(Tracked(Arc::clone(&drops)));
        assert_eq!(drops.load(Ordering::SeqCst), 1, "excess park drops eagerly");
        drop(cache.adopt());
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }
}
