//! Time sources for deferred reclamation.
//!
//! Cadence (§5.1 of the paper) timestamps every retired node and only frees nodes that
//! are "old enough": older than the rooster sleep interval `T` plus a tolerance `ε`.
//! The paper reads the system clock; this module wraps that behind [`Clock`] so that
//!
//! * production code uses a monotonic real-time clock ([`Clock::real`]), and
//! * tests drive a [`ManualClock`] by hand, making the aging logic — and the QSense
//!   path-switching protocol built on top of it — fully deterministic.
//!
//! Timestamps are plain `u64` nanoseconds ([`Nanos`]) since an arbitrary origin
//! (scheme creation for the real clock, zero for manual clocks).
//!
//! The module also holds the *logical* clock of the era/interval-based schemes:
//! [`EraClock`], a shared monotone counter advanced on allocation batches rather
//! than by wall time (Hazard Eras / 2GE-IBR — the `he` crate). Both clocks solve
//! the same problem (ordering retirements against reader activity) with opposite
//! trade-offs: real time needs no shared writes but ties reclamation latency to
//! `T + ε`; eras need an occasional shared `fetch_add` but make the "old enough"
//! decision exact.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A timestamp or duration in nanoseconds.
pub type Nanos = u64;

/// A monotonic nanosecond clock, either real or manually driven.
///
/// Cloning is cheap; clones share the same underlying time source.
#[derive(Clone, Debug)]
pub struct Clock {
    source: Source,
}

#[derive(Clone, Debug)]
enum Source {
    /// Monotonic wall clock, measured from `origin`.
    Real { origin: Instant },
    /// Test clock advanced explicitly via [`ManualClock::advance`].
    Manual(ManualClock),
}

impl Clock {
    /// A real, monotonic clock starting at zero now.
    pub fn real() -> Self {
        Self {
            source: Source::Real {
                origin: Instant::now(),
            },
        }
    }

    /// A clock backed by the given manual source (for tests).
    pub fn manual(manual: ManualClock) -> Self {
        Self {
            source: Source::Manual(manual),
        }
    }

    /// Current time in nanoseconds since this clock's origin.
    pub fn now(&self) -> Nanos {
        match &self.source {
            Source::Real { origin } => {
                let elapsed = origin.elapsed();
                // Saturate rather than overflow: ~584 years of nanoseconds fit in u64,
                // so this is purely defensive.
                elapsed.as_nanos().min(u128::from(u64::MAX)) as u64
            }
            Source::Manual(manual) => manual.now(),
        }
    }

    /// True if this clock is manually driven (used by rooster threads to decide
    /// whether to sleep for real or to wait for manual ticks).
    pub fn is_manual(&self) -> bool {
        matches!(self.source, Source::Manual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::real()
    }
}

/// A shared, manually advanced time source for deterministic tests.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current manual time.
    pub fn now(&self) -> Nanos {
        self.nanos.load(Ordering::Acquire)
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        let delta = delta.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.nanos.fetch_add(delta, Ordering::AcqRel);
    }

    /// Sets the clock to an absolute value. Panics if this would move time backwards,
    /// since every consumer assumes monotonicity.
    pub fn set(&self, now: Nanos) {
        let prev = self.nanos.swap(now, Ordering::AcqRel);
        assert!(prev <= now, "ManualClock must not move backwards");
    }
}

/// Converts a [`Duration`] to [`Nanos`], saturating on overflow.
pub fn duration_to_nanos(d: Duration) -> Nanos {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// An era value: a tick of the global logical clock used by interval-based
/// reclamation (Hazard Eras / 2GE-IBR).
pub type Era = u64;

/// Era `0` never occurs as a reading of a live [`EraClock`] (the clock starts at
/// 1), so it is free to mean "before every era": nodes whose birth was never
/// stamped carry [`NO_BIRTH_ERA`] and are treated maximally conservatively by
/// the interval overlap check.
pub const NO_BIRTH_ERA: Era = 0;

/// The global era counter of the interval-based schemes.
///
/// A single cache-padded monotone `u64`, read on every allocation / retirement
/// of an era scheme and advanced once per allocation batch (see
/// `SmrConfig::era_advance_interval`) plus once per scan. Reads are acquire and
/// the advance is AcqRel so that observing era `e` also observes everything the
/// advancer did before publishing `e` — the same pairing `GlobalEpoch` uses.
#[derive(Debug)]
pub struct EraClock {
    era: CachePadded<AtomicU64>,
}

impl EraClock {
    /// Creates a clock at era 1 (era 0 is reserved, see [`NO_BIRTH_ERA`]).
    pub fn new() -> Self {
        Self {
            era: CachePadded::new(AtomicU64::new(1)),
        }
    }

    /// The current era.
    #[inline]
    pub fn current(&self) -> Era {
        self.era.load(Ordering::Acquire)
    }

    /// Advances the era by one, returning the value *before* the advance.
    /// Unconditional (unlike `GlobalEpoch::try_advance`): era safety never
    /// depends on readers having caught up, only on the free-time interval
    /// overlap check, so concurrent advances merely skip numbers.
    #[inline]
    pub fn advance(&self) -> Era {
        self.era.fetch_add(1, Ordering::AcqRel)
    }
}

impl Default for EraClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn real_clock_is_monotonic() {
        let clock = Clock::real();
        let a = clock.now();
        thread::sleep(Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a, "expected time to advance: {a} -> {b}");
        assert!(!clock.is_manual());
    }

    #[test]
    fn manual_clock_advances_only_on_demand() {
        let manual = ManualClock::new();
        let clock = Clock::manual(manual.clone());
        assert_eq!(clock.now(), 0);
        manual.advance(Duration::from_micros(5));
        assert_eq!(clock.now(), 5_000);
        manual.advance(Duration::from_nanos(1));
        assert_eq!(clock.now(), 5_001);
        assert!(clock.is_manual());
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let manual = ManualClock::new();
        let other = manual.clone();
        manual.advance(Duration::from_secs(1));
        assert_eq!(other.now(), 1_000_000_000);
    }

    #[test]
    fn manual_set_accepts_equal_time() {
        let manual = ManualClock::new();
        manual.set(10);
        manual.set(10);
        assert_eq!(manual.now(), 10);
    }

    #[test]
    #[should_panic(expected = "must not move backwards")]
    fn manual_set_rejects_backwards_jump() {
        let manual = ManualClock::new();
        manual.set(10);
        manual.set(9);
    }

    #[test]
    fn duration_conversion() {
        assert_eq!(duration_to_nanos(Duration::from_millis(3)), 3_000_000);
        assert_eq!(duration_to_nanos(Duration::ZERO), 0);
    }

    #[test]
    fn era_clock_starts_past_the_reserved_era_and_advances() {
        let clock = EraClock::new();
        assert!(clock.current() > NO_BIRTH_ERA, "era 0 is reserved");
        assert_eq!(clock.current(), 1);
        assert_eq!(clock.advance(), 1, "advance returns the pre-advance era");
        assert_eq!(clock.current(), 2);
    }

    #[test]
    fn concurrent_era_advances_all_land() {
        let clock = Arc::new(EraClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let clock = Arc::clone(&clock);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        clock.advance();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.current(), 1 + 4 * 1_000);
    }
}
