//! Time sources for deferred reclamation.
//!
//! Cadence (§5.1 of the paper) timestamps every retired node and only frees nodes that
//! are "old enough": older than the rooster sleep interval `T` plus a tolerance `ε`.
//! The paper reads the system clock; this module wraps that behind [`Clock`] so that
//!
//! * production code uses a monotonic real-time clock ([`Clock::real`]), and
//! * tests drive a [`ManualClock`] by hand, making the aging logic — and the QSense
//!   path-switching protocol built on top of it — fully deterministic.
//!
//! Timestamps are plain `u64` nanoseconds ([`Nanos`]) since an arbitrary origin
//! (scheme creation for the real clock, zero for manual clocks).
//!
//! The module also holds the *logical* clock of the era/interval-based schemes:
//! [`EraClock`], a shared monotone counter advanced on allocation batches rather
//! than by wall time (Hazard Eras / 2GE-IBR — the `he` crate). Both clocks solve
//! the same problem (ordering retirements against reader activity) with opposite
//! trade-offs: real time needs no shared writes but ties reclamation latency to
//! `T + ε`; eras need an occasional shared `fetch_add` but make the "old enough"
//! decision exact.
//!
//! *When* the era ticks is a policy, not a constant: [`EraPacer`] co-locates
//! the clock with an [`EraAdvancePolicy`] that either fixes the
//! allocations-per-tick interval (the classic `epoch_freq` cadence) or adapts
//! it to a striped scheme-wide limbo estimate — faster ticks while garbage
//! accumulates behind a stalled reader, decaying to an idle floor when scans
//! run dry (the DEBRA/Hyaline observation that advancement should follow
//! *reclamation pressure*, not allocation count).

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A timestamp or duration in nanoseconds.
pub type Nanos = u64;

/// A monotonic nanosecond clock, either real or manually driven.
///
/// Cloning is cheap; clones share the same underlying time source.
#[derive(Clone, Debug)]
pub struct Clock {
    source: Source,
}

#[derive(Clone, Debug)]
enum Source {
    /// Monotonic wall clock, measured from `origin`.
    Real { origin: Instant },
    /// Test clock advanced explicitly via [`ManualClock::advance`].
    Manual(ManualClock),
}

impl Clock {
    /// A real, monotonic clock starting at zero now.
    pub fn real() -> Self {
        Self {
            source: Source::Real {
                origin: Instant::now(),
            },
        }
    }

    /// A clock backed by the given manual source (for tests).
    pub fn manual(manual: ManualClock) -> Self {
        Self {
            source: Source::Manual(manual),
        }
    }

    /// Current time in nanoseconds since this clock's origin.
    pub fn now(&self) -> Nanos {
        match &self.source {
            Source::Real { origin } => {
                let elapsed = origin.elapsed();
                // Saturate rather than overflow: ~584 years of nanoseconds fit in u64,
                // so this is purely defensive.
                elapsed.as_nanos().min(u128::from(u64::MAX)) as u64
            }
            Source::Manual(manual) => manual.now(),
        }
    }

    /// True if this clock is manually driven (used by rooster threads to decide
    /// whether to sleep for real or to wait for manual ticks).
    pub fn is_manual(&self) -> bool {
        matches!(self.source, Source::Manual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::real()
    }
}

/// A shared, manually advanced time source for deterministic tests.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current manual time.
    pub fn now(&self) -> Nanos {
        self.nanos.load(Ordering::Acquire)
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        let delta = delta.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.nanos.fetch_add(delta, Ordering::AcqRel);
    }

    /// Sets the clock to an absolute value. Panics if this would move time backwards,
    /// since every consumer assumes monotonicity.
    pub fn set(&self, now: Nanos) {
        let prev = self.nanos.swap(now, Ordering::AcqRel);
        assert!(prev <= now, "ManualClock must not move backwards");
    }
}

/// Converts a [`Duration`] to [`Nanos`], saturating on overflow.
pub fn duration_to_nanos(d: Duration) -> Nanos {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// An era value: a tick of the global logical clock used by interval-based
/// reclamation (Hazard Eras / 2GE-IBR).
pub type Era = u64;

/// Era `0` never occurs as a reading of a live [`EraClock`] (the clock starts at
/// 1), so it is free to mean "before every era": nodes whose birth was never
/// stamped carry [`NO_BIRTH_ERA`] and are treated maximally conservatively by
/// the interval overlap check.
pub const NO_BIRTH_ERA: Era = 0;

/// The global era counter of the interval-based schemes.
///
/// A single cache-padded monotone `u64`, read on every allocation / retirement
/// of an era scheme and advanced once per allocation batch (the interval the
/// scheme's [`EraPacer`] currently dictates) plus once per scan. Reads are
/// acquire and
/// the advance is AcqRel so that observing era `e` also observes everything the
/// advancer did before publishing `e` — the same pairing `GlobalEpoch` uses.
#[derive(Debug)]
pub struct EraClock {
    era: CachePadded<AtomicU64>,
}

impl EraClock {
    /// Creates a clock at era 1 (era 0 is reserved, see [`NO_BIRTH_ERA`]).
    pub fn new() -> Self {
        Self {
            era: CachePadded::new(AtomicU64::new(1)),
        }
    }

    /// The current era.
    #[inline]
    pub fn current(&self) -> Era {
        self.era.load(Ordering::Acquire)
    }

    /// Advances the era by one, returning the value *before* the advance.
    /// Unconditional (unlike `GlobalEpoch::try_advance`): era safety never
    /// depends on readers having caught up, only on the free-time interval
    /// overlap check, so concurrent advances merely skip numbers.
    #[inline]
    pub fn advance(&self) -> Era {
        self.era.fetch_add(1, Ordering::AcqRel)
    }
}

impl Default for EraClock {
    fn default() -> Self {
        Self::new()
    }
}

/// How the era schemes pace advances of the global [`EraClock`] relative to
/// allocation and reclamation activity (see [`EraPacer`]).
///
/// The interval is the number of node allocations between era ticks. A smaller
/// interval bounds the garbage a stalled reader pins more tightly — fewer nodes
/// share its announced era — at the cost of more shared `fetch_add` traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EraAdvancePolicy {
    /// Advance once per a fixed number of allocations (plus once per scan):
    /// the original Hazard-Eras / IBR `epoch_freq` cadence. The garbage a
    /// stalled reader pins is bounded only as tightly as this constant.
    Static(usize),
    /// Advance on a variable interval driven by the scheme-wide limbo
    /// estimate: each scan reports its handle's in-limbo delta into a striped
    /// aggregate, and the interval adapts AIMD-style — it *halves* (down to
    /// `min_interval`) while the estimate sits above `limbo_low_water`, and
    /// creeps back up by `min_interval` per dry scan (up to `max_interval`,
    /// the idle floor). The asymmetry reacts to a stall within one scan but
    /// does not forget it within one quiet episode. Stalled-reader garbage is
    /// then bounded by *work retired*, not by an allocation count: the more
    /// limbo accumulates, the faster fresh allocations age past any stalled
    /// reservation.
    Adaptive {
        /// Fastest tick: era advances at least every `min_interval` allocations
        /// under limbo pressure.
        min_interval: usize,
        /// Idle floor: with no limbo pressure the interval decays up to this,
        /// bounding steady-state shared `fetch_add` traffic.
        max_interval: usize,
        /// Scheme-wide in-limbo node count above which the pacer speeds up.
        limbo_low_water: usize,
    },
}

/// The allocation count of the default static cadence (the IBR literature's
/// `epoch_freq` ballpark).
pub const DEFAULT_ERA_ADVANCE_INTERVAL: usize = 64;

impl EraAdvancePolicy {
    /// The adaptive policy with default bounds: ticks between every 8 and
    /// every 512 allocations, speeding up once more than 1024 nodes sit in
    /// limbo scheme-wide.
    pub fn adaptive() -> Self {
        EraAdvancePolicy::Adaptive {
            min_interval: 8,
            max_interval: 512,
            limbo_low_water: 1024,
        }
    }

    /// Panics unless the policy's parameters are coherent (positive intervals,
    /// `min <= max`). Called by [`EraPacer::new`] and the config builder.
    pub fn validate(&self) {
        match *self {
            EraAdvancePolicy::Static(interval) => {
                assert!(interval > 0, "era advance interval must be positive");
            }
            EraAdvancePolicy::Adaptive {
                min_interval,
                max_interval,
                ..
            } => {
                assert!(min_interval > 0, "min_interval must be positive");
                assert!(
                    min_interval <= max_interval,
                    "min_interval must not exceed max_interval"
                );
            }
        }
    }
}

impl Default for EraAdvancePolicy {
    /// The static cadence at [`DEFAULT_ERA_ADVANCE_INTERVAL`] — the behaviour
    /// every pre-policy release shipped.
    fn default() -> Self {
        EraAdvancePolicy::Static(DEFAULT_ERA_ADVANCE_INTERVAL)
    }
}

/// Stripes of the pacer's limbo aggregate. Handles map to a stripe by registry
/// slot, so up to this many concurrent reporters never share a line; beyond it
/// the stripes are shared (contended but still exact).
const LIMBO_STRIPES: usize = 8;

/// The era clock plus the policy state that decides *when* it ticks.
///
/// [`EraClock`] answers "what era is it"; `EraPacer` co-locates the answer to
/// "how often should allocations move it forward". Under the
/// [`Static`](EraAdvancePolicy::Static) policy it is a constant; under the
/// [`Adaptive`](EraAdvancePolicy::Adaptive) policy the interval tracks a
/// scheme-wide limbo estimate fed by per-scan reports.
///
/// ## Invariants
///
/// * The tick interval always stays inside the policy's `[min_interval,
///   max_interval]` range (a static policy's range is a single point).
/// * The limbo estimate is **advisory**: it only modulates reclamation
///   *latency*, never the free-time safety condition, so torn reads, racing
///   interval stores and transiently negative stripes are all harmless.
/// * The estimate is conserved across handle churn: a scan reports the delta
///   since the handle's previous report; a dying handle retracts its whole
///   contribution ([`note_handle_exit`](Self::note_handle_exit)) and moves
///   the parked leftovers to the dedicated parked counter
///   ([`note_parked`](Self::note_parked)), which the adopting handle debits
///   when it splices the chain back in (the nodes then re-enter its own
///   reports). Parked nodes are never double counted — and never invisible:
///   limbo sitting in the scheme's parking lot keeps pressing on the
///   interval even if no surviving handle flushes for a long time.
/// * Nothing here allocates after construction: the stripes are a fixed
///   inline array and every report is one `fetch_add` to a cache-padded line.
#[derive(Debug)]
pub struct EraPacer {
    clock: EraClock,
    policy: EraAdvancePolicy,
    /// Current allocations-per-tick interval (read on every `alloc_node`;
    /// written only by scans, and only under the adaptive policy).
    interval: CachePadded<AtomicUsize>,
    /// Striped scheme-wide in-limbo estimate. Signed: deltas may transiently
    /// drive an individual stripe negative (reporter and retractor on
    /// different stripes is impossible — a handle always uses its own — but a
    /// stripe shared by two handles can interleave below zero).
    limbo: [CachePadded<AtomicI64>; LIMBO_STRIPES],
    /// Nodes currently sitting in the scheme's parking lot (dying handles'
    /// leftovers awaiting adoption). Folded into the estimate so parked limbo
    /// keeps pressing on the interval even while no handle has adopted it.
    parked: CachePadded<AtomicI64>,
    /// When non-zero, replaces the adaptive policy's `limbo_low_water`. This
    /// is how the HE scheme re-denominates the pacer in **bytes** under a
    /// limbo budget: the scheme feeds byte totals (instead of node counts)
    /// into `note_scan`/`note_parked` and sets the low-water mark to a byte
    /// threshold derived from the budget. The estimate's *unit* is whatever
    /// the reporters feed it — the pacer only compares it against this mark.
    low_water_override: CachePadded<AtomicUsize>,
}

impl EraPacer {
    /// Creates a pacer at era 1. The adaptive policy starts at `min_interval`
    /// (the robust end): a fresh scheme cannot know whether a reader is about
    /// to stall, and the idle decay recovers the cheap cadence within a few
    /// dry scans.
    pub fn new(policy: EraAdvancePolicy) -> Self {
        policy.validate();
        let start = match policy {
            EraAdvancePolicy::Static(interval) => interval,
            EraAdvancePolicy::Adaptive { min_interval, .. } => min_interval,
        };
        Self {
            clock: EraClock::new(),
            policy,
            interval: CachePadded::new(AtomicUsize::new(start)),
            limbo: std::array::from_fn(|_| CachePadded::new(AtomicI64::new(0))),
            parked: CachePadded::new(AtomicI64::new(0)),
            low_water_override: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Replaces the adaptive policy's `limbo_low_water` with `mark` (0 clears
    /// the override). Set once at scheme construction when a limbo budget
    /// re-denominates the pacer in bytes; see the field docs. No effect under
    /// the static policy.
    pub fn set_limbo_low_water(&self, mark: usize) {
        self.low_water_override.store(mark, Ordering::Relaxed);
    }

    /// The policy this pacer runs.
    pub fn policy(&self) -> EraAdvancePolicy {
        self.policy
    }

    /// The current era (delegates to the inner [`EraClock`]).
    #[inline]
    pub fn current(&self) -> Era {
        self.clock.current()
    }

    /// Advances the era by one (delegates to the inner [`EraClock`]).
    #[inline]
    pub fn advance(&self) -> Era {
        self.clock.advance()
    }

    /// The current allocations-per-tick interval. One relaxed load of a
    /// read-mostly padded line — the only pacer cost on the allocation path.
    #[inline]
    pub fn current_interval(&self) -> usize {
        self.interval.load(Ordering::Relaxed)
    }

    /// Maps a registry slot to the limbo stripe its handle reports into.
    pub fn stripe_for(slot_index: usize) -> usize {
        slot_index % LIMBO_STRIPES
    }

    /// The scheme-wide in-limbo estimate (sum of the stripes, clamped at 0).
    /// O(`LIMBO_STRIPES`) relaxed loads; diagnostics and scan-time adaptation
    /// only, never on a per-op path.
    pub fn limbo_estimate(&self) -> usize {
        let total: i64 = self
            .limbo
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .sum::<i64>()
            + self.parked.load(Ordering::Relaxed);
        total.max(0) as usize
    }

    /// Accounts nodes entering (`delta > 0`, handle drop parks leftovers) or
    /// leaving (`delta < 0`, a flush adopts the chain) the scheme's parking
    /// lot. Adopted nodes re-enter the adopter's own scan reports, so the
    /// hand-off conserves the estimate. No-op under the static policy.
    pub fn note_parked(&self, delta: i64) {
        if !matches!(self.policy, EraAdvancePolicy::Adaptive { .. }) {
            return;
        }
        if delta != 0 {
            self.parked.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Scan-time hook: reports the delta between the handle's current in-limbo
    /// count and its last report into the handle's stripe, then adapts the
    /// tick interval. `last_reported` is the handle-owned cursor this pacer
    /// maintains. No-op under the static policy.
    ///
    /// Returns `true` when this call *sped the pacer up* (halved the
    /// interval under limbo pressure) — the signal the budget subsystem
    /// counts as a pacer boost when the pacer runs byte-denominated.
    pub fn note_scan(&self, stripe: usize, in_limbo_now: usize, last_reported: &mut usize) -> bool {
        let EraAdvancePolicy::Adaptive {
            min_interval,
            max_interval,
            limbo_low_water,
        } = self.policy
        else {
            return false;
        };
        let delta = in_limbo_now as i64 - *last_reported as i64;
        if delta != 0 {
            self.limbo[stripe % LIMBO_STRIPES].fetch_add(delta, Ordering::Relaxed);
            *last_reported = in_limbo_now;
        }
        let low_water = match self.low_water_override.load(Ordering::Relaxed) {
            0 => limbo_low_water,
            mark => mark,
        };
        let estimate = self.limbo_estimate();
        let current = self.interval.load(Ordering::Relaxed);
        let next = if estimate > low_water {
            // Pressure: halve toward the fast end so fresh allocations age
            // past any stalled reservation sooner.
            (current / 2).max(min_interval)
        } else {
            // Dry: creep toward the idle floor so a quiet scheme stops paying
            // shared fetch_add traffic for robustness it does not need. The
            // increase is additive (AIMD) so one quiet episode cannot undo
            // the speed-up a stall earned — re-inflating multiplicatively let
            // the next stall pin a full idle-interval's worth again.
            current.saturating_add(min_interval).min(max_interval)
        };
        if next != current {
            // A racing store from a concurrent scan is fine: both values are
            // inside [min, max] and the estimate re-converges next scan.
            self.interval.store(next, Ordering::Relaxed);
        }
        next < current
    }

    /// Retracts a dying handle's entire limbo contribution before its
    /// leftovers are parked, so the adopting handle's next scan can re-report
    /// them without double counting. No-op under the static policy.
    pub fn note_handle_exit(&self, stripe: usize, last_reported: &mut usize) {
        if !matches!(self.policy, EraAdvancePolicy::Adaptive { .. }) {
            return;
        }
        if *last_reported != 0 {
            self.limbo[stripe % LIMBO_STRIPES].fetch_sub(*last_reported as i64, Ordering::Relaxed);
            *last_reported = 0;
        }
    }
}

impl Default for EraPacer {
    fn default() -> Self {
        Self::new(EraAdvancePolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn real_clock_is_monotonic() {
        let clock = Clock::real();
        let a = clock.now();
        thread::sleep(Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a, "expected time to advance: {a} -> {b}");
        assert!(!clock.is_manual());
    }

    #[test]
    fn manual_clock_advances_only_on_demand() {
        let manual = ManualClock::new();
        let clock = Clock::manual(manual.clone());
        assert_eq!(clock.now(), 0);
        manual.advance(Duration::from_micros(5));
        assert_eq!(clock.now(), 5_000);
        manual.advance(Duration::from_nanos(1));
        assert_eq!(clock.now(), 5_001);
        assert!(clock.is_manual());
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let manual = ManualClock::new();
        let other = manual.clone();
        manual.advance(Duration::from_secs(1));
        assert_eq!(other.now(), 1_000_000_000);
    }

    #[test]
    fn manual_set_accepts_equal_time() {
        let manual = ManualClock::new();
        manual.set(10);
        manual.set(10);
        assert_eq!(manual.now(), 10);
    }

    #[test]
    #[should_panic(expected = "must not move backwards")]
    fn manual_set_rejects_backwards_jump() {
        let manual = ManualClock::new();
        manual.set(10);
        manual.set(9);
    }

    #[test]
    fn duration_conversion() {
        assert_eq!(duration_to_nanos(Duration::from_millis(3)), 3_000_000);
        assert_eq!(duration_to_nanos(Duration::ZERO), 0);
    }

    #[test]
    fn era_clock_starts_past_the_reserved_era_and_advances() {
        let clock = EraClock::new();
        assert!(clock.current() > NO_BIRTH_ERA, "era 0 is reserved");
        assert_eq!(clock.current(), 1);
        assert_eq!(clock.advance(), 1, "advance returns the pre-advance era");
        assert_eq!(clock.current(), 2);
    }

    #[test]
    fn static_pacer_keeps_a_constant_interval_and_ignores_reports() {
        let pacer = EraPacer::new(EraAdvancePolicy::Static(32));
        assert_eq!(pacer.current_interval(), 32);
        let mut cursor = 0usize;
        pacer.note_scan(0, 10_000, &mut cursor);
        assert_eq!(cursor, 0, "static policy must not track reports");
        assert_eq!(pacer.current_interval(), 32);
        assert_eq!(pacer.limbo_estimate(), 0);
        pacer.note_handle_exit(0, &mut cursor);
        pacer.note_parked(123);
        assert_eq!(pacer.limbo_estimate(), 0, "parked is a no-op when static");
        assert_eq!(pacer.current_interval(), 32);
        assert_eq!(pacer.current(), 1);
        pacer.advance();
        assert_eq!(pacer.current(), 2, "clock delegation works");
    }

    #[test]
    fn adaptive_pacer_speeds_up_under_pressure_and_decays_when_dry() {
        let policy = EraAdvancePolicy::Adaptive {
            min_interval: 4,
            max_interval: 64,
            limbo_low_water: 100,
        };
        let pacer = EraPacer::new(policy);
        assert_eq!(
            pacer.current_interval(),
            4,
            "adaptive starts at the robust (fast) end"
        );
        let mut cursor = 0usize;
        // Dry scans creep toward the idle floor (+min per scan), never past it.
        for scans in 1..=15 {
            pacer.note_scan(0, 0, &mut cursor);
            assert_eq!(pacer.current_interval(), (4 + 4 * scans).min(64));
        }
        assert_eq!(pacer.current_interval(), 64, "idle floor reached");
        pacer.note_scan(0, 0, &mut cursor);
        assert_eq!(pacer.current_interval(), 64, "never past the floor");
        // Limbo past the low-water mark halves the interval down to the
        // minimum and no further.
        pacer.note_scan(0, 500, &mut cursor);
        assert_eq!(cursor, 500);
        assert_eq!(pacer.limbo_estimate(), 500);
        assert_eq!(pacer.current_interval(), 32);
        for _ in 0..10 {
            pacer.note_scan(0, 500, &mut cursor);
        }
        assert_eq!(pacer.current_interval(), 4, "clamped at min_interval");
        // Draining the limbo lets the interval creep up again (additively:
        // one quiet scan must not undo the speed-up the stall earned).
        pacer.note_scan(0, 0, &mut cursor);
        assert_eq!(pacer.limbo_estimate(), 0);
        assert_eq!(pacer.current_interval(), 8);
    }

    #[test]
    fn low_water_override_redenominates_the_pacer() {
        let pacer = EraPacer::new(EraAdvancePolicy::Adaptive {
            min_interval: 4,
            max_interval: 64,
            limbo_low_water: 1_000_000,
        });
        let mut cursor = 0usize;
        for _ in 0..15 {
            pacer.note_scan(0, 0, &mut cursor);
        }
        assert_eq!(pacer.current_interval(), 64, "idle floor reached");
        // 500 units sit far below the node-denominated policy mark: dry.
        assert!(!pacer.note_scan(0, 500, &mut cursor));
        assert_eq!(pacer.current_interval(), 64);
        // Re-denominate: the same 500 now reads as bytes against a 256-byte
        // mark, so the pacer speeds up and says so.
        pacer.set_limbo_low_water(256);
        assert!(
            pacer.note_scan(0, 500, &mut cursor),
            "speed-up must be signalled"
        );
        assert_eq!(pacer.current_interval(), 32);
        // Clearing the override restores the policy mark.
        pacer.set_limbo_low_water(0);
        assert!(!pacer.note_scan(0, 500, &mut cursor));
        assert_eq!(pacer.current_interval(), 36, "dry creep resumed");
    }

    #[test]
    fn adaptive_reports_are_deltas_and_handle_exit_retracts_them() {
        let policy = EraAdvancePolicy::Adaptive {
            min_interval: 4,
            max_interval: 64,
            limbo_low_water: 100,
        };
        let pacer = EraPacer::new(policy);
        let mut a = 0usize;
        let mut b = 0usize;
        pacer.note_scan(0, 300, &mut a);
        pacer.note_scan(1, 200, &mut b);
        assert_eq!(pacer.limbo_estimate(), 500);
        // A shrinking handle count reports a negative delta.
        pacer.note_scan(0, 50, &mut a);
        assert_eq!(pacer.limbo_estimate(), 250);
        // Handle exit retracts the whole remaining contribution (the parked
        // leftovers are re-reported by whichever handle adopts them).
        pacer.note_handle_exit(0, &mut a);
        assert_eq!(a, 0);
        assert_eq!(pacer.limbo_estimate(), 200);
        pacer.note_handle_exit(1, &mut b);
        assert_eq!(pacer.limbo_estimate(), 0);
    }

    #[test]
    fn parked_nodes_stay_visible_to_the_estimate_until_adopted() {
        let policy = EraAdvancePolicy::Adaptive {
            min_interval: 4,
            max_interval: 64,
            limbo_low_water: 100,
        };
        let pacer = EraPacer::new(policy);
        let mut cursor = 0usize;
        pacer.note_scan(0, 300, &mut cursor);
        // Handle exit: the contribution moves from the handle's stripe to the
        // parked counter — the estimate must not dip while the leftovers sit
        // in the parking lot with no live reporter.
        pacer.note_handle_exit(0, &mut cursor);
        pacer.note_parked(300);
        assert_eq!(
            pacer.limbo_estimate(),
            300,
            "parked limbo keeps pressing on the estimate"
        );
        // Adoption debits the parked counter; the adopter's own report takes
        // over — net conservation across the hand-off.
        pacer.note_parked(-300);
        let mut adopter = 0usize;
        pacer.note_scan(1, 300, &mut adopter);
        assert_eq!(pacer.limbo_estimate(), 300);
    }

    #[test]
    fn pacer_interval_stays_inside_policy_bounds_under_concurrent_scans() {
        let policy = EraAdvancePolicy::Adaptive {
            min_interval: 2,
            max_interval: 128,
            limbo_low_water: 10,
        };
        let pacer = Arc::new(EraPacer::new(policy));
        let handles: Vec<_> = (0..4)
            .map(|stripe| {
                let pacer = Arc::clone(&pacer);
                thread::spawn(move || {
                    let mut cursor = 0usize;
                    for round in 0..1_000usize {
                        let limbo = if round % 2 == 0 { 100 } else { 0 };
                        pacer.note_scan(stripe, limbo, &mut cursor);
                        let interval = pacer.current_interval();
                        assert!((2..=128).contains(&interval), "interval {interval}");
                    }
                    pacer.note_handle_exit(stripe, &mut cursor);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            pacer.limbo_estimate(),
            0,
            "every contribution was retracted"
        );
    }

    #[test]
    fn default_policy_is_the_compatible_static_cadence() {
        assert_eq!(
            EraAdvancePolicy::default(),
            EraAdvancePolicy::Static(DEFAULT_ERA_ADVANCE_INTERVAL)
        );
        EraAdvancePolicy::adaptive().validate();
    }

    #[test]
    #[should_panic(expected = "min_interval must not exceed max_interval")]
    fn inverted_adaptive_bounds_are_rejected() {
        EraPacer::new(EraAdvancePolicy::Adaptive {
            min_interval: 64,
            max_interval: 8,
            limbo_low_water: 0,
        });
    }

    #[test]
    fn concurrent_era_advances_all_land() {
        let clock = Arc::new(EraClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let clock = Arc::clone(&clock);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        clock.advance();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.current(), 1 + 4 * 1_000);
    }
}
