//! Shadow-heap reclamation oracle (`feature = "check-oracle"`, test-only).
//!
//! A use-after-free caused by a reservation-coverage bug is normally *silent*:
//! the freed node's memory is reused, a traversal reads a garbage link, and the
//! failure (if any) surfaces far from the cause. This module shadows every node
//! that flows through the reclamation substrate in an address-keyed state
//! machine and turns each protocol violation into an immediate panic naming the
//! node, its state, and the context (scheme / schedule) the caller registered:
//!
//! ```text
//!           register (Owned::new / Node::alloc)
//!                │
//!                ▼          on_retire (RetiredPtr::with_birth_sized)
//!             ┌──────┐             ┌─────────┐  on_free  ┌───────┐
//!             │ Live │ ───────────▶│ Retired │──────────▶│ Freed │
//!             └──────┘             └─────────┘ (reclaim) └───────┘
//!                │ deregister           │ again: double-retire ✗   │ again: double-free ✗
//!                ▼                      │                          │ protect/deref: UAF ✗
//!             (removed)                 └ free without retire ✗    │ retire: retire-after-free ✗
//! ```
//!
//! Checkpoints: every validated [`crate::Guard::load_protected`] /
//! [`crate::Guard::protect_word`] success and every [`crate::Shared`] /
//! [`crate::Unlinked`] dereference calls [`check_protected`]; a `Freed` verdict
//! panics on the spot — at the exact instruction that would have touched freed
//! memory — instead of letting the heap corrupt.
//!
//! **Quarantine.** With real deallocation the allocator can hand a freed
//! address straight back to the next `Owned::new`, which would mask a UAF as a
//! fresh registration. [`QuarantineGuard`] (used by `reclaim-check`'s schedule
//! explorer) makes [`on_free`] *skip* the destructor and leak the allocation
//! instead: the node's header is overwritten with [`CANARY`] and the address
//! can never be reused, so a later dereference is always caught and the canary
//! check distinguishes "freed and poisoned" from wild pointers. Quarantine
//! defaults **off** so destructor-counting unit tests keep their semantics.
//!
//! Nodes allocated outside the guard layer (raw test Boxes retired through
//! `SmrHandle::retire`) enter the table at retire time with `registered =
//! false` and are dropped from the table at free: the oracle never
//! false-positives on allocator address reuse it cannot see, at the cost of not
//! catching UAFs on nodes it never saw allocated.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Poison pattern written over the first 8 bytes of a node freed while
/// quarantine is active. A dereference checkpoint that finds the shadow entry
/// `Freed` reads the header back: `canary intact` in the panic message means
/// the stale pointer genuinely reached reclaimed memory (as opposed to a
/// corrupted shadow table or a wild pointer).
pub const CANARY: u64 = 0xDEAD_BEEF_5AFE_CA4E;

const SHARDS: usize = 64;

/// Shadow state of one node address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Registered at allocation (or assumed live), not yet retired.
    Live,
    /// Retired to a scheme's limbo; memory still valid.
    Retired,
    /// Reclaimed. Any dereference or protect-validation of this address is a
    /// use-after-free.
    Freed,
}

#[derive(Clone, Copy)]
struct Entry {
    state: NodeState,
    /// True if the oracle saw the allocation ([`register`]); false if the node
    /// first appeared at retire (a raw test allocation).
    registered: bool,
    /// True if the node was freed under quarantine (destructor skipped, header
    /// poisoned, memory leaked — address can never be reused).
    quarantined: bool,
    size: usize,
}

struct Shard {
    map: Mutex<HashMap<usize, Entry>>,
}

fn shards() -> &'static Vec<Shard> {
    static SHARDS_CELL: OnceLock<Vec<Shard>> = OnceLock::new();
    SHARDS_CELL.get_or_init(|| {
        (0..SHARDS)
            .map(|_| Shard {
                map: Mutex::new(HashMap::new()),
            })
            .collect()
    })
}

fn shard_for(addr: usize) -> &'static Shard {
    // Low bits are alignment zeros; fold some higher bits in before indexing.
    &shards()[(addr >> 4) & (SHARDS - 1)]
}

fn context_cell() -> &'static Mutex<String> {
    static CONTEXT: OnceLock<Mutex<String>> = OnceLock::new();
    CONTEXT.get_or_init(|| Mutex::new(String::new()))
}

/// Sets the context string embedded in every oracle panic (scheme name, suite,
/// schedule id). The explorer sets this per schedule so a violation names the
/// exact run that produced it.
pub fn set_context(context: impl Into<String>) {
    *context_cell().lock().unwrap_or_else(|e| e.into_inner()) = context.into();
}

/// Clears the panic context.
pub fn clear_context() {
    set_context(String::new());
}

fn context() -> String {
    let ctx = context_cell().lock().unwrap_or_else(|e| e.into_inner());
    if ctx.is_empty() {
        "<none>".to_string()
    } else {
        ctx.clone()
    }
}

thread_local! {
    /// Quarantine is a property of the *freeing thread*: the explorer enables
    /// it on every model thread (and on its driver thread for teardown frees),
    /// while unrelated tests running in the same process keep real destructor
    /// semantics. A scheme helper thread freeing outside quarantine only
    /// weakens detection (the entry is forgotten at real dealloc) — it can
    /// never produce a false verdict.
    static QUARANTINE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Counters for tests and reports.
static REGISTERED: AtomicU64 = AtomicU64::new(0);
static RETIRED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);
static CHECKS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the oracle's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Allocations registered through the guard layer / structure allocators.
    pub registered: u64,
    /// Retires observed at the `RetiredPtr` choke point.
    pub retired: u64,
    /// Frees observed at `RetiredPtr::reclaim`.
    pub freed: u64,
    /// Protect-validation / dereference checkpoints evaluated.
    pub checks: u64,
}

/// Current counter snapshot.
pub fn stats() -> OracleStats {
    OracleStats {
        registered: REGISTERED.load(Ordering::Relaxed),
        retired: RETIRED.load(Ordering::Relaxed),
        freed: FREED.load(Ordering::Relaxed),
        checks: CHECKS.load(Ordering::Relaxed),
    }
}

/// While alive, [`on_free`] calls *on this thread* skip destructors, poison
/// headers with [`CANARY`] and leak the memory so freed addresses can never be
/// reused (see module docs). Restores the previous mode on drop. `!Send` by
/// construction: quarantine is per-thread state.
pub struct QuarantineGuard {
    was_on: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl QuarantineGuard {
    /// Enables quarantine on the calling thread until the guard drops.
    pub fn enable() -> Self {
        let was_on = QUARANTINE.with(|q| q.replace(true));
        QuarantineGuard {
            was_on,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for QuarantineGuard {
    fn drop(&mut self) {
        let was_on = self.was_on;
        QUARANTINE.with(|q| q.set(was_on));
    }
}

/// Whether quarantine is active on the calling thread.
pub fn quarantine_active() -> bool {
    QUARANTINE.with(|q| q.get())
}

fn oracle_panic(kind: &str, addr: usize, entry: Option<Entry>, detail: &str) -> ! {
    let state = entry.map(|e| format!("{:?}", e.state));
    let registered = entry.map(|e| e.registered);
    panic!(
        "reclaim-check oracle: {kind} — node {addr:#x} (state: {}, registered-at-alloc: {}) {detail} [context: {}]",
        state.as_deref().unwrap_or("<untracked>"),
        registered.map(|r| r.to_string()).as_deref().unwrap_or("-"),
        context(),
    );
}

/// Records an allocation entering the reclamation protocol (`Owned::new`,
/// structure-internal `Node::alloc`). Panics if the shadow table believes the
/// address is still tracked — that means some free path bypassed the oracle (a
/// missing [`deregister`]), not an application bug: entries are removed at real
/// dealloc precisely so allocator reuse can never reach this arm, and
/// quarantined memory is leaked and cannot come back from the allocator.
pub fn register(ptr: *const u8, size: usize) {
    let addr = ptr as usize;
    let mut map = shard_for(addr)
        .map
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = map.get(&addr).copied() {
        drop(map);
        oracle_panic(
            "allocation over a tracked node",
            addr,
            Some(entry),
            "— a free path bypassed the oracle (missing deregister?)",
        );
    }
    map.insert(
        addr,
        Entry {
            state: NodeState::Live,
            registered: true,
            quarantined: false,
            size,
        },
    );
    REGISTERED.fetch_add(1, Ordering::Relaxed);
}

/// Removes an address from the shadow table: the node left the reclamation
/// protocol through a synchronous owned free (`Owned::into_inner`/`Drop`,
/// structure teardown, failed-insert rollback) rather than retire→reclaim.
pub fn deregister(ptr: *const u8) {
    let addr = ptr as usize;
    shard_for(addr)
        .map
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&addr);
}

/// Records a retire (called from `RetiredPtr::with_birth_sized`, the choke
/// point every scheme's `retire` funnels through). Panics on double-retire and
/// retire-after-free.
pub fn on_retire(ptr: *const u8, size: usize) {
    let addr = ptr as usize;
    let mut map = shard_for(addr)
        .map
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    match map.get(&addr).copied() {
        None => {
            // Raw test allocation the oracle never saw: start tracking at retire.
            map.insert(
                addr,
                Entry {
                    state: NodeState::Retired,
                    registered: false,
                    quarantined: false,
                    size,
                },
            );
        }
        Some(entry) => match entry.state {
            NodeState::Live => {
                map.insert(
                    addr,
                    Entry {
                        state: NodeState::Retired,
                        ..entry
                    },
                );
            }
            NodeState::Retired => {
                drop(map);
                oracle_panic(
                    "double retire",
                    addr,
                    Some(entry),
                    "— the node was handed to a scheme's limbo twice",
                );
            }
            NodeState::Freed => {
                drop(map);
                oracle_panic(
                    "retire after free",
                    addr,
                    Some(entry),
                    "— the node was already reclaimed when it was retired again",
                );
            }
        },
    }
    RETIRED.fetch_add(1, Ordering::Relaxed);
}

/// Records a reclamation (called from `RetiredPtr::reclaim`, the single free
/// choke point). Returns `true` if the caller should run the real destructor;
/// `false` when quarantine is active (the oracle poisoned the header and the
/// allocation is leaked so the address can never be reused). Panics on
/// free-without-retire and double-free.
pub fn on_free(ptr: *const u8) -> bool {
    let addr = ptr as usize;
    let quarantine = quarantine_active();
    let mut map = shard_for(addr)
        .map
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let entry = map.get(&addr).copied();
    match entry {
        None => {
            // Every RetiredPtr construction funnels through on_retire, so an
            // untracked free means the table was cleared out from under us or
            // the pointer was never retired.
            drop(map);
            oracle_panic(
                "free of an untracked node",
                addr,
                None,
                "— RetiredPtr::reclaim ran for a pointer the oracle never saw retired",
            );
        }
        Some(entry) => match entry.state {
            NodeState::Live => {
                drop(map);
                oracle_panic(
                    "free without retire",
                    addr,
                    Some(entry),
                    "— a node still Live in the shadow table reached the free path",
                );
            }
            NodeState::Freed => {
                drop(map);
                oracle_panic(
                    "double free",
                    addr,
                    Some(entry),
                    "— the node's destructor would have run twice",
                );
            }
            NodeState::Retired => {
                FREED.fetch_add(1, Ordering::Relaxed);
                if quarantine && entry.registered {
                    map.insert(
                        addr,
                        Entry {
                            state: NodeState::Freed,
                            quarantined: true,
                            ..entry
                        },
                    );
                } else {
                    // Real dealloc (or a node the oracle never saw allocated):
                    // the allocator may reuse the address for an allocation the
                    // oracle cannot see, so a retained `Freed` entry would turn
                    // reuse into false "retire after free" verdicts. Forget the
                    // address — precise UAF detection is what quarantine is
                    // for (freed addresses then never return to the allocator).
                    map.remove(&addr);
                }
                drop(map);
                if quarantine {
                    if entry.size >= std::mem::size_of::<u64>() {
                        // SAFETY: the node is being freed (sole ownership has
                        // reached the reclaimer) and quarantine skips both the
                        // destructor and the deallocation, so overwriting the
                        // header of this still-allocated, never-again-touched
                        // block is sound.
                        unsafe {
                            (ptr as *mut u8).cast::<u64>().write_unaligned(CANARY);
                        }
                    }
                    return false;
                }
                true
            }
        },
    }
}

/// Reads back the poisoned header of a quarantined node (diagnostics).
fn canary_status(ptr: *const u8, entry: Entry) -> &'static str {
    if !entry.quarantined {
        return "n/a (real dealloc)";
    }
    if entry.size < std::mem::size_of::<u64>() {
        return "n/a (node smaller than canary)";
    }
    // SAFETY: quarantined memory is leaked, so the allocation is still mapped
    // and reading its first 8 bytes is sound.
    let header = unsafe { ptr.cast::<u64>().read_unaligned() };
    if header == CANARY {
        "intact"
    } else {
        "OVERWRITTEN"
    }
}

/// The checkpoint: validates that `ptr` is not `Freed` in the shadow table.
/// Called (feature-gated) from every validated protect and every `Shared` /
/// `Unlinked` dereference; `context` names the checkpoint for the panic
/// message. Untracked, `Live` and `Retired` addresses pass — `Retired` is
/// legal to dereference for any thread whose protection covers the node.
pub fn check_protected(ptr: *const u8, checkpoint: &str) {
    if ptr.is_null() {
        return;
    }
    CHECKS.fetch_add(1, Ordering::Relaxed);
    let addr = ptr as usize;
    let entry = shard_for(addr)
        .map
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&addr)
        .copied();
    if let Some(entry) = entry {
        if entry.state == NodeState::Freed {
            let canary = canary_status(ptr, entry);
            oracle_panic(
                "use after free",
                addr,
                Some(entry),
                &format!("reached checkpoint `{checkpoint}` after reclamation (canary: {canary})"),
            );
        }
    }
}

/// Current shadow state of an address, if tracked (tests and reports).
pub fn state_of(ptr: *const u8) -> Option<NodeState> {
    let addr = ptr as usize;
    shard_for(addr)
        .map
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&addr)
        .map(|e| e.state)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Addresses here are synthetic (never dereferenced without quarantine
    // poisoning, which needs a real allocation — covered by the leaked-Box
    // tests). The shadow table is process-global, so each test uses disjoint
    // fake addresses.

    #[test]
    fn lifecycle_live_retired_freed() {
        let addr = 0x1000_0000 as *const u8;
        register(addr, 64);
        assert_eq!(state_of(addr), Some(NodeState::Live));
        check_protected(addr, "test");
        on_retire(addr, 64);
        assert_eq!(state_of(addr), Some(NodeState::Retired));
        check_protected(addr, "test");
        assert!(on_free(addr), "quarantine off: caller runs the destructor");
        assert_eq!(
            state_of(addr),
            None,
            "real dealloc forgets the address so allocator reuse can't false-positive"
        );
    }

    #[test]
    fn double_retire_panics() {
        let addr = 0x1000_1000 as *const u8;
        register(addr, 8);
        on_retire(addr, 8);
        let err =
            std::panic::catch_unwind(|| on_retire(addr, 8)).expect_err("double retire must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("double retire"), "got: {msg}");
        assert!(msg.contains("0x10001000"), "panic names the node: {msg}");
    }

    #[test]
    fn uaf_checkpoint_panics_and_names_context() {
        // Size 0 so quarantine skips the poison write (the address is fake).
        let addr = 0x1000_2000 as *const u8;
        register(addr, 0);
        on_retire(addr, 0);
        {
            let _q = QuarantineGuard::enable();
            assert!(!on_free(addr));
        }
        set_context("scheme=test-scheme schedule=t0,t1");
        let err = std::panic::catch_unwind(|| check_protected(addr, "unit-test deref"))
            .expect_err("deref after free must panic");
        clear_context();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("use after free"), "got: {msg}");
        assert!(msg.contains("scheme=test-scheme"), "got: {msg}");
        assert!(msg.contains("unit-test deref"), "got: {msg}");
    }

    #[test]
    fn quarantine_poisons_header_and_skips_destructor() {
        let boxed: Box<[u64; 4]> = Box::new([1, 2, 3, 4]);
        let ptr = Box::into_raw(boxed).cast::<u8>();
        register(ptr, 32);
        on_retire(ptr, 32);
        let _q = QuarantineGuard::enable();
        assert!(!on_free(ptr), "quarantine: destructor must be skipped");
        // SAFETY: quarantined memory is leaked and still mapped.
        let header = unsafe { ptr.cast::<u64>().read_unaligned() };
        assert_eq!(header, CANARY);
        let err = std::panic::catch_unwind(|| check_protected(ptr, "post-quarantine deref"))
            .expect_err("deref of quarantined node must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("canary: intact"), "got: {msg}");
        // Leak `ptr` deliberately: quarantined memory must never return to the
        // allocator.
    }

    #[test]
    fn unregistered_node_is_forgotten_after_real_free() {
        let addr = 0x1000_3000 as *const u8;
        on_retire(addr, 16); // never registered: enters at Retired
        assert_eq!(state_of(addr), Some(NodeState::Retired));
        assert!(on_free(addr));
        assert_eq!(state_of(addr), None, "no stale entry to false-positive on");
        // The "reused" address can re-enter the protocol freely.
        on_retire(addr, 16);
        assert!(on_free(addr));
    }

    #[test]
    fn address_reuse_after_real_free_is_legal() {
        let addr = 0x1000_4000 as *const u8;
        register(addr, 8);
        on_retire(addr, 8);
        assert!(on_free(addr));
        register(addr, 8); // allocator reuse: legal when quarantine was off
        assert_eq!(state_of(addr), Some(NodeState::Live));
        deregister(addr);
    }

    #[test]
    fn register_over_live_entry_panics_naming_missing_deregister() {
        let addr = 0x1000_5000 as *const u8;
        register(addr, 8);
        let err =
            std::panic::catch_unwind(|| register(addr, 8)).expect_err("double register must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("missing deregister"), "got: {msg}");
        deregister(addr);
    }
}
