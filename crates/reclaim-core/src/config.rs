//! Configuration shared by every reclamation scheme.
//!
//! The paper names seven tunables; [`SmrConfig`] carries all of them so that a single
//! configuration value can be threaded through QSBR, Cadence, hazard pointers and the
//! QSense hybrid. The field-to-symbol mapping is:
//!
//! | paper symbol | field | meaning |
//! |--------------|-------|---------|
//! | `N` | [`max_threads`](SmrConfig::max_threads) | maximum number of worker threads |
//! | `K` | [`hp_per_thread`](SmrConfig::hp_per_thread) | hazard pointers per thread |
//! | `Q` | [`quiescence_threshold`](SmrConfig::quiescence_threshold) | operations batched per quiescent state |
//! | `R` | [`scan_threshold`](SmrConfig::scan_threshold) | retires between hazard-pointer scans |
//! | `C` | [`fallback_threshold`](SmrConfig::fallback_threshold) | limbo-list size that triggers the fallback path |
//! | `T` | [`rooster_interval`](SmrConfig::rooster_interval) | rooster-thread sleep interval |
//! | `ε` | [`rooster_epsilon`](SmrConfig::rooster_epsilon) | clock-skew / oversleep tolerance |

use crate::clock::{Clock, EraAdvancePolicy};
use std::time::Duration;

/// Tunable parameters for all schemes in the QSense family.
#[derive(Clone, Debug)]
pub struct SmrConfig {
    /// `N`: maximum number of concurrently registered worker threads.
    pub max_threads: usize,
    /// `K`: number of hazard-pointer slots per thread. The paper uses 2 for the
    /// linked list, 6 for the BST and up to 35 for the skip list.
    pub hp_per_thread: usize,
    /// `Q`: number of `begin_op` calls batched before a quiescent state is declared
    /// (QSBR / QSense fast path).
    pub quiescence_threshold: usize,
    /// `R`: number of retired nodes accumulated before a hazard-pointer scan
    /// (HP / Cadence / QSense fallback path).
    pub scan_threshold: usize,
    /// `C`: per-thread limbo-list size that triggers the switch to the fallback path
    /// (QSense only). Property 4 of the paper requires
    /// `C > max(m·Q, N·K + T, (K + T + R) / 2)`.
    pub fallback_threshold: usize,
    /// `T`: rooster-thread sleep interval (Cadence / QSense fallback path).
    pub rooster_interval: Duration,
    /// `ε`: tolerance added to `T` when deciding whether a retired node is old enough.
    pub rooster_epsilon: Duration,
    /// Number of rooster threads to spawn. The paper pins one per core; the default
    /// here is one per available CPU (at least one).
    pub rooster_threads: usize,
    /// Use the Linux `membarrier` system call (when available) from rooster wake-ups
    /// to force outstanding hazard-pointer stores to become visible, mirroring the
    /// paper's "context switch implies memory barrier" assumption. When unavailable
    /// or disabled, visibility falls back to the Rust memory model's finite-visibility
    /// guarantee together with the deferred-reclamation wait of `T + ε`.
    pub use_membarrier: bool,
    /// **Extension (paper §5.2, future work).** If set, QSense *evicts* a registered
    /// thread that has shown no activity for this long: the evicted thread stops
    /// counting towards the all-processes-active check (so the system can switch back
    /// to the fast path after a permanent thread failure) and towards grace periods
    /// (so the epoch can advance past it); its safety is covered by its hazard
    /// pointers plus deferred reclamation instead, exactly as on the fallback path.
    /// `None` (the default) disables eviction and reproduces the paper's published
    /// behaviour, where a crashed thread keeps the system in fallback mode forever.
    pub eviction_timeout: Option<Duration>,
    /// **Extension (robustness).** Scheme-wide limbo **byte** budget. When
    /// set, every scheme tracks its limbo-byte estimate through a
    /// [`crate::budget::BudgetGovernor`] and, on crossing the budget,
    /// escalates along a fixed ladder on the retire path: forced scan →
    /// scheme-specific boost (HE drives its era pacer by bytes, QSense trips
    /// its fallback path early) → one bounded backpressure yield. `None` (the
    /// default) keeps byte *tracking* alive (peaks still show up in
    /// [`crate::stats::StatsSnapshot::peak_limbo_bytes`]) but never escalates.
    /// Schemes without a safe retire-path lever (QSBR; Leaky by design) will
    /// exceed a budget under a delinquent thread — the verdict records it.
    pub limbo_budget: Option<usize>,
    /// **Extension (era schemes).** How the global era clock is paced relative
    /// to allocation and reclamation activity (Hazard Eras / 2GE-IBR, the `he`
    /// crate): a fixed allocations-per-tick interval
    /// ([`EraAdvancePolicy::Static`], the default — the IBR literature's
    /// `epoch_freq` ballpark) or an interval that adapts to the scheme-wide
    /// limbo estimate ([`EraAdvancePolicy::Adaptive`]), bounding
    /// stalled-reader garbage by work retired instead of a constant. See
    /// [`crate::clock::EraPacer`].
    pub era_policy: EraAdvancePolicy,
    /// **Extension (observability).** Enables the telemetry histograms
    /// ([`crate::telemetry`]): 1-in-N sampled guard-bracket op latency, scan
    /// duration, and the retire→free delay distribution. Off by default —
    /// disabled, every record site costs exactly one relaxed load.
    pub telemetry: bool,
    /// Telemetry op-latency sampling: sample 1 op in `2^telemetry_sample_shift`
    /// (default 7 → 1-in-128). Only the sampled ops read the precise clock.
    pub telemetry_sample_shift: u32,
    /// Time source; swap in a manual clock for deterministic tests.
    pub clock: Clock,
}

impl SmrConfig {
    /// Configuration matching the paper's linked-list experiments
    /// (`K = 2` hazard pointers).
    pub fn for_list() -> Self {
        Self::default().with_hp_per_thread(2)
    }

    /// Configuration matching the paper's BST experiments (`K = 6`).
    pub fn for_bst() -> Self {
        Self::default().with_hp_per_thread(6)
    }

    /// Configuration matching the paper's skip-list experiments (up to `K = 35`).
    pub fn for_skiplist() -> Self {
        Self::default().with_hp_per_thread(35)
    }

    /// Sets `N`, the maximum number of worker threads.
    pub fn with_max_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "max_threads must be positive");
        self.max_threads = n;
        self
    }

    /// Sets `K`, the number of hazard-pointer slots per thread.
    pub fn with_hp_per_thread(mut self, k: usize) -> Self {
        assert!(k > 0, "hp_per_thread must be positive");
        self.hp_per_thread = k;
        self
    }

    /// Sets `Q`, the quiescence threshold.
    pub fn with_quiescence_threshold(mut self, q: usize) -> Self {
        assert!(q > 0, "quiescence_threshold must be positive");
        self.quiescence_threshold = q;
        self
    }

    /// Sets `R`, the scan threshold.
    pub fn with_scan_threshold(mut self, r: usize) -> Self {
        assert!(r > 0, "scan_threshold must be positive");
        self.scan_threshold = r;
        self
    }

    /// Sets `C`, the fallback threshold.
    pub fn with_fallback_threshold(mut self, c: usize) -> Self {
        assert!(c > 0, "fallback_threshold must be positive");
        self.fallback_threshold = c;
        self
    }

    /// Sets `T`, the rooster sleep interval.
    pub fn with_rooster_interval(mut self, t: Duration) -> Self {
        self.rooster_interval = t;
        self
    }

    /// Sets `ε`, the rooster tolerance.
    pub fn with_rooster_epsilon(mut self, eps: Duration) -> Self {
        self.rooster_epsilon = eps;
        self
    }

    /// Sets the number of rooster threads.
    pub fn with_rooster_threads(mut self, n: usize) -> Self {
        self.rooster_threads = n;
        self
    }

    /// Enables or disables the `membarrier`-based asymmetric fence.
    pub fn with_membarrier(mut self, enabled: bool) -> Self {
        self.use_membarrier = enabled;
        self
    }

    /// Enables the eviction extension: a thread inactive for longer than `timeout` is
    /// evicted from the presence and grace-period checks (see
    /// [`eviction_timeout`](Self::eviction_timeout)). Pass `None` to disable (the
    /// paper's published behaviour).
    pub fn with_eviction_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.eviction_timeout = timeout;
        self
    }

    /// The eviction timeout in nanoseconds, if the extension is enabled.
    pub fn eviction_timeout_nanos(&self) -> Option<u64> {
        self.eviction_timeout.map(crate::clock::duration_to_nanos)
    }

    /// Sets (or clears) the scheme-wide limbo byte budget (see
    /// [`limbo_budget`](Self::limbo_budget)). A budget of `Some(0)` is
    /// rejected: zero bytes cannot hold even one retired node, so every
    /// retire would sit in permanent escalation.
    pub fn with_limbo_budget(mut self, budget: Option<usize>) -> Self {
        if let Some(bytes) = budget {
            assert!(bytes > 0, "limbo_budget must be positive when set");
        }
        self.limbo_budget = budget;
        self
    }

    /// Sets a *static* era-advance interval (allocations per global era tick)
    /// — shorthand for `with_era_policy(EraAdvancePolicy::Static(allocs))`,
    /// kept for every caller that predates the adaptive policy.
    pub fn with_era_advance_interval(mut self, allocs: usize) -> Self {
        assert!(allocs > 0, "era_advance_interval must be positive");
        self.era_policy = EraAdvancePolicy::Static(allocs);
        self
    }

    /// Sets the era-advance policy of the era schemes (see
    /// [`SmrConfig::era_policy`]).
    pub fn with_era_policy(mut self, policy: EraAdvancePolicy) -> Self {
        policy.validate();
        self.era_policy = policy;
        self
    }

    /// Enables or disables the telemetry histograms (see
    /// [`telemetry`](Self::telemetry)).
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Sets the telemetry op-latency sampling shift: sample 1 op in `2^shift`
    /// (shift 0 samples every op; shifts above 31 are clamped at use).
    pub fn with_telemetry_sample_shift(mut self, shift: u32) -> Self {
        self.telemetry_sample_shift = shift;
        self
    }

    /// Replaces the time source (e.g. with a manual clock for tests).
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Checks the legality condition on `C` from Property 4 of the paper,
    /// `C > max(m·Q, N·K + T, (K + T + R)/2)`, where `m` is the maximum number of
    /// nodes a single operation can remove and `T` is expressed — as in the paper's
    /// proof, which counts "at most one removal per time unit" — as the number of
    /// nodes removable during one rooster interval, approximated here by the caller
    /// via `removals_per_interval`.
    pub fn fallback_threshold_is_legal(&self, m: usize, removals_per_interval: usize) -> bool {
        let c = self.fallback_threshold;
        let t = removals_per_interval;
        let nk_plus_t = self.max_threads * self.hp_per_thread + t;
        let k_t_r = (self.hp_per_thread + t + self.scan_threshold).div_ceil(2);
        c > m * self.quiescence_threshold && c > nk_plus_t && c > k_t_r
    }

    /// `T + ε` in nanoseconds — the minimum age a retired node must reach before
    /// Cadence may free it.
    pub fn min_reclaim_age_nanos(&self) -> u64 {
        crate::clock::duration_to_nanos(self.rooster_interval)
            .saturating_add(crate::clock::duration_to_nanos(self.rooster_epsilon))
    }
}

impl Default for SmrConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            max_threads: 64,
            hp_per_thread: 8,
            quiescence_threshold: 100,
            scan_threshold: 128,
            fallback_threshold: 4096,
            rooster_interval: Duration::from_millis(10),
            rooster_epsilon: Duration::from_millis(1),
            rooster_threads: cpus.max(1),
            use_membarrier: true,
            eviction_timeout: None,
            limbo_budget: None,
            era_policy: EraAdvancePolicy::default(),
            telemetry: false,
            telemetry_sample_shift: 7,
            clock: Clock::real(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn defaults_are_sane() {
        let cfg = SmrConfig::default();
        assert!(cfg.max_threads >= 1);
        assert!(cfg.hp_per_thread >= 1);
        assert!(cfg.rooster_threads >= 1);
        assert!(cfg.min_reclaim_age_nanos() > 0);
        assert!(
            cfg.eviction_timeout.is_none(),
            "eviction is an opt-in extension; the default must match the paper"
        );
        assert!(
            cfg.limbo_budget.is_none(),
            "budgets are opt-in; the default must not change retire-path behaviour"
        );
        assert_eq!(
            cfg.era_policy,
            EraAdvancePolicy::Static(crate::clock::DEFAULT_ERA_ADVANCE_INTERVAL),
            "the era policy defaults to the pre-policy static cadence"
        );
        assert!(
            !cfg.telemetry,
            "telemetry is opt-in; the default must keep record sites to one relaxed load"
        );
        assert_eq!(
            cfg.telemetry_sample_shift, 7,
            "default sampling is 1-in-128"
        );
    }

    #[test]
    fn era_policy_builder_accepts_both_shapes() {
        let cfg = SmrConfig::default().with_era_policy(EraAdvancePolicy::adaptive());
        assert_eq!(cfg.era_policy, EraAdvancePolicy::adaptive());
        let cfg = cfg.with_era_advance_interval(32);
        assert_eq!(
            cfg.era_policy,
            EraAdvancePolicy::Static(32),
            "the interval shorthand overwrites the policy"
        );
    }

    #[test]
    #[should_panic(expected = "min_interval must not exceed max_interval")]
    fn incoherent_era_policy_is_rejected_at_the_builder() {
        let _ = SmrConfig::default().with_era_policy(EraAdvancePolicy::Adaptive {
            min_interval: 9,
            max_interval: 3,
            limbo_low_water: 0,
        });
    }

    #[test]
    fn builders_set_every_field() {
        let manual = ManualClock::new();
        let cfg = SmrConfig::default()
            .with_max_threads(4)
            .with_hp_per_thread(3)
            .with_quiescence_threshold(10)
            .with_scan_threshold(20)
            .with_fallback_threshold(500)
            .with_rooster_interval(Duration::from_millis(5))
            .with_rooster_epsilon(Duration::from_millis(2))
            .with_rooster_threads(2)
            .with_membarrier(false)
            .with_eviction_timeout(Some(Duration::from_millis(50)))
            .with_limbo_budget(Some(1 << 20))
            .with_era_advance_interval(16)
            .with_telemetry(true)
            .with_telemetry_sample_shift(4)
            .with_clock(Clock::manual(manual));
        assert_eq!(cfg.max_threads, 4);
        assert_eq!(cfg.hp_per_thread, 3);
        assert_eq!(cfg.quiescence_threshold, 10);
        assert_eq!(cfg.scan_threshold, 20);
        assert_eq!(cfg.fallback_threshold, 500);
        assert_eq!(cfg.rooster_interval, Duration::from_millis(5));
        assert_eq!(cfg.rooster_epsilon, Duration::from_millis(2));
        assert_eq!(cfg.rooster_threads, 2);
        assert!(!cfg.use_membarrier);
        assert_eq!(cfg.eviction_timeout_nanos(), Some(50_000_000));
        assert_eq!(cfg.limbo_budget, Some(1 << 20));
        assert_eq!(cfg.era_policy, EraAdvancePolicy::Static(16));
        assert!(cfg.telemetry);
        assert_eq!(cfg.telemetry_sample_shift, 4);
        assert!(cfg.clock.is_manual());
        assert_eq!(cfg.min_reclaim_age_nanos(), 7_000_000);
    }

    #[test]
    fn dataset_presets_match_paper_hp_counts() {
        assert_eq!(SmrConfig::for_list().hp_per_thread, 2);
        assert_eq!(SmrConfig::for_bst().hp_per_thread, 6);
        assert_eq!(SmrConfig::for_skiplist().hp_per_thread, 35);
    }

    #[test]
    fn legality_condition_matches_property_4() {
        let cfg = SmrConfig::default()
            .with_max_threads(8)
            .with_hp_per_thread(2)
            .with_quiescence_threshold(100)
            .with_scan_threshold(128)
            .with_fallback_threshold(4096);
        // m = 1 removal per op, ~1000 removals per rooster interval.
        assert!(cfg.fallback_threshold_is_legal(1, 1000));
        // A tiny C violates the condition.
        let tiny = cfg.clone().with_fallback_threshold(10);
        assert!(!tiny.fallback_threshold_is_legal(1, 1000));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_threads_rejected() {
        let _ = SmrConfig::default().with_max_threads(0);
    }

    #[test]
    #[should_panic(expected = "limbo_budget must be positive")]
    fn zero_limbo_budget_rejected() {
        let _ = SmrConfig::default().with_limbo_budget(Some(0));
    }

    #[test]
    fn limbo_budget_can_be_cleared() {
        let cfg = SmrConfig::default()
            .with_limbo_budget(Some(4096))
            .with_limbo_budget(None);
        assert!(cfg.limbo_budget.is_none());
    }
}
