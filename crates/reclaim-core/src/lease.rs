//! M:N handle leasing: many short-lived tasks borrowing few registered slots.
//!
//! The registry model is one-slot-per-*registered handle*, and every slot a
//! handle claims is a slot every scan must consider. A server that spawns a
//! task per connection must not register a handle per task — thousands of
//! mostly-idle slots would inflate every scan and exhaust `max_threads` — and
//! with the PR 3 [`HandleCache`](crate::handle_cache::HandleCache) it does not
//! have to pay the *allocation* cost either. What was still missing is the
//! *slot* story: a way for `M` tasks to time-share `N` registered handles.
//!
//! [`LeasePool`] is that story. It registers `N` handles up front (or adopts
//! any pre-built handles) and checks them out one task at a time:
//!
//! ```text
//! let pool = LeasePool::for_scheme(&scheme, 8, LeasePolicy::Wait)?;
//! // per task:
//! let mut lease = pool.checkout()?;       // borrow one of the 8 handles
//! let guard = Guard::enter(&mut *lease);  // normal op bracket
//! drop(guard);
//! drop(lease);                            // handle returns to the pool
//! ```
//!
//! A checkout hands back a [`HandleLease`] — an RAII borrow that derefs to the
//! handle and checks it back in on drop, so a panicking task cannot leak a
//! slot. When every handle is out, [`LeasePolicy`] decides whether a checkout
//! **waits** (blocking on a condvar until a lease is returned) or **fails**
//! (returning [`LeaseExhausted`] so the caller can shed load) — the same
//! choice a connection pool offers.
//!
//! ## The `.await`-safety boundary
//!
//! A [`HandleLease`] may cross threads between operations (it owns the
//! handle, and scheme handles are `Send`), which is exactly what a
//! work-stealing runtime needs: checkout at task start, carry the lease
//! across `.await` points, check in at task end. A
//! [`Guard`](crate::guard::Guard), by contrast, is `!Send`: an *in-flight
//! operation* pins its protections to one thread and must complete before
//! the task yields. The compile-fail doctests on the guard module pin this
//! boundary. In short: **lease = task-scoped, guard = op-scoped.**
//!
//! ## Cost
//!
//! Checkout/checkin is one uncontended mutex lock plus a `Vec` pop/push into
//! storage preallocated at construction — allocation-free after warm-up (the
//! `zero_alloc_steady_state` suite pins this) and O(1) regardless of `M`.
//! LIFO reuse keeps the hottest handle's pool segments and scratch in cache,
//! mirroring the `HandleCache`'s policy.

use crate::smr::{CapacityExhausted, Smr};
use std::error::Error;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex};

/// What [`LeasePool::checkout`] does when every handle is leased out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LeasePolicy {
    /// Block until a lease is checked back in (the default: backpressure by
    /// waiting, the right choice for bounded task runtimes).
    #[default]
    Wait,
    /// Return [`LeaseExhausted`] immediately so the caller can shed load or
    /// retry on its own schedule.
    Fail,
}

/// Error returned by a [`LeasePolicy::Fail`] checkout (or any
/// [`LeasePool::try_checkout`]) when every handle is leased out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseExhausted {
    /// The pool's fixed handle count (`N`).
    pub slots: usize,
}

impl fmt::Display for LeaseExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "all {} leased handles are checked out; wait for a checkin, widen \
             the pool, or shed the task",
            self.slots
        )
    }
}

impl Error for LeaseExhausted {}

/// A fixed pool of `N` registered scheme handles time-shared by `M` tasks
/// (module docs). Generic over the handle type; build one with
/// [`for_scheme`](Self::for_scheme) or adopt pre-built handles with
/// [`new`](Self::new).
pub struct LeasePool<H> {
    /// Idle handles, LIFO. Capacity is reserved for all `N` up front so
    /// checkin never allocates.
    idle: Mutex<Vec<H>>,
    available: Condvar,
    policy: LeasePolicy,
    slots: usize,
}

impl<H> LeasePool<H> {
    /// Wraps `handles` (all of them initially idle) into a pool with the given
    /// exhaustion policy.
    ///
    /// # Panics
    ///
    /// Panics if `handles` is empty — a zero-handle pool could never serve a
    /// checkout.
    pub fn new(handles: Vec<H>, policy: LeasePolicy) -> Self {
        assert!(!handles.is_empty(), "lease pool needs at least one handle");
        let slots = handles.len();
        let mut idle = Vec::with_capacity(slots);
        idle.extend(handles);
        Self {
            idle: Mutex::new(idle),
            available: Condvar::new(),
            policy,
            slots,
        }
    }

    /// Registers `slots` fresh handles on `scheme` and pools them. Fails with
    /// the scheme's descriptive [`CapacityExhausted`] error if the registry
    /// cannot seat that many handles (already-registered handles are dropped
    /// and their slots released).
    pub fn for_scheme<S>(
        scheme: &Arc<S>,
        slots: usize,
        policy: LeasePolicy,
    ) -> Result<Self, CapacityExhausted>
    where
        S: Smr<Handle = H>,
    {
        assert!(slots > 0, "lease pool needs at least one handle");
        let mut handles = Vec::with_capacity(slots);
        for _ in 0..slots {
            handles.push(scheme.try_register()?);
        }
        Ok(Self::new(handles, policy))
    }

    /// The pool's fixed handle count (`N`).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Handles currently idle (diagnostics/tests).
    pub fn idle_count(&self) -> usize {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Checks out a handle, applying the pool's [`LeasePolicy`] when none is
    /// idle: `Wait` blocks until a checkin, `Fail` returns [`LeaseExhausted`].
    pub fn checkout(&self) -> Result<HandleLease<'_, H>, LeaseExhausted> {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(handle) = idle.pop() {
                return Ok(HandleLease {
                    pool: self,
                    handle: Some(handle),
                });
            }
            match self.policy {
                LeasePolicy::Fail => return Err(LeaseExhausted { slots: self.slots }),
                LeasePolicy::Wait => {
                    idle = self.available.wait(idle).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Non-blocking checkout regardless of policy: `None` when every handle is
    /// leased out.
    pub fn try_checkout(&self) -> Option<HandleLease<'_, H>> {
        self.idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .map(|handle| HandleLease {
                pool: self,
                handle: Some(handle),
            })
    }

    /// Returns a handle to the idle set and wakes one waiter. Push never
    /// allocates: the storage was reserved for all `N` at construction.
    fn checkin(&self, handle: H) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(idle.len() < self.slots, "more checkins than handles");
        idle.push(handle);
        drop(idle);
        self.available.notify_one();
    }
}

impl<H> fmt::Debug for LeasePool<H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LeasePool")
            .field("slots", &self.slots)
            .field("idle", &self.idle_count())
            .field("policy", &self.policy)
            .finish()
    }
}

/// An RAII lease on one pooled handle: derefs to the handle, checks it back in
/// on drop (including panic unwinds, so a dying task never leaks a slot).
///
/// The lease owns the handle for its lifetime and is `Send` whenever the
/// handle is — it may migrate between threads *between* operations. In-flight
/// operations are bracketed by [`Guard`](crate::guard::Guard)s, which are
/// `!Send` and therefore cannot cross that boundary (module docs).
pub struct HandleLease<'p, H> {
    pool: &'p LeasePool<H>,
    /// `Some` until drop; `Option` only so drop can move the handle out.
    handle: Option<H>,
}

impl<H> Deref for HandleLease<'_, H> {
    type Target = H;
    fn deref(&self) -> &H {
        self.handle
            .as_ref()
            .expect("lease holds its handle until drop")
    }
}

impl<H> DerefMut for HandleLease<'_, H> {
    fn deref_mut(&mut self) -> &mut H {
        self.handle
            .as_mut()
            .expect("lease holds its handle until drop")
    }
}

impl<H> Drop for HandleLease<'_, H> {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.pool.checkin(handle);
        }
    }
}

impl<H> fmt::Debug for HandleLease<'_, H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandleLease").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn checkout_checkin_is_lifo_and_conserves_handles() {
        let pool = LeasePool::new(vec![1u32, 2, 3], LeasePolicy::Fail);
        assert_eq!(pool.slots(), 3);
        assert_eq!(pool.idle_count(), 3);
        let a = pool.checkout().unwrap();
        assert_eq!(*a, 3, "LIFO hands out the most recently idle handle");
        let b = pool.checkout().unwrap();
        assert_eq!(*b, 2);
        assert_eq!(pool.idle_count(), 1);
        drop(a);
        assert_eq!(pool.idle_count(), 2);
        let c = pool.checkout().unwrap();
        assert_eq!(*c, 3, "returned handle is the next handed out");
        drop(b);
        drop(c);
        assert_eq!(pool.idle_count(), 3);
    }

    #[test]
    fn fail_policy_reports_exhaustion() {
        let pool = LeasePool::new(vec![0u8], LeasePolicy::Fail);
        let held = pool.checkout().unwrap();
        let err = pool.checkout().unwrap_err();
        assert_eq!(err, LeaseExhausted { slots: 1 });
        assert!(err.to_string().contains("all 1 leased handles"));
        assert!(pool.try_checkout().is_none());
        drop(held);
        assert!(pool.checkout().is_ok());
    }

    #[test]
    fn wait_policy_blocks_until_a_checkin() {
        let pool = Arc::new(LeasePool::new(vec![0u8], LeasePolicy::Wait));
        let held = pool.checkout().unwrap();
        let waited = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let pool = Arc::clone(&pool);
            let waited = Arc::clone(&waited);
            thread::spawn(move || {
                let lease = pool.checkout().expect("wait policy never errors");
                waited.store(1, Ordering::SeqCst);
                drop(lease);
            })
        };
        thread::sleep(Duration::from_millis(20));
        assert_eq!(waited.load(Ordering::SeqCst), 0, "waiter blocks while held");
        drop(held);
        waiter.join().unwrap();
        assert_eq!(waited.load(Ordering::SeqCst), 1);
        assert_eq!(pool.idle_count(), 1);
    }

    #[test]
    fn lease_checks_in_on_panic_unwind() {
        let pool = Arc::new(LeasePool::new(vec![0u8], LeasePolicy::Fail));
        let res = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let _lease = pool.checkout().unwrap();
                panic!("task dies mid-lease");
            })
            .join()
        };
        assert!(res.is_err());
        assert_eq!(pool.idle_count(), 1, "unwind returned the handle");
    }

    #[test]
    fn mn_churn_every_task_gets_a_turn() {
        const M: usize = 32;
        const N: usize = 4;
        let pool = Arc::new(LeasePool::new((0..N as u32).collect(), LeasePolicy::Wait));
        let turns = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..M)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let turns = Arc::clone(&turns);
                thread::spawn(move || {
                    for _ in 0..8 {
                        let lease = pool.checkout().unwrap();
                        assert!(*lease < N as u32);
                        turns.fetch_add(1, Ordering::Relaxed);
                        drop(lease);
                    }
                })
            })
            .collect();
        for t in tasks {
            t.join().unwrap();
        }
        assert_eq!(turns.load(Ordering::Relaxed), M * 8);
        assert_eq!(pool.idle_count(), N);
    }

    #[test]
    #[should_panic(expected = "at least one handle")]
    fn empty_pool_rejected() {
        let _ = LeasePool::new(Vec::<u8>::new(), LeasePolicy::Wait);
    }
}
