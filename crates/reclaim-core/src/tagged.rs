//! Marked and **versioned** link words.
//!
//! Two link representations live here, one per validation discipline:
//!
//! 1. **Marked pointers** ([`marked`] / [`unmarked`] / [`is_marked`] /
//!    [`decompose`]): the Harris technique — a *logical deletion* mark in the
//!    least-significant bit of a node's `next` pointer. This is sufficient for
//!    structures whose validate-then-CAS pattern targets the **same link it
//!    validated** (the linked list, the hash map's bucket lists): the CAS's
//!    expected pointer value re-validates the link for free, and hazard-pointer
//!    protection of the expected node rules out address reuse (ABA), so a stale
//!    CAS always fails.
//!
//! 2. **Versioned link words** ([`VersionedAtomic`] / [`LinkWord`]): a 64-bit
//!    word packing the pointer, the deletion mark, and a **per-link version
//!    counter** that every successful CAS bumps. This is what the skip list
//!    needs: its upper-level link CAS acts on a *different* link (and level)
//!    than the membership validation (`succs[0] == node`), so pointer equality
//!    at the CASed link proves nothing about the validated state still holding.
//!    With versions, "the link looks unchanged" and "the link *is* unchanged
//!    since my validation" coincide, which makes validate-on-link sound — the
//!    VBR insight (Sheffi–Morrison–Petrank) applied to exactly the
//!    validate-then-CAS window the skip list's re-link race lives in.
//!
//! ## Word layout
//!
//! ```text
//!   63          48 47                    1  0
//!  +--------------+-----------------------+----+
//!  |  version     |  pointer bits [47:1]  |mark|
//!  +--------------+-----------------------+----+
//! ```
//!
//! * **Bit 0 — mark.** All nodes are heap allocations with alignment ≥ 8, so
//!   bit 0 of a real pointer is always zero. Keeping the mark in the *outgoing*
//!   pointer of the deleted node (rather than in the pointer *to* it) is what
//!   makes hazard-pointer validation sound: once a node is unlinked its `next`
//!   stays marked forever, so a traversal standing on a removed node can never
//!   successfully validate a protection acquired through it.
//! * **Bits 47:1 — pointer.** User-space heap pointers on the supported
//!   platforms (x86-64 and aarch64 Linux with 48-bit virtual addressing) fit in
//!   47 bits; [`pack`] debug-asserts it. Bits 2:1 are pointer bits like any
//!   other (they are zero for aligned pointers but are masked, not shifted, so
//!   the hot path pays one AND to extract the pointer).
//! * **Bits 63:48 — version.** Bumped (mod 2¹⁶) by every successful CAS through
//!   [`VersionedAtomic::compare_exchange`], so the version is a per-link
//!   modification counter.
//!
//! ## Checked-wrap story
//!
//! The version wraps at 2¹⁶ = 65 536. A wrap is dangerous only if one observer
//! holds a `(pointer, version)` snapshot across **exactly** `k·2¹⁶` successful
//! CASes on that one link *and* the pointer field has returned to its old
//! value. Every holder of a snapshot in this crate (a traversal between its
//! validation and its CAS) also holds hazard-pointer/era protection on the
//! snapshot's successor, so the successor cannot be freed and re-allocated
//! under the snapshot; returning to the same pointer therefore requires the
//! *same node* to be unlinked and re-linked at the same level ≥ 65 536/2 times
//! inside one traversal's validate→CAS window (a handful of instructions, plus
//! at worst one preemption quantum per wrap candidate). Unlike the classic
//! 16-bit-tag ABA folklore — where the tag guards *reallocated* memory and a
//! wrap needs only allocator cooperation — a wrap here needs the scheduler to
//! stall one thread across ≥ 32 768 successful re-link cycles of one specific
//! node that the stalled thread's own protection keeps alive; no such cycle
//! even exists for retired nodes (a retired node is never re-linked — that is
//! the invariant the versions enforce). The wrap arithmetic itself is exact:
//! [`pack`] masks the version to 16 bits, so `0xFFFF + 1` rolls to `0` without
//! touching the pointer or mark bits (pinned by a unit test below).
//!
//! The legacy helpers keep working on `*mut T` for the single-word structures;
//! the versioned type is deliberately separate so each structure's file states
//! which discipline it relies on.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// The logical-deletion mark (bit 0) of both representations.
const MARK: usize = 1;

/// Returns `ptr` with its mark bit cleared.
#[inline]
pub fn unmarked<T>(ptr: *mut T) -> *mut T {
    ((ptr as usize) & !MARK) as *mut T
}

/// Returns `ptr` with its mark bit set.
#[inline]
pub fn marked<T>(ptr: *mut T) -> *mut T {
    ((ptr as usize) | MARK) as *mut T
}

/// True if the mark bit of `ptr` is set.
#[inline]
pub fn is_marked<T>(ptr: *mut T) -> bool {
    (ptr as usize) & MARK == MARK
}

/// Splits a possibly marked pointer into `(clean_pointer, is_marked)`.
#[inline]
pub fn decompose<T>(ptr: *mut T) -> (*mut T, bool) {
    (unmarked(ptr), is_marked(ptr))
}

/// Number of version bits in a [`LinkWord`].
pub const VERSION_BITS: u32 = 16;
/// Bit position of the version field.
const VERSION_SHIFT: u32 = 64 - VERSION_BITS;
/// Mask of the version field's value range.
const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;
/// Mask selecting the pointer bits of a link word (bits 47:1).
const PTR_MASK: u64 = ((1u64 << VERSION_SHIFT) - 1) & !(MARK as u64);

/// Packs `(pointer, mark, version)` into one link word. The version is taken
/// mod 2¹⁶ (the checked-wrap contract above).
#[inline]
fn pack<T>(ptr: *mut T, mark: bool, version: u64) -> u64 {
    let addr = ptr as usize as u64;
    debug_assert_eq!(
        addr & !PTR_MASK,
        0,
        "pointer {addr:#x} does not fit the 47-bit link-word field \
         (mark bit set, or >47-bit virtual address space?)"
    );
    addr | (mark as u64) | ((version & VERSION_MASK) << VERSION_SHIFT)
}

/// One observed value of a [`VersionedAtomic`] link: pointer + mark + version,
/// compared **as a whole** by the CAS that consumes it. Copyable and cheap; a
/// traversal keeps the `LinkWord` it validated and hands it to the CAS as the
/// expected value, which is precisely the validate-on-link discipline.
pub struct LinkWord<T> {
    raw: u64,
    _marker: PhantomData<*mut T>,
}

impl<T> Clone for LinkWord<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for LinkWord<T> {}
impl<T> PartialEq for LinkWord<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for LinkWord<T> {}

impl<T> std::fmt::Debug for LinkWord<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkWord")
            .field("ptr", &self.ptr())
            .field("marked", &self.is_marked())
            .field("version", &self.version())
            .finish()
    }
}

impl<T> LinkWord<T> {
    fn from_raw(raw: u64) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }

    /// The all-zero word: null pointer, unmarked, version 0 (array initializer;
    /// also the word a fresh [`VersionedAtomic`] of a null pointer holds).
    #[inline]
    pub fn null() -> Self {
        Self::from_raw(0)
    }

    /// The pointer field (mark and version stripped).
    #[inline]
    pub fn ptr(self) -> *mut T {
        (self.raw & PTR_MASK) as usize as *mut T
    }

    /// Whether the logical-deletion mark is set.
    #[inline]
    pub fn is_marked(self) -> bool {
        self.raw & MARK as u64 != 0
    }

    /// The link's version at observation time.
    #[inline]
    pub fn version(self) -> u64 {
        self.raw >> VERSION_SHIFT
    }

    /// The same pointer and version with the mark bit set or cleared. This
    /// derives the *new* value of a CAS from an observed word (e.g. re-linking
    /// a deleted node's successor unmarked); it is never meaningful as a CAS
    /// *expected* value — expected words must be observed, not synthesized.
    #[inline]
    pub fn with_mark(self, mark: bool) -> Self {
        Self::from_raw((self.raw & !(MARK as u64)) | (mark as u64))
    }
}

/// An atomic link word: pointer + mark + per-link version, CASed as one `u64`.
///
/// Every successful [`compare_exchange`](Self::compare_exchange) bumps the
/// version, so holding a [`LinkWord`] and CASing with it as the expected value
/// guarantees the link was not modified — not even transiently, pointer
/// equality notwithstanding — between the observation and the CAS.
pub struct VersionedAtomic<T> {
    word: AtomicU64,
    _marker: PhantomData<*mut T>,
}

impl<T> VersionedAtomic<T> {
    /// A fresh link (version 0) holding `ptr`, unmarked.
    pub fn new(ptr: *mut T) -> Self {
        Self {
            word: AtomicU64::new(pack(ptr, false, 0)),
            _marker: PhantomData,
        }
    }

    /// Loads the current word.
    #[inline]
    pub fn load(&self, order: Ordering) -> LinkWord<T> {
        LinkWord::from_raw(self.word.load(order))
    }

    /// Plain store of `(ptr, unmarked)`, **resetting the version to 0**. Only
    /// legal while the owning node is private (pre-publication initialization):
    /// a store on a shared link would bypass the version discipline.
    #[inline]
    pub fn store_private(&self, ptr: *mut T, order: Ordering) {
        self.word.store(pack(ptr, false, 0), order);
    }

    /// Attempts the transition `current → (new_ptr, new_mark)`, bumping the
    /// version. Fails (returning the observed word) if the link differs from
    /// `current` in pointer, mark, **or version**.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: LinkWord<T>,
        new_ptr: *mut T,
        new_mark: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<LinkWord<T>, LinkWord<T>> {
        let new = pack(new_ptr, new_mark, current.version().wrapping_add(1));
        match self
            .word
            .compare_exchange(current.raw, new, success, failure)
        {
            Ok(_) => Ok(LinkWord::from_raw(new)),
            Err(observed) => Err(LinkWord::from_raw(observed)),
        }
    }

    /// Marks the link (`current → (current.ptr, marked)`), bumping the version.
    #[inline]
    pub fn try_mark(
        &self,
        current: LinkWord<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<LinkWord<T>, LinkWord<T>> {
        self.compare_exchange(current, current.ptr(), true, success, failure)
    }

    /// Version-bump with no pointer/mark change (`current → current,
    /// version+1`): the *poison* step of the remove protocol — after it
    /// succeeds, every CAS whose expected word predates `current` is guaranteed
    /// to fail, so a link observed victim-free stays victim-free.
    #[inline]
    pub fn bump_version(
        &self,
        current: LinkWord<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<LinkWord<T>, LinkWord<T>> {
        self.compare_exchange(
            current,
            current.ptr(),
            current.is_marked(),
            success,
            failure,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_round_trip() {
        let boxed = Box::new(7_u64);
        let raw = Box::into_raw(boxed);
        assert!(!is_marked(raw), "heap pointers start unmarked");
        let m = marked(raw);
        assert!(is_marked(m));
        assert_eq!(unmarked(m), raw);
        assert_eq!(marked(m), m, "marking twice is idempotent");
        assert_eq!(unmarked(unmarked(m)), raw);
        let (clean, flag) = decompose(m);
        assert_eq!(clean, raw);
        assert!(flag);
        // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
        #[allow(clippy::disallowed_methods)]
        // sanctioned: test teardown balancing this test's Box::into_raw
        unsafe {
            drop(Box::from_raw(raw))
        };
    }

    #[test]
    fn null_handling() {
        let null: *mut u64 = std::ptr::null_mut();
        assert!(!is_marked(null));
        assert!(is_marked(marked(null)));
        assert_eq!(unmarked(marked(null)), null);
    }

    #[test]
    fn versioned_load_round_trips_pointer_mark_and_version() {
        let raw = Box::into_raw(Box::new(9_u64));
        let link = VersionedAtomic::new(raw);
        let w = link.load(Ordering::Acquire);
        assert_eq!(w.ptr(), raw);
        assert!(!w.is_marked());
        assert_eq!(w.version(), 0);
        // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
        #[allow(clippy::disallowed_methods)]
        // sanctioned: test teardown balancing this test's Box::into_raw
        unsafe {
            drop(Box::from_raw(raw))
        };
    }

    #[test]
    fn every_successful_cas_bumps_the_version() {
        let a = Box::into_raw(Box::new(1_u64));
        let b = Box::into_raw(Box::new(2_u64));
        let link = VersionedAtomic::new(a);
        let w0 = link.load(Ordering::Acquire);
        let w1 = link
            .compare_exchange(w0, b, false, Ordering::AcqRel, Ordering::Acquire)
            .expect("uncontended CAS succeeds");
        assert_eq!(w1.ptr(), b);
        assert_eq!(w1.version(), 1);
        let w2 = link
            .try_mark(w1, Ordering::AcqRel, Ordering::Acquire)
            .expect("mark succeeds");
        assert!(w2.is_marked());
        assert_eq!(w2.ptr(), b);
        assert_eq!(w2.version(), 2);
        // SAFETY: `a` and `b` were leaked via Box::into_raw above and are dropped exactly once.
        unsafe {
            #[allow(clippy::disallowed_methods)]
            // sanctioned: test teardown balancing this test's Box::into_raw
            drop(Box::from_raw(a));
            #[allow(clippy::disallowed_methods)]
            // sanctioned: test teardown balancing this test's Box::into_raw
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn stale_snapshots_fail_even_when_the_pointer_matches() {
        // The ABA the versions exist to stop: pointer goes a -> b -> a; a CAS
        // holding the original (a, v0) snapshot must fail.
        let a = Box::into_raw(Box::new(1_u64));
        let b = Box::into_raw(Box::new(2_u64));
        let link = VersionedAtomic::new(a);
        let stale = link.load(Ordering::Acquire);
        let w1 = link
            .compare_exchange(stale, b, false, Ordering::AcqRel, Ordering::Acquire)
            .unwrap();
        let w2 = link
            .compare_exchange(w1, a, false, Ordering::AcqRel, Ordering::Acquire)
            .unwrap();
        assert_eq!(w2.ptr(), stale.ptr(), "pointer has ABA'd back");
        let err = link
            .compare_exchange(stale, b, false, Ordering::AcqRel, Ordering::Acquire)
            .expect_err("stale snapshot must fail on version mismatch");
        assert_eq!(err.ptr(), a);
        assert_eq!(err.version(), 2);
        // SAFETY: `a` and `b` were leaked via Box::into_raw above and are dropped exactly once.
        unsafe {
            #[allow(clippy::disallowed_methods)]
            // sanctioned: test teardown balancing this test's Box::into_raw
            drop(Box::from_raw(a));
            #[allow(clippy::disallowed_methods)]
            // sanctioned: test teardown balancing this test's Box::into_raw
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn bump_version_changes_only_the_version() {
        let a = Box::into_raw(Box::new(3_u64));
        let link = VersionedAtomic::new(a);
        let w0 = link.load(Ordering::Acquire);
        let w1 = link
            .bump_version(w0, Ordering::AcqRel, Ordering::Acquire)
            .unwrap();
        assert_eq!(w1.ptr(), a);
        assert!(!w1.is_marked());
        assert_eq!(w1.version(), 1);
        assert!(
            link.bump_version(w0, Ordering::AcqRel, Ordering::Acquire)
                .is_err(),
            "the old snapshot is poisoned"
        );
        // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
        #[allow(clippy::disallowed_methods)]
        // sanctioned: test teardown balancing this test's Box::into_raw
        unsafe {
            drop(Box::from_raw(a))
        };
    }

    #[test]
    fn version_wrap_is_exact_and_leaves_pointer_and_mark_intact() {
        let a = Box::into_raw(Box::new(4_u64));
        let link = VersionedAtomic::new(a);
        // Drive the version to the wrap boundary directly (2^16 CAS loops in a
        // unit test would work too, but the packing is what's under test).
        link.word
            .store(pack(a, true, VERSION_MASK), Ordering::Release);
        let w = link.load(Ordering::Acquire);
        assert_eq!(w.version(), VERSION_MASK);
        let wrapped = link
            .compare_exchange(w, a, true, Ordering::AcqRel, Ordering::Acquire)
            .expect("CAS at the wrap boundary succeeds");
        assert_eq!(wrapped.version(), 0, "version wraps mod 2^16");
        assert_eq!(wrapped.ptr(), a, "pointer bits survive the wrap");
        assert!(wrapped.is_marked(), "mark bit survives the wrap");
        // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
        #[allow(clippy::disallowed_methods)]
        // sanctioned: test teardown balancing this test's Box::into_raw
        unsafe {
            drop(Box::from_raw(a))
        };
    }

    #[test]
    fn store_private_resets_the_version() {
        let a = Box::into_raw(Box::new(5_u64));
        let b = Box::into_raw(Box::new(6_u64));
        let link = VersionedAtomic::new(a);
        let w0 = link.load(Ordering::Acquire);
        link.compare_exchange(w0, b, true, Ordering::AcqRel, Ordering::Acquire)
            .unwrap();
        link.store_private(a, Ordering::Relaxed);
        let w = link.load(Ordering::Acquire);
        assert_eq!((w.ptr(), w.is_marked(), w.version()), (a, false, 0));
        // SAFETY: `a` and `b` were leaked via Box::into_raw above and are dropped exactly once.
        unsafe {
            #[allow(clippy::disallowed_methods)]
            // sanctioned: test teardown balancing this test's Box::into_raw
            drop(Box::from_raw(a));
            #[allow(clippy::disallowed_methods)]
            // sanctioned: test teardown balancing this test's Box::into_raw
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn null_links_carry_marks_and_versions() {
        let link: VersionedAtomic<u64> = VersionedAtomic::new(std::ptr::null_mut());
        let w0 = link.load(Ordering::Acquire);
        assert!(w0.ptr().is_null());
        let w1 = link
            .try_mark(w0, Ordering::AcqRel, Ordering::Acquire)
            .unwrap();
        assert!(w1.ptr().is_null());
        assert!(w1.is_marked());
        assert_eq!(w1.version(), 1);
    }
}
