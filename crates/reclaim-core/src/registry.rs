//! Per-thread slot registry.
//!
//! Every scheme in the paper keeps *per-process* shared records that other processes
//! scan: hazard-pointer arrays (HP, Cadence), local epochs (QSBR), presence flags
//! (QSense). The paper assumes a fixed set of `N` processes with no dynamic
//! membership (§5.2, last paragraph); this registry implements exactly that model —
//! a fixed-capacity array of slots — but lets threads claim and release slots so that
//! worker threads can come and go between experiments, which the benchmarks need.
//!
//! The registry is generic over the per-thread record `T`. Records are constructed
//! once at registry creation and never moved, so scanners can hold references to them
//! while owners update their interiorly mutable fields (atomics).

use crate::pad::CachePadded;
use crate::stats::{StatStripe, StatsSnapshot};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Identifier of a claimed registry slot. The wrapped index is stable for the
/// lifetime of the claim and doubles as the "process id" in paper terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotId(usize);

impl SlotId {
    /// The slot's index in `0..capacity`.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A slot's claim flag and generation counter, sharing one cache line: both are
/// written only at (de)registration, so co-locating them costs nothing on the
/// hot path and saves a padded line per slot.
struct SlotControl {
    claimed: AtomicBool,
    /// Bumped on every claim *and* every release, so the value is odd exactly
    /// while the slot is claimed and each tenancy has a unique generation.
    /// Asynchronous actors (e.g. QSense's evictor) snapshot the generation
    /// before acting on a slot's record and re-validate it afterwards, which
    /// closes the ABA window where a slot is released and re-claimed between an
    /// actor's check and its write.
    gen: AtomicU64,
}

struct Slot<T> {
    control: CachePadded<SlotControl>,
    state: CachePadded<T>,
    /// The slot owner's statistics stripe. Living next to the record the owner
    /// already writes on its hot path, it turns the per-`retire` /
    /// per-quiescent-state counter updates into single-writer traffic on a line no
    /// other thread touches (scheme-wide snapshots sum the stripes lazily).
    stats: CachePadded<StatStripe>,
}

/// Fixed-capacity registry of per-thread records.
pub struct Registry<T> {
    slots: Box<[Slot<T>]>,
}

impl<T> Registry<T> {
    /// Creates a registry with `capacity` slots, each initialized by `init(index)`.
    pub fn new(capacity: usize, mut init: impl FnMut(usize) -> T) -> Self {
        assert!(capacity > 0, "registry capacity must be positive");
        let slots = (0..capacity)
            .map(|i| Slot {
                control: CachePadded::new(SlotControl {
                    claimed: AtomicBool::new(false),
                    gen: AtomicU64::new(0),
                }),
                state: CachePadded::new(init(i)),
                stats: CachePadded::new(StatStripe::new()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { slots }
    }

    /// Maximum number of simultaneously registered threads (`N` in the paper).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently claimed slots.
    pub fn claimed_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.control.claimed.load(Ordering::Acquire))
            .count()
    }

    /// Claims a free slot, returning its id, or `None` if all `N` slots are taken.
    ///
    /// The acquire/release pairing on `claimed` makes everything the previous owner
    /// wrote to the slot's record visible to the new owner. The claim bumps the
    /// slot's generation to a fresh odd value (see [`generation`](Self::generation)).
    pub fn acquire(&self) -> Option<SlotId> {
        for (i, slot) in self.slots.iter().enumerate() {
            if !slot.control.claimed.load(Ordering::Relaxed)
                && slot
                    .control
                    .claimed
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                // Only the (unique) winner of the claim CAS bumps, so generations
                // step by exactly one per ownership transition. Release pairs with
                // the acquire in `generation`: an observer that reads this
                // generation also observes the claim.
                slot.control.gen.fetch_add(1, Ordering::Release);
                return Some(SlotId(i));
            }
        }
        None
    }

    /// Releases a previously claimed slot.
    ///
    /// The caller must have cleaned up the slot's record (cleared hazard pointers,
    /// drained limbo lists) before releasing; schemes do this in their handle `Drop`.
    /// The release bumps the generation (back to even) *before* clearing the claim
    /// flag, so any observer that still sees the slot claimed also sees the tenancy's
    /// own generation.
    pub fn release(&self, id: SlotId) {
        let slot = &self.slots[id.0];
        slot.control.gen.fetch_add(1, Ordering::Release);
        let was = slot.control.claimed.swap(false, Ordering::Release);
        debug_assert!(was, "releasing a slot that was not claimed");
    }

    /// Whether the given slot index is currently claimed.
    pub fn is_claimed(&self, index: usize) -> bool {
        self.slots[index].control.claimed.load(Ordering::Acquire)
    }

    /// The slot's current generation: bumped on every claim and every release, so
    /// it is odd exactly while the slot is claimed, and no two tenancies of the
    /// same slot share a value. Asynchronous actors (QSense's evictor) tag their
    /// writes with the generation they observed and re-validate it afterwards to
    /// detect that the slot changed hands underneath them.
    #[inline]
    pub fn generation(&self, index: usize) -> u64 {
        self.slots[index].control.gen.load(Ordering::Acquire)
    }

    /// Returns the record stored in slot `index` regardless of claim state.
    ///
    /// Scanners use this to read hazard pointers / epochs of *all* slots; records of
    /// unclaimed slots hold neutral values (null hazard pointers, quiesced epochs), so
    /// including them is always conservative.
    pub fn get(&self, index: usize) -> &T {
        &self.slots[index].state
    }

    /// Returns the record for a claimed slot id (same as [`get`](Self::get), but takes
    /// the typed id the owner holds).
    pub fn get_mine(&self, id: SlotId) -> &T {
        &self.slots[id.0].state
    }

    /// The statistics stripe owned by slot `id` — the counters a handle bumps on
    /// its hot path (`retire`, quiescent states, scans).
    #[inline]
    pub fn stats(&self, id: SlotId) -> &StatStripe {
        &self.slots[id.0].stats
    }

    /// Sums every slot's statistics stripe into `snap`. Stripes of released slots
    /// are included: counts survive their writer's deregistration.
    pub fn merge_stats(&self, snap: &mut StatsSnapshot) {
        for slot in self.slots.iter() {
            slot.stats.merge_into(snap);
        }
    }

    /// Snapshots per-record pointer sets into `out` (cleared first), sorted and
    /// deduplicated for binary search — the shared `get_protected_nodes` step of
    /// every scanning scheme (HP, Cadence, QSense). `collect` appends one
    /// record's published pointers to the buffer. All slots are visited, claimed
    /// or not: unclaimed records hold null pointers, so including them is always
    /// conservative. Allocation-free whenever `out` already has capacity for the
    /// `N·K` worst case.
    pub fn collect_protected(
        &self,
        out: &mut Vec<*mut u8>,
        mut collect: impl FnMut(&T, &mut Vec<*mut u8>),
    ) {
        out.clear();
        for slot in self.slots.iter() {
            collect(&slot.state, out);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Iterates over `(index, record)` for every slot, claimed or not.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().map(|(i, s)| (i, &*s.state))
    }

    /// Iterates over `(index, record)` for currently claimed slots only.
    ///
    /// Note the inherent race: a slot may be claimed or released while the iteration
    /// is in progress. Schemes must therefore make sure that *releasing* a slot leaves
    /// its record in a state that is safe to miss (e.g. hazard pointers cleared only
    /// after the owner's retired nodes have been handed off or reclaimed).
    pub fn iter_claimed(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.control.claimed.load(Ordering::Acquire))
            .map(|(i, s)| (i, &*s.state))
    }
}

impl<T> fmt::Debug for Registry<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("capacity", &self.capacity())
            .field("claimed", &self.claimed_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn acquire_release_round_trip() {
        let reg: Registry<AtomicUsize> = Registry::new(2, |_| AtomicUsize::new(0));
        assert_eq!(reg.capacity(), 2);
        let a = reg.acquire().unwrap();
        let b = reg.acquire().unwrap();
        assert_ne!(a, b);
        assert!(reg.acquire().is_none(), "registry should be full");
        assert_eq!(reg.claimed_count(), 2);
        reg.release(a);
        assert_eq!(reg.claimed_count(), 1);
        let c = reg.acquire().unwrap();
        assert_eq!(c.index(), a.index(), "released slot should be reusable");
        reg.release(b);
        reg.release(c);
        assert_eq!(reg.claimed_count(), 0);
    }

    #[test]
    fn generations_are_odd_while_claimed_and_unique_per_tenancy() {
        let reg: Registry<AtomicUsize> = Registry::new(2, |_| AtomicUsize::new(0));
        assert_eq!(reg.generation(0), 0, "vacant slots start at generation 0");
        let a = reg.acquire().unwrap();
        let g1 = reg.generation(a.index());
        assert_eq!(g1 % 2, 1, "claimed slots have odd generations");
        reg.release(a);
        assert_eq!(reg.generation(a.index()), g1 + 1, "release bumps to even");
        let b = reg.acquire().unwrap();
        assert_eq!(b.index(), a.index(), "first-free policy reuses the slot");
        let g2 = reg.generation(b.index());
        assert_eq!(g2, g1 + 2, "each tenancy gets a fresh generation");
        reg.release(b);
    }

    #[test]
    fn records_are_initialized_per_index() {
        let reg: Registry<usize> = Registry::new(4, |i| i * 10);
        for (i, v) in reg.iter_all() {
            assert_eq!(*v, i * 10);
        }
    }

    #[test]
    fn iter_claimed_sees_only_claimed_slots() {
        let reg: Registry<AtomicUsize> = Registry::new(3, |_| AtomicUsize::new(0));
        let a = reg.acquire().unwrap();
        reg.get_mine(a).store(7, Ordering::Relaxed);
        let claimed: Vec<_> = reg.iter_claimed().map(|(i, _)| i).collect();
        assert_eq!(claimed, vec![a.index()]);
        assert!(reg.is_claimed(a.index()));
        assert_eq!(reg.get(a.index()).load(Ordering::Relaxed), 7);
        reg.release(a);
        assert_eq!(reg.iter_claimed().count(), 0);
    }

    #[test]
    fn concurrent_acquisition_hands_out_distinct_slots() {
        let reg: Arc<Registry<AtomicUsize>> = Arc::new(Registry::new(8, |_| AtomicUsize::new(0)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    let id = reg.acquire().expect("capacity is exactly the thread count");
                    id.index()
                })
            })
            .collect();
        let mut indices: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), 8, "every thread must get a distinct slot");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: Registry<u8> = Registry::new(0, |_| 0);
    }

    #[test]
    fn per_slot_stats_merge_and_survive_release() {
        let reg: Registry<AtomicUsize> = Registry::new(3, |_| AtomicUsize::new(0));
        let a = reg.acquire().unwrap();
        let b = reg.acquire().unwrap();
        reg.stats(a).add_retired(5);
        reg.stats(b).add_retired(2);
        reg.stats(b).add_freed(1);
        let mut snap = crate::stats::StatsSnapshot::default();
        reg.merge_stats(&mut snap);
        assert_eq!(snap.retired, 7);
        assert_eq!(snap.freed, 1);
        // Counts persist after the writer leaves.
        reg.release(b);
        let mut snap = crate::stats::StatsSnapshot::default();
        reg.merge_stats(&mut snap);
        assert_eq!(snap.retired, 7);
        reg.release(a);
    }

    #[test]
    fn concurrent_striped_registry_stats_lose_nothing() {
        const THREADS: usize = 8;
        const OPS: u64 = 5_000;
        let reg: Arc<Registry<AtomicUsize>> =
            Arc::new(Registry::new(THREADS, |_| AtomicUsize::new(0)));
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    let id = reg.acquire().expect("capacity matches thread count");
                    for _ in 0..OPS {
                        reg.stats(id).add_retired(1);
                        reg.stats(id).add_freed(1);
                    }
                    reg.release(id);
                })
            })
            .collect();
        for t in workers {
            t.join().unwrap();
        }
        let mut snap = crate::stats::StatsSnapshot::default();
        reg.merge_stats(&mut snap);
        assert_eq!(snap.retired, THREADS as u64 * OPS);
        assert_eq!(snap.freed, THREADS as u64 * OPS);
    }
}
