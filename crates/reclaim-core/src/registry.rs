//! Per-thread slot registry, sharded so scan cost tracks *active* threads.
//!
//! Every scheme in the paper keeps *per-process* shared records that other processes
//! scan: hazard-pointer arrays (HP, Cadence), local epochs (QSBR), presence flags
//! (QSense). The paper assumes a fixed set of `N` processes with no dynamic
//! membership (§5.2, last paragraph); this registry implements exactly that model —
//! a fixed-capacity set of slots — but lets threads claim and release slots so that
//! worker threads can come and go between experiments, which the benchmarks need.
//!
//! The registry is generic over the per-thread record `T`. Records are constructed
//! once at registry creation and never moved, so scanners can hold references to them
//! while owners update their interiorly mutable fields (atomics).
//!
//! ## Sharding
//!
//! Slots are grouped into shards of [`SHARD_SLOTS`] (= 8). Each shard owns one
//! cache-padded control line holding a **claim bitmap** (bit `s` set ⇔ slot `s` of
//! the shard is claimed; its popcount is the shard's occupancy) plus a
//! *touched* high-water bitmap, and one cache-padded line of **generation words**.
//! The per-slot record and statistics stripe keep their own padded lines — those
//! are the owner's single-writer hot-path traffic.
//!
//! The shard layout buys two things the flat array could not provide:
//!
//! * **Vacancy tests are O(1) per 8 slots.** One bitmap load classifies a whole
//!   shard; a scan ([`collect_protected`](Registry::collect_protected),
//!   [`iter_claimed`](Registry::iter_claimed)) or a cursor walk
//!   ([`skip_vacant_shards`](Registry::skip_vacant_shards)) steps over a
//!   wholly-vacant shard without touching any of its slot lines, so scan cost
//!   tracks *active shards*, not registered capacity. The
//!   [`shard_skips`](crate::stats::StatsSnapshot::shard_skips) /
//!   [`shard_walks`](crate::stats::StatsSnapshot::shard_walks) counters make the
//!   skip behaviour observable.
//! * **Registration does not contend on one array.** [`acquire`](Registry::acquire)
//!   deals a round-robin *home shard* to each registrant and CASes the lowest free
//!   bit of that shard's bitmap, spilling linearly to the next shard only when the
//!   home shard is full — concurrent registrants land on different cache lines
//!   instead of racing down one array of claim flags.
//!
//! ## Why skipping vacant shards is safe
//!
//! A scanner that acquire-loads a shard bitmap as zero has synchronized with every
//! release that cleared a bit in it: schemes neutralize a slot's record (clear
//! hazard pointers, drain or hand off limbo) *before* calling
//! [`release`](Registry::release), whose release-ordered bitmap clear publishes
//! that cleanup. So "shard vacant at the bitmap load" implies "every record in it
//! holds neutral values at that moment" — exactly the state whose inclusion the
//! flat scan called conservative, so its *exclusion* is exact. A claim that lands
//! after the bitmap load is the same race the per-slot scan always had: the new
//! owner publishes protections only after the claim CAS, and a protection
//! published after a node was unlinked fails its re-validation (Michael's step 4),
//! so missing it never frees a node that re-validated successfully.

use crate::pad::CachePadded;
use crate::stats::{StatStripe, StatsSnapshot};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Slots per shard: one `u64` bitmap word classifies this many slots in a single
/// load, and 8 generation words fill exactly one 64-byte line. Capacities that are
/// not a multiple simply leave the tail bits of the last shard permanently unset.
pub const SHARD_SLOTS: usize = 8;

/// The shard a slot index belongs to.
#[inline]
pub const fn shard_of(index: usize) -> usize {
    index / SHARD_SLOTS
}

/// Identifier of a claimed registry slot. The wrapped index is stable for the
/// lifetime of the claim and doubles as the "process id" in paper terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotId(usize);

impl SlotId {
    /// The slot's index in `0..capacity`.
    pub fn index(self) -> usize {
        self.0
    }

    /// The shard this slot lives in — the natural stripe key for per-shard
    /// auxiliary state ([`BudgetGovernor`](crate::budget::BudgetGovernor)
    /// stripes, era-pacer stripes): handles sharing a shard already share
    /// registration-time cache lines, so striping by shard keeps *scan* and
    /// *accounting* locality aligned.
    pub fn shard(self) -> usize {
        shard_of(self.0)
    }
}

/// Error returned by [`Registry::try_acquire`] when every usable slot is claimed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryFull {
    /// The registry's fixed capacity (`N`, the scheme's `max_threads`).
    pub capacity: usize,
}

impl fmt::Display for RegistryFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "all {} registry slots are claimed; raise SmrConfig::max_threads or \
             lease existing handles instead of registering new ones",
            self.capacity
        )
    }
}

impl Error for RegistryFull {}

/// One shard's control line: the claim bitmap and the touched high-water bitmap,
/// both written only at (de)registration, sharing one padded line.
struct ShardControl {
    /// Bit `s` set ⇔ slot `s` of this shard is currently claimed.
    claimed: AtomicU64,
    /// Bit `s` set ⇔ slot `s` has been claimed at least once (never cleared).
    /// Lets [`Registry::merge_stats`] skip shards whose stripes were never
    /// written without forgetting the counts of released slots.
    touched: AtomicU64,
}

/// One shard's generation words: 8 × `u64` = one 64-byte line, padded so the
/// (registration-time) generation traffic of one shard never bounces another's.
struct ShardGens {
    gens: [AtomicU64; SHARD_SLOTS],
}

struct Shard {
    control: CachePadded<ShardControl>,
    gens: CachePadded<ShardGens>,
}

struct SlotState<T> {
    state: CachePadded<T>,
    /// The slot owner's statistics stripe. Living next to the record the owner
    /// already writes on its hot path, it turns the per-`retire` /
    /// per-quiescent-state counter updates into single-writer traffic on a line no
    /// other thread touches (scheme-wide snapshots sum the stripes lazily).
    stats: CachePadded<StatStripe>,
}

/// Fixed-capacity, shard-striped registry of per-thread records (module docs).
pub struct Registry<T> {
    shards: Box<[Shard]>,
    slots: Box<[SlotState<T>]>,
    /// Round-robin home-shard seed: each `acquire` starts at a different shard.
    home_seed: CachePadded<AtomicUsize>,
    /// Shards stepped over as wholly vacant by scans and cursor walks.
    shard_skips: CachePadded<AtomicU64>,
    /// Shards actually walked (at least one claimed slot at the bitmap load).
    shard_walks: CachePadded<AtomicU64>,
}

impl<T> Registry<T> {
    /// Creates a registry with `capacity` slots, each initialized by `init(index)`.
    pub fn new(capacity: usize, mut init: impl FnMut(usize) -> T) -> Self {
        assert!(capacity > 0, "registry capacity must be positive");
        let shard_count = capacity.div_ceil(SHARD_SLOTS);
        let shards = (0..shard_count)
            .map(|_| Shard {
                control: CachePadded::new(ShardControl {
                    claimed: AtomicU64::new(0),
                    touched: AtomicU64::new(0),
                }),
                gens: CachePadded::new(ShardGens {
                    gens: std::array::from_fn(|_| AtomicU64::new(0)),
                }),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let slots = (0..capacity)
            .map(|i| SlotState {
                state: CachePadded::new(init(i)),
                stats: CachePadded::new(StatStripe::new()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            slots,
            home_seed: CachePadded::new(AtomicUsize::new(0)),
            shard_skips: CachePadded::new(AtomicU64::new(0)),
            shard_walks: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Maximum number of simultaneously registered threads (`N` in the paper).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of shards ([`capacity`](Self::capacity) / [`SHARD_SLOTS`], rounded up).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The usable-bit mask of shard `si` (the last shard of a non-multiple
    /// capacity has fewer than [`SHARD_SLOTS`] usable bits).
    #[inline]
    fn usable_mask(&self, si: usize) -> u64 {
        let used = (self.capacity() - si * SHARD_SLOTS).min(SHARD_SLOTS);
        if used == 64 {
            u64::MAX
        } else {
            (1 << used) - 1
        }
    }

    /// Number of currently claimed slots: one popcount per shard.
    pub fn claimed_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.control.claimed.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }

    /// Claims a free slot, returning its id, or `None` if all `N` slots are taken.
    /// (See [`try_acquire`](Self::try_acquire) for the error-carrying variant.)
    ///
    /// Registration is dealt a round-robin **home shard** and CASes the lowest
    /// free bit of its bitmap, spilling to subsequent shards only on overflow —
    /// so concurrent registrants touch different control lines. The AcqRel claim
    /// CAS pairs with the release-ordered bitmap clear in
    /// [`release`](Self::release), making everything the previous owner wrote to
    /// the slot's record visible to the new owner. The claim bumps the slot's
    /// generation to a fresh odd value (see [`generation`](Self::generation)).
    pub fn acquire(&self) -> Option<SlotId> {
        let shard_count = self.shards.len();
        let home = self.home_seed.fetch_add(1, Ordering::Relaxed) % shard_count;
        for probe in 0..shard_count {
            let si = (home + probe) % shard_count;
            if let Some(id) = self.acquire_in_shard(si) {
                return Some(id);
            }
        }
        None
    }

    /// Like [`acquire`](Self::acquire), but reports exhaustion as a descriptive
    /// [`RegistryFull`] error carrying the configured capacity.
    pub fn try_acquire(&self) -> Result<SlotId, RegistryFull> {
        self.acquire().ok_or(RegistryFull {
            capacity: self.capacity(),
        })
    }

    /// Attempts to claim the lowest free usable bit of shard `si`.
    fn acquire_in_shard(&self, si: usize) -> Option<SlotId> {
        let control = &self.shards[si].control;
        let mask = self.usable_mask(si);
        let mut bits = control.claimed.load(Ordering::Relaxed);
        loop {
            let free = !bits & mask;
            if free == 0 {
                return None;
            }
            let bit = free.trailing_zeros() as usize;
            match control.claimed.compare_exchange(
                bits,
                bits | (1 << bit),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let index = si * SHARD_SLOTS + bit;
                    control.touched.fetch_or(1 << bit, Ordering::Relaxed);
                    // Only the (unique) winner of the claim CAS bumps, so
                    // generations step by exactly one per ownership transition.
                    // Release pairs with the acquire in `generation`: an observer
                    // that reads this generation also observes the claim.
                    self.shards[si].gens.gens[bit].fetch_add(1, Ordering::Release);
                    return Some(SlotId(index));
                }
                Err(actual) => bits = actual,
            }
        }
    }

    /// Releases a previously claimed slot.
    ///
    /// The caller must have cleaned up the slot's record (cleared hazard pointers,
    /// drained limbo lists) before releasing; schemes do this in their handle `Drop`.
    /// The release bumps the generation (back to even) *before* clearing the claim
    /// bit, so any observer that still sees the slot claimed also sees the tenancy's
    /// own generation — and the release-ordered bitmap clear publishes the record
    /// cleanup to any scanner that observes the shard as (partially) vacant.
    pub fn release(&self, id: SlotId) {
        let si = shard_of(id.0);
        let bit = id.0 % SHARD_SLOTS;
        let shard = &self.shards[si];
        shard.gens.gens[bit].fetch_add(1, Ordering::Release);
        let was = shard
            .control
            .claimed
            .fetch_and(!(1u64 << bit), Ordering::Release);
        debug_assert!(
            was & (1 << bit) != 0,
            "releasing a slot that was not claimed"
        );
    }

    /// Whether the given slot index is currently claimed.
    pub fn is_claimed(&self, index: usize) -> bool {
        let bits = self.shards[shard_of(index)]
            .control
            .claimed
            .load(Ordering::Acquire);
        bits & (1 << (index % SHARD_SLOTS)) != 0
    }

    /// The slot's current generation: bumped on every claim and every release, so
    /// it is odd exactly while the slot is claimed, and no two tenancies of the
    /// same slot share a value. Asynchronous actors (QSense's evictor) tag their
    /// writes with the generation they observed and re-validate it afterwards to
    /// detect that the slot changed hands underneath them.
    #[inline]
    pub fn generation(&self, index: usize) -> u64 {
        self.shards[shard_of(index)].gens.gens[index % SHARD_SLOTS].load(Ordering::Acquire)
    }

    /// Returns the record stored in slot `index` regardless of claim state.
    ///
    /// Scanners use this to read hazard pointers / epochs of *all* slots; records of
    /// unclaimed slots hold neutral values (null hazard pointers, quiesced epochs), so
    /// including them is always conservative.
    pub fn get(&self, index: usize) -> &T {
        &self.slots[index].state
    }

    /// Returns the record for a claimed slot id (same as [`get`](Self::get), but takes
    /// the typed id the owner holds).
    pub fn get_mine(&self, id: SlotId) -> &T {
        &self.slots[id.0].state
    }

    /// The statistics stripe owned by slot `id` — the counters a handle bumps on
    /// its hot path (`retire`, quiescent states, scans).
    #[inline]
    pub fn stats(&self, id: SlotId) -> &StatStripe {
        &self.slots[id.0].stats
    }

    /// Sums every touched slot's statistics stripe into `snap`, plus the
    /// registry's own shard-skip/-walk counters. Stripes of released slots are
    /// included (their shard stays *touched*): counts survive their writer's
    /// deregistration. Shards never claimed are stepped over on one bitmap load.
    pub fn merge_stats(&self, snap: &mut StatsSnapshot) {
        for (si, shard) in self.shards.iter().enumerate() {
            let touched = shard.control.touched.load(Ordering::Relaxed);
            if touched == 0 {
                continue;
            }
            let base = si * SHARD_SLOTS;
            for bit in 0..SHARD_SLOTS {
                if touched & (1 << bit) != 0 {
                    self.slots[base + bit].stats.merge_into(snap);
                }
            }
        }
        snap.shard_skips += self.shard_skips.load(Ordering::Relaxed);
        snap.shard_walks += self.shard_walks.load(Ordering::Relaxed);
    }

    /// Snapshots per-record pointer sets into `out` (cleared first), sorted and
    /// deduplicated for binary search — the shared `get_protected_nodes` step of
    /// every scanning scheme (HP, Cadence, QSense). `collect` appends one
    /// record's published pointers to the buffer.
    ///
    /// Wholly-vacant shards are stepped over on a single bitmap load (and
    /// counted in [`StatsSnapshot::shard_skips`]); within an active shard every
    /// slot is visited, claimed or not — unclaimed records hold null pointers,
    /// so including them is conservative, and the module docs give the argument
    /// for why excluding vacant *shards* is exact. Allocation-free whenever
    /// `out` already has capacity for the `N·K` worst case.
    pub fn collect_protected(
        &self,
        out: &mut Vec<*mut u8>,
        mut collect: impl FnMut(&T, &mut Vec<*mut u8>),
    ) {
        out.clear();
        for (si, shard) in self.shards.iter().enumerate() {
            if shard.control.claimed.load(Ordering::Acquire) == 0 {
                self.shard_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.shard_walks.fetch_add(1, Ordering::Relaxed);
            let base = si * SHARD_SLOTS;
            let end = (base + SHARD_SLOTS).min(self.slots.len());
            for slot in &self.slots[base..end] {
                collect(&slot.state, out);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// If slot `index`'s shard is wholly vacant, returns the first index of the
    /// next non-vacant shard (or `capacity` if none) — the jump target that lets
    /// cursor walks ([`EpochCursor::poll`](../qsbr-crate) consumers) step over
    /// vacant shards in O(#shards) instead of O(capacity). Returns `index`
    /// unchanged when its shard has any claimed slot. Skipped shards are counted
    /// in [`StatsSnapshot::shard_skips`].
    pub fn skip_vacant_shards(&self, index: usize) -> usize {
        let mut si = shard_of(index);
        let mut skipped = 0u64;
        while si < self.shards.len() {
            if self.shards[si].control.claimed.load(Ordering::Acquire) != 0 {
                break;
            }
            skipped += 1;
            si += 1;
        }
        if skipped == 0 {
            return index;
        }
        self.shard_skips.fetch_add(skipped, Ordering::Relaxed);
        (si * SHARD_SLOTS).min(self.capacity())
    }

    /// Iterates over `(index, record)` for every slot, claimed or not.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().map(|(i, s)| (i, &*s.state))
    }

    /// Iterates over `(index, record)` for currently claimed slots only, stepping
    /// over wholly-vacant shards on one bitmap load each (counted in
    /// [`StatsSnapshot::shard_skips`] / [`shard_walks`](StatsSnapshot::shard_walks)).
    ///
    /// Note the inherent race: a slot may be claimed or released while the iteration
    /// is in progress. Schemes must therefore make sure that *releasing* a slot leaves
    /// its record in a state that is safe to miss (e.g. hazard pointers cleared only
    /// after the owner's retired nodes have been handed off or reclaimed).
    pub fn iter_claimed(&self) -> impl Iterator<Item = (usize, &T)> {
        self.shards.iter().enumerate().flat_map(move |(si, shard)| {
            let bits = shard.control.claimed.load(Ordering::Acquire);
            if bits == 0 {
                self.shard_skips.fetch_add(1, Ordering::Relaxed);
            } else {
                self.shard_walks.fetch_add(1, Ordering::Relaxed);
            }
            let base = si * SHARD_SLOTS;
            (0..SHARD_SLOTS)
                .filter(move |&bit| bits & (1 << bit) != 0)
                .map(move |bit| {
                    let i = base + bit;
                    (i, &*self.slots[i].state)
                })
        })
    }

    /// Shards stepped over as wholly vacant so far (diagnostics/tests; also
    /// merged into [`StatsSnapshot::shard_skips`] by [`merge_stats`](Self::merge_stats)).
    pub fn shard_skip_count(&self) -> u64 {
        self.shard_skips.load(Ordering::Relaxed)
    }

    /// Shards actually walked so far (diagnostics/tests).
    pub fn shard_walk_count(&self) -> u64 {
        self.shard_walks.load(Ordering::Relaxed)
    }
}

impl<T> fmt::Debug for Registry<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("capacity", &self.capacity())
            .field("shards", &self.shard_count())
            .field("claimed", &self.claimed_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn acquire_release_round_trip() {
        let reg: Registry<AtomicUsize> = Registry::new(2, |_| AtomicUsize::new(0));
        assert_eq!(reg.capacity(), 2);
        assert_eq!(reg.shard_count(), 1);
        let a = reg.acquire().unwrap();
        let b = reg.acquire().unwrap();
        assert_ne!(a, b);
        assert!(reg.acquire().is_none(), "registry should be full");
        assert_eq!(
            reg.try_acquire().unwrap_err(),
            RegistryFull { capacity: 2 },
            "try_acquire names the exhausted capacity"
        );
        assert_eq!(reg.claimed_count(), 2);
        reg.release(a);
        assert_eq!(reg.claimed_count(), 1);
        let c = reg.acquire().unwrap();
        assert_eq!(
            c.index(),
            a.index(),
            "within one shard the lowest free bit reuses the released slot"
        );
        reg.release(b);
        reg.release(c);
        assert_eq!(reg.claimed_count(), 0);
    }

    #[test]
    fn generations_are_odd_while_claimed_and_unique_per_tenancy() {
        let reg: Registry<AtomicUsize> = Registry::new(2, |_| AtomicUsize::new(0));
        assert_eq!(reg.generation(0), 0, "vacant slots start at generation 0");
        let a = reg.acquire().unwrap();
        let g1 = reg.generation(a.index());
        assert_eq!(g1 % 2, 1, "claimed slots have odd generations");
        reg.release(a);
        assert_eq!(reg.generation(a.index()), g1 + 1, "release bumps to even");
        let b = reg.acquire().unwrap();
        assert_eq!(
            b.index(),
            a.index(),
            "single-shard lowest-free-bit policy reuses the slot"
        );
        let g2 = reg.generation(b.index());
        assert_eq!(g2, g1 + 2, "each tenancy gets a fresh generation");
        reg.release(b);
    }

    #[test]
    fn records_are_initialized_per_index() {
        let reg: Registry<usize> = Registry::new(4, |i| i * 10);
        for (i, v) in reg.iter_all() {
            assert_eq!(*v, i * 10);
        }
    }

    #[test]
    fn iter_claimed_sees_only_claimed_slots() {
        let reg: Registry<AtomicUsize> = Registry::new(3, |_| AtomicUsize::new(0));
        let a = reg.acquire().unwrap();
        reg.get_mine(a).store(7, Ordering::Relaxed);
        let claimed: Vec<_> = reg.iter_claimed().map(|(i, _)| i).collect();
        assert_eq!(claimed, vec![a.index()]);
        assert!(reg.is_claimed(a.index()));
        assert_eq!(reg.get(a.index()).load(Ordering::Relaxed), 7);
        reg.release(a);
        assert_eq!(reg.iter_claimed().count(), 0);
    }

    #[test]
    fn concurrent_acquisition_hands_out_distinct_slots() {
        let reg: Arc<Registry<AtomicUsize>> = Arc::new(Registry::new(8, |_| AtomicUsize::new(0)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    let id = reg.acquire().expect("capacity is exactly the thread count");
                    id.index()
                })
            })
            .collect();
        let mut indices: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), 8, "every thread must get a distinct slot");
    }

    #[test]
    fn concurrent_acquisition_fills_a_multi_shard_registry_exactly() {
        // 20 slots = 2 full shards + a 4-slot tail shard; 20 threads racing with
        // round-robin homes and spill must each get a distinct in-range slot.
        const CAP: usize = 20;
        let reg: Arc<Registry<AtomicUsize>> = Arc::new(Registry::new(CAP, |_| AtomicUsize::new(0)));
        let handles: Vec<_> = (0..CAP)
            .map(|_| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || reg.acquire().expect("capacity matches threads").index())
            })
            .collect();
        let mut indices: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), CAP);
        assert!(
            indices.iter().all(|&i| i < CAP),
            "tail-shard bits beyond capacity stay unused"
        );
        assert!(reg.acquire().is_none(), "registry is exactly full");
    }

    #[test]
    fn round_robin_homes_spread_registrants_across_shards() {
        let reg: Registry<usize> = Registry::new(64, |_| 0);
        assert_eq!(reg.shard_count(), 8);
        let ids: Vec<_> = (0..8).map(|_| reg.acquire().unwrap()).collect();
        let mut shards: Vec<_> = ids.iter().map(|id| id.shard()).collect();
        shards.sort_unstable();
        shards.dedup();
        assert_eq!(
            shards.len(),
            8,
            "8 sequential registrations land in 8 distinct home shards"
        );
    }

    #[test]
    fn scans_skip_wholly_vacant_shards() {
        let reg: Registry<AtomicUsize> = Registry::new(256, |_| AtomicUsize::new(0));
        assert_eq!(reg.shard_count(), 32);
        // Two registrants: at most two active shards.
        let a = reg.acquire().unwrap();
        let b = reg.acquire().unwrap();
        let mut out = Vec::new();
        reg.collect_protected(&mut out, |_, _| {});
        let skips = reg.shard_skip_count();
        let walks = reg.shard_walk_count();
        assert_eq!(walks + skips, 32, "every shard classified exactly once");
        assert!(walks <= 2, "scan walks only the active shards, got {walks}");
        assert!(
            skips >= 30,
            "vacant shards are skipped in O(1), got {skips}"
        );
        reg.release(a);
        reg.release(b);
        // All vacant now: a scan touches no slot lines at all.
        let before = reg.shard_walk_count();
        reg.collect_protected(&mut out, |_, _| panic!("no shard should be walked"));
        assert_eq!(reg.shard_walk_count(), before);
    }

    #[test]
    fn skip_vacant_shards_jumps_to_the_next_active_shard() {
        let reg: Registry<AtomicUsize> = Registry::new(64, |_| AtomicUsize::new(0));
        // Occupy only shard 5 (slots 40..48): deal homes until one lands there.
        let id = loop {
            let id = reg.acquire().unwrap();
            if id.shard() == 5 {
                break id;
            }
            reg.release(id);
        };
        assert_eq!(reg.skip_vacant_shards(0), 40, "jumps over shards 0..5");
        assert_eq!(reg.skip_vacant_shards(41), 41, "active shard: no jump");
        assert_eq!(
            reg.skip_vacant_shards(48),
            64,
            "nothing after shard 5: jump to capacity"
        );
        reg.release(id);
        assert_eq!(
            reg.skip_vacant_shards(0),
            64,
            "empty registry: one jump to the end"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: Registry<u8> = Registry::new(0, |_| 0);
    }

    #[test]
    fn per_slot_stats_merge_and_survive_release() {
        let reg: Registry<AtomicUsize> = Registry::new(3, |_| AtomicUsize::new(0));
        let a = reg.acquire().unwrap();
        let b = reg.acquire().unwrap();
        reg.stats(a).add_retired(5);
        reg.stats(b).add_retired(2);
        reg.stats(b).add_freed(1);
        let mut snap = crate::stats::StatsSnapshot::default();
        reg.merge_stats(&mut snap);
        assert_eq!(snap.retired, 7);
        assert_eq!(snap.freed, 1);
        // Counts persist after the writer leaves.
        reg.release(b);
        let mut snap = crate::stats::StatsSnapshot::default();
        reg.merge_stats(&mut snap);
        assert_eq!(snap.retired, 7);
        reg.release(a);
    }

    #[test]
    fn merge_stats_reports_shard_skip_and_walk_counters() {
        let reg: Registry<AtomicUsize> = Registry::new(32, |_| AtomicUsize::new(0));
        let a = reg.acquire().unwrap();
        let mut out = Vec::new();
        reg.collect_protected(&mut out, |_, _| {});
        let mut snap = crate::stats::StatsSnapshot::default();
        reg.merge_stats(&mut snap);
        assert_eq!(snap.shard_skips + snap.shard_walks, 4);
        assert!(snap.shard_walks >= 1);
        reg.release(a);
    }

    #[test]
    fn concurrent_striped_registry_stats_lose_nothing() {
        const THREADS: usize = 8;
        const OPS: u64 = 5_000;
        let reg: Arc<Registry<AtomicUsize>> =
            Arc::new(Registry::new(THREADS, |_| AtomicUsize::new(0)));
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    let id = reg.acquire().expect("capacity matches thread count");
                    for _ in 0..OPS {
                        reg.stats(id).add_retired(1);
                        reg.stats(id).add_freed(1);
                    }
                    reg.release(id);
                })
            })
            .collect();
        for t in workers {
            t.join().unwrap();
        }
        let mut snap = crate::stats::StatsSnapshot::default();
        reg.merge_stats(&mut snap);
        assert_eq!(snap.retired, THREADS as u64 * OPS);
        assert_eq!(snap.freed, THREADS as u64 * OPS);
    }
}
