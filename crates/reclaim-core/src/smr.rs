//! The scheme-facing interface: [`Smr`] (one per scheme instance, shared) and
//! [`SmrHandle`] (one per worker thread).
//!
//! The paper's QSense interface consists of exactly three functions
//! (`manage_qsense_state`, `assign_HP`, `free_node_later`) plus the rule set in §1.3
//! that says where to call them. This trait pair is the Rust rendering of that
//! interface, generalized so that every scheme in the evaluation (None, QSBR, HP,
//! Cadence, QSense) implements it and the data structures stay scheme-agnostic:
//!
//! | paper call | trait method | rule (paper §1.3) |
//! |------------|--------------|--------------------|
//! | `manage_qsense_state()` | [`SmrHandle::begin_op`] | call in states where no shared references are held — i.e. at the start of every data-structure operation |
//! | `assign_HP(node, i)` | [`SmrHandle::protect`] | call before using a reference to a node, then re-validate the reference |
//! | `free_node_later(node)` | [`SmrHandle::retire`] | call where `free` would be called sequentially, after the node is unlinked |
//!
//! ## The allocation-side hook
//!
//! The paper's three calls cover protection and retirement, but era/interval
//! reclamation (Hazard Eras, 2GE-IBR — the `he` crate) needs one more touch
//! point: every node must be **stamped with the era it was allocated in**, so
//! that its lifetime interval `[birth, retire]` can later be tested against
//! readers' announced eras. [`SmrHandle::alloc_node`] is that hook: data
//! structures call it at every node allocation site, store the returned stamp
//! in the node, and pass the stamp back through
//! [`SmrHandle::retire_with_birth`] when the node is unlinked. For the seven
//! non-era schemes both are free: `alloc_node` defaults to returning
//! [`NO_BIRTH_ERA`](crate::clock::NO_BIRTH_ERA) without touching shared state,
//! and `retire_with_birth` defaults to discarding the stamp and delegating to
//! [`retire`](SmrHandle::retire).

use crate::budget::BudgetVerdict;
use crate::clock::{Era, NO_BIRTH_ERA};
use crate::retired::DropFn;
use crate::stats::StatsSnapshot;
use crate::telemetry::Telemetry;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Error returned by [`Smr::try_register`] when every registry slot is claimed:
/// more handles are simultaneously live than the scheme's configured
/// `max_threads`. Carries the scheme name and the exhausted capacity so the
/// failure names its own fix instead of surfacing as an opaque slot-`Option`
/// unwrap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapacityExhausted {
    /// The scheme that refused the registration (`"hp"`, `"qsense"`, …).
    pub scheme: &'static str,
    /// The configured capacity (`SmrConfig::max_threads`) that is fully claimed.
    pub capacity: usize,
}

impl fmt::Display for CapacityExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: cannot register another handle: all {} registry slots are claimed \
             (SmrConfig::max_threads = {}); raise max_threads, drop an existing \
             handle first, or share handles through a LeasePool",
            self.scheme, self.capacity, self.capacity
        )
    }
}

impl Error for CapacityExhausted {}

/// A safe-memory-reclamation scheme instance.
///
/// The scheme object owns all shared state (hazard-pointer registry, global epoch,
/// fallback flag, rooster threads, …). Worker threads obtain a per-thread
/// [`SmrHandle`] through [`register`](Smr::register) and perform every data-structure
/// operation through that handle.
pub trait Smr: Send + Sync + 'static {
    /// The per-thread handle type.
    type Handle: SmrHandle;

    /// Registers the calling thread, claiming one of the `N` slots, or reports
    /// a descriptive [`CapacityExhausted`] error when more than `max_threads`
    /// handles are simultaneously live. The non-panicking twin of
    /// [`register`](Smr::register) — thread pools and lease pools that can
    /// retry, wait, or shed load should prefer it.
    fn try_register(self: &Arc<Self>) -> Result<Self::Handle, CapacityExhausted>;

    /// Registers the calling thread, claiming one of the `N` slots.
    ///
    /// # Panics
    ///
    /// Panics with the [`CapacityExhausted`] message if more than `max_threads`
    /// handles are simultaneously live.
    fn register(self: &Arc<Self>) -> Self::Handle {
        match self.try_register() {
            Ok(handle) => handle,
            Err(e) => panic!("{e}"),
        }
    }

    /// A short human-readable scheme name used by the benchmark harness
    /// (`"none"`, `"qsbr"`, `"hp"`, `"cadence"`, `"qsense"`).
    fn name(&self) -> &'static str;

    /// A snapshot of the scheme's reclamation counters.
    fn stats(&self) -> StatsSnapshot;

    /// The scheme's limbo-budget verdict so far (peak bytes, time over
    /// budget, escalations taken) — `None` for schemes that carry no budget
    /// governor. Schemes that do return a verdict even without a configured
    /// budget (tracking-only: `budget_bytes == 0`, always within budget).
    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        None
    }

    /// The scheme's telemetry state ([`crate::telemetry`]): histograms of op
    /// latency, scan duration and retire→free delay. `None` for schemes that
    /// carry no telemetry; every in-tree scheme returns `Some` (recording is
    /// still gated on [`Telemetry::is_enabled`], off by default).
    fn telemetry(&self) -> Option<&Telemetry> {
        None
    }
}

/// Per-thread handle to a reclamation scheme.
///
/// Handles are `Send` (a worker thread may be moved by a thread pool) but not `Sync`:
/// all methods take `&mut self` and must only ever be called by the owning thread.
pub trait SmrHandle: Send {
    /// Declares an operation boundary — the paper's `manage_qsense_state`.
    ///
    /// Must be called at the start of every data-structure operation, at a point
    /// where the thread holds no references to shared nodes. Schemes use it to batch
    /// quiescent states (QSBR/QSense), check the fallback flag (QSense) and signal
    /// presence (QSense).
    fn begin_op(&mut self);

    /// Declares the end of a data-structure operation. The thread must again hold no
    /// references to shared nodes. Schemes use it to drop protections eagerly.
    fn end_op(&mut self);

    /// Publishes a protection (hazard pointer) for `ptr` in slot `index` — the
    /// paper's `assign_HP`.
    ///
    /// After this returns, the caller must *re-validate* that the node is still
    /// reachable before dereferencing it (step 4 of Michael's methodology, §3.2);
    /// schemes guarantee that if validation succeeds the node will not be freed while
    /// the protection stays in place. Slot indices must be `< hp_per_thread`.
    ///
    /// Schemes that do not rely on per-node protection (QSBR, Leaky) implement this
    /// as a no-op — but note that QSense does *not*: it keeps hazard pointers
    /// up to date even on the fast path (paper §4.1).
    fn protect(&mut self, index: usize, ptr: *mut u8);

    /// Clears every protection slot of this thread.
    fn clear_protections(&mut self);

    /// Allocation-side hook: returns the **birth era** to stamp into a node the
    /// caller is about to allocate, and lets the scheme account for the
    /// allocation (the era schemes advance their global era clock once per
    /// era-advance interval of allocations — a constant or limbo-adaptive,
    /// per `SmrConfig::era_policy` — which is what bounds the garbage a
    /// stalled reader can pin).
    ///
    /// Data structures call this once per node allocation, store the returned
    /// value in the node, and hand it back via
    /// [`retire_with_birth`](Self::retire_with_birth) when the node is
    /// unlinked. The default implementation returns
    /// [`NO_BIRTH_ERA`](crate::clock::NO_BIRTH_ERA) and touches nothing — the
    /// no-op for every non-era scheme.
    fn alloc_node(&mut self) -> Era {
        NO_BIRTH_ERA
    }

    /// Hands an unlinked node to the scheme for deferred reclamation — the paper's
    /// `free_node_later`.
    ///
    /// # Safety
    ///
    /// * `ptr` must have been unlinked from the data structure before the call (the
    ///   node is in the *removed* state);
    /// * the same pointer must not be retired twice;
    /// * `drop_fn(ptr)` must correctly release the node.
    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn);

    /// Like [`retire`](Self::retire), but also passes the node's allocation-time
    /// birth era (the value [`alloc_node`](Self::alloc_node) returned when the
    /// node was created). Era schemes use it to bound the node's lifetime
    /// interval `[birth, retire]`; the default implementation discards the
    /// stamp and delegates to `retire`.
    ///
    /// # Safety
    ///
    /// Same contract as [`retire`](Self::retire). `birth_era` must be the stamp
    /// `alloc_node` produced for this node, or
    /// [`NO_BIRTH_ERA`](crate::clock::NO_BIRTH_ERA) (always safe: the era
    /// schemes treat an unstamped node as born before every announced era).
    unsafe fn retire_with_birth(&mut self, ptr: *mut u8, drop_fn: DropFn, birth_era: Era) {
        let _ = birth_era;
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.retire(ptr, drop_fn) }
    }

    /// The fully stamped retire: birth era *and* allocation size in bytes.
    /// The typed [`retire_box`](crate::retire_box) /
    /// [`retire_box_with_birth`](crate::retire_box_with_birth) entry points
    /// route through here (they know the `Layout`); schemes that account
    /// limbo in bytes override this as their primary retire path and route
    /// the size-unknown variants through it with a zero stamp. The default
    /// discards the size and delegates to
    /// [`retire_with_birth`](Self::retire_with_birth).
    ///
    /// # Safety
    ///
    /// Same contract as [`retire_with_birth`](Self::retire_with_birth);
    /// additionally `size_bytes` must not exceed the node's actual allocation
    /// size (0 = unknown, never over-stated).
    unsafe fn retire_sized(
        &mut self,
        ptr: *mut u8,
        drop_fn: DropFn,
        birth_era: Era,
        size_bytes: usize,
    ) {
        let _ = size_bytes;
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.retire_with_birth(ptr, drop_fn, birth_era) }
    }

    /// Forces a best-effort reclamation pass over this thread's retired nodes,
    /// regardless of thresholds. Useful at the end of a benchmark phase and in tests.
    fn flush(&mut self);

    /// Number of nodes this thread has retired but not yet freed (its limbo /
    /// removed-nodes list length).
    fn local_in_limbo(&self) -> usize;

    /// Stamped bytes this thread has retired but not yet freed. Defaults to 0
    /// for schemes that do not account bytes; byte-accounting schemes return
    /// their local bags' O(1) byte totals.
    fn local_limbo_bytes(&self) -> usize {
        0
    }

    /// Telemetry op-bracket entry ([`crate::telemetry::HandleTelemetry::op_begin`]):
    /// called by [`crate::guard::Guard`] right after [`begin_op`](Self::begin_op).
    /// Returns the start instant for the 1-in-N sampled ops, `None` otherwise.
    /// The default (for schemes without telemetry) is a constant `None`, which
    /// the guard bracket compiles away.
    fn telemetry_op_begin(&mut self) -> Option<Instant> {
        None
    }

    /// Telemetry op-bracket exit: records the sampled op's latency. Called by
    /// the guard's drop with the instant `telemetry_op_begin` returned.
    fn telemetry_op_end(&mut self, started: Instant) {
        let _ = started;
    }
}

/// Returns the type-erased destructor for a `Box<T>`-allocated node.
///
/// The returned function reconstructs the `Box` and drops it, releasing the
/// allocation and running `T`'s destructor.
pub fn drop_fn_for<T>() -> DropFn {
    unsafe fn drop_box<T>(ptr: *mut u8) {
        // SAFETY: the contract of `SmrHandle::retire` guarantees `ptr` originated
        // from `Box::<T>::into_raw` and is dropped exactly once.
        #[allow(clippy::disallowed_methods)]
        // sanctioned: drop_fn_for's generated thunk: the canonical free path
        unsafe {
            drop(Box::from_raw(ptr.cast::<T>()))
        }
    }
    drop_box::<T>
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Tracked {
        counter: Arc<AtomicUsize>,
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.counter.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn drop_fn_runs_destructor_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let raw = Box::into_raw(Box::new(Tracked {
            counter: Arc::clone(&counter),
        }));
        let f = drop_fn_for::<Tracked>();
        // SAFETY: `raw` was just leaked via Box::into_raw; the drop function matches its type and runs once.
        unsafe { f(raw.cast()) };
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drop_fn_is_monomorphic_per_type() {
        // Different types produce different function pointers; same type, same pointer.
        assert_eq!(drop_fn_for::<u32>() as usize, drop_fn_for::<u32>() as usize);
    }
}
