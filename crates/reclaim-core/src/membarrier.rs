//! Asymmetric process-wide memory barrier.
//!
//! Cadence's correctness argument (paper §5.1, "Note on assumptions") rests on the
//! property that a context switch acts as a memory barrier for the thread being
//! switched out, so a rooster process waking up on every core publishes all worker
//! threads' outstanding hazard-pointer stores within one sleep interval `T`.
//!
//! A user-space Rust reproduction cannot force context switches on other threads, so
//! this module substitutes the mechanism while preserving the guarantee the proof
//! needs — *"every hazard-pointer store issued before time `t` is globally visible by
//! `t + T`"* — in two layers:
//!
//! 1. **`membarrier(2)`** (Linux): the `MEMBARRIER_CMD_GLOBAL` command makes the
//!    kernel execute a memory barrier on every CPU running a thread of this process,
//!    which is precisely the asymmetric fence the rooster wake-up stands in for. It is
//!    issued by the rooster thread once per wake-up, so its cost (an RCU grace period,
//!    tens of microseconds to a few milliseconds) is amortized over every operation
//!    performed during `T`, exactly like the paper's context switches.
//! 2. **Fallback** (non-Linux, unsupported kernels, or `use_membarrier = false`): a
//!    plain `SeqCst` fence on the rooster thread plus the language-level guarantee
//!    that atomic stores become visible to other threads in finite time. On x86-TSO
//!    store buffers drain in nanoseconds while `T` is milliseconds, so the deferred
//!    reclamation wait of `T + ε` dominates by orders of magnitude. DESIGN.md §3
//!    documents this substitution.
//!
//! The syscall is issued directly (no `libc` dependency) on x86-64 and aarch64 Linux.

use std::sync::atomic::{fence, Ordering};
use std::sync::OnceLock;

/// `MEMBARRIER_CMD_QUERY`: ask the kernel which commands are supported.
const CMD_QUERY: i64 = 0;
/// `MEMBARRIER_CMD_GLOBAL`: execute a memory barrier on all CPUs running this process.
const CMD_GLOBAL: i64 = 1;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_membarrier(cmd: i64, flags: i64) -> i64 {
    // syscall number for membarrier on x86-64 Linux.
    const NR_MEMBARRIER: i64 = 324;
    let ret: i64;
    // SAFETY: membarrier(2) takes no pointers and cannot fault; all register clobbers are declared.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") NR_MEMBARRIER => ret,
            in("rdi") cmd,
            in("rsi") flags,
            in("rdx") 0_i64,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sys_membarrier(cmd: i64, flags: i64) -> i64 {
    // syscall number for membarrier on aarch64 Linux.
    const NR_MEMBARRIER: i64 = 283;
    let ret: i64;
    // SAFETY: membarrier(2) takes no pointers and cannot fault; all register clobbers are declared.
    unsafe {
        core::arch::asm!(
            "svc 0",
            inlateout("x0") cmd => ret,
            in("x1") flags,
            in("x2") 0_i64,
            in("x8") NR_MEMBARRIER,
            options(nostack),
        );
    }
    ret
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
unsafe fn sys_membarrier(_cmd: i64, _flags: i64) -> i64 {
    // Unsupported platform: report "not implemented" so callers fall back.
    -38 // -ENOSYS
}

/// Whether `MEMBARRIER_CMD_GLOBAL` is available on this kernel. Queried once.
pub fn is_supported() -> bool {
    static SUPPORTED: OnceLock<bool> = OnceLock::new();
    *SUPPORTED.get_or_init(|| {
        // SAFETY: CMD_QUERY has no side effects; it only reports the supported mask.
        let mask = unsafe { sys_membarrier(CMD_QUERY, 0) };
        mask >= 0 && (mask & CMD_GLOBAL) != 0
    })
}

/// Issues a process-wide heavy barrier: every other thread of this process is
/// guaranteed to have executed a full memory barrier by the time this returns.
///
/// Returns `true` if the kernel-assisted barrier was used, `false` if only the local
/// `SeqCst` fence fallback ran (callers relying on the fallback must also rely on the
/// deferred-reclamation age bound, which every caller in this workspace does).
pub fn heavy_barrier() -> bool {
    if is_supported() {
        // SAFETY: CMD_GLOBAL only orders memory; it cannot fault or corrupt state.
        let ret = unsafe { sys_membarrier(CMD_GLOBAL, 0) };
        if ret == 0 {
            return true;
        }
    }
    fence(Ordering::SeqCst);
    false
}

/// The store-side companion of [`heavy_barrier`]: a compiler-only fence. Threads that
/// publish hazard pointers need no hardware fence because the heavy barrier (or the
/// `T + ε` age bound) provides the ordering; this just prevents compiler reordering
/// of the publication with the subsequent validation load.
pub fn light_barrier() {
    std::sync::atomic::compiler_fence(Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_is_stable() {
        // Whatever the kernel answers, asking twice must agree (OnceLock caching).
        assert_eq!(is_supported(), is_supported());
    }

    #[test]
    fn heavy_barrier_never_panics_and_reports_mode() {
        let used_kernel = heavy_barrier();
        if used_kernel {
            assert!(is_supported());
        }
        // Either way a second call must also succeed.
        let _ = heavy_barrier();
    }

    #[test]
    fn light_barrier_is_callable_in_a_loop() {
        for _ in 0..1000 {
            light_barrier();
        }
    }
}
