//! A counting global allocator for memory-footprint experiments.
//!
//! The paper's Figure 5 (bottom row) shows QSBR "running out of memory and
//! eventually failing" when a delayed thread prevents quiescence. Node counts (the
//! `in_limbo` statistic every scheme exposes) already demonstrate the growth; this
//! module makes the same observation in *bytes*, as the operating system would see
//! it, by wrapping the system allocator with live-byte and peak counters.
//!
//! Usage (in a binary — examples, benches or the CLI; libraries must never install a
//! global allocator):
//!
//! ```ignore
//! use reclaim_core::alloc_track::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! fn main() {
//!     // ... run the workload ...
//!     println!("live = {} B, peak = {} B", ALLOC.live_bytes(), ALLOC.peak_bytes());
//! }
//! ```
//!
//! The counters are plain relaxed atomics: they are diagnostics, never used for
//! synchronization, and the allocator itself adds two atomic additions per
//! allocation/deallocation — cheap enough to leave enabled in the examples.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A wrapper around the system allocator that tracks live and peak heap usage.
#[derive(Debug)]
pub struct CountingAllocator {
    allocated: AtomicU64,
    freed: AtomicU64,
    peak: AtomicU64,
}

impl CountingAllocator {
    /// Creates a counting allocator (const, so it can be a `#[global_allocator]`).
    pub const fn new() -> Self {
        Self {
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Total bytes ever allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Total bytes ever freed.
    pub fn freed_bytes(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }

    /// Bytes currently live (allocated minus freed).
    pub fn live_bytes(&self) -> u64 {
        self.allocated_bytes().saturating_sub(self.freed_bytes())
    }

    /// High-water mark of live bytes observed so far.
    ///
    /// The peak is maintained with a compare-exchange loop on every allocation, so
    /// it can lag the true instantaneous maximum by the size of allocations racing
    /// with the update — good enough for the footprint plots this crate needs.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    fn record_alloc(&self, bytes: u64) {
        // Saturating: a racing thread can allocate *and* free between our
        // `fetch_add` and the `freed` load, making the freed snapshot exceed
        // the allocated one — a wrapping subtraction would poison the peak
        // with a near-2^64 value forever.
        let live = (self.allocated.fetch_add(bytes, Ordering::Relaxed) + bytes)
            .saturating_sub(self.freed.load(Ordering::Relaxed));
        let mut peak = self.peak.load(Ordering::Relaxed);
        while live > peak {
            match self
                .peak
                .compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(observed) => peak = observed,
            }
        }
    }

    fn record_free(&self, bytes: u64) {
        self.freed.fetch_add(bytes, Ordering::Relaxed);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: all methods delegate the actual allocation to the system allocator and
// only add monotonic counter updates around it, so the GlobalAlloc contract (valid
// pointers, correct layouts, no unwinding) is inherited from `System`.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim to the system allocator.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            self.record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.record_free(layout.size() as u64);
        // SAFETY: forwarded verbatim; `ptr`/`layout` validity is the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded verbatim; `ptr`/`layout` validity is the caller's contract.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            self.record_free(layout.size() as u64);
            self.record_alloc(new_size as u64);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is exercised directly (not installed globally) so that the test
    // observes exactly its own traffic.
    #[test]
    fn counters_follow_alloc_and_dealloc() {
        let tracker = CountingAllocator::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        // SAFETY: `layout` has non-zero size; the returned pointer is only used while the tracker lives.
        let ptr = unsafe { tracker.alloc(layout) };
        assert!(!ptr.is_null());
        assert_eq!(tracker.allocated_bytes(), 256);
        assert_eq!(tracker.live_bytes(), 256);
        assert_eq!(tracker.peak_bytes(), 256);
        // SAFETY: the pointer came from this tracker's `alloc` with the identical layout and is freed once.
        unsafe { tracker.dealloc(ptr, layout) };
        assert_eq!(tracker.freed_bytes(), 256);
        assert_eq!(tracker.live_bytes(), 0);
        assert_eq!(tracker.peak_bytes(), 256, "peak is a high-water mark");
    }

    #[test]
    fn realloc_moves_the_live_count_to_the_new_size() {
        let tracker = CountingAllocator::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        // SAFETY: `layout` has non-zero size; the returned pointer is only used while the tracker lives.
        let ptr = unsafe { tracker.alloc(layout) };
        let grown = unsafe { tracker.realloc(ptr, layout, 512) };
        assert!(!grown.is_null());
        assert_eq!(tracker.live_bytes(), 512);
        assert!(tracker.peak_bytes() >= 512);
        let grown_layout = Layout::from_size_align(512, 8).unwrap();
        // SAFETY: the pointer came from this tracker's `alloc` with the identical layout and is freed once.
        unsafe { tracker.dealloc(grown, grown_layout) };
        assert_eq!(tracker.live_bytes(), 0);
    }

    #[test]
    fn peak_tracks_the_largest_simultaneous_footprint() {
        let tracker = CountingAllocator::new();
        let layout = Layout::from_size_align(128, 8).unwrap();
        // SAFETY: `layout` has non-zero size; the returned pointer is only used while the tracker lives.
        let a = unsafe { tracker.alloc(layout) };
        // SAFETY: `layout` has non-zero size; the returned pointer is only used while the tracker lives.
        let b = unsafe { tracker.alloc(layout) };
        assert_eq!(tracker.peak_bytes(), 256);
        // SAFETY: the pointer came from this tracker's `alloc` with the identical layout and is freed once.
        unsafe { tracker.dealloc(a, layout) };
        // SAFETY: `layout` has non-zero size; the returned pointer is only used while the tracker lives.
        let c = unsafe { tracker.alloc(layout) };
        // Live never exceeded 256, so the peak must still be 256.
        assert_eq!(tracker.peak_bytes(), 256);
        // SAFETY: the pointer came from this tracker's `alloc` with the identical layout and is freed once.
        unsafe { tracker.dealloc(b, layout) };
        // SAFETY: the pointer came from this tracker's `alloc` with the identical layout and is freed once.
        unsafe { tracker.dealloc(c, layout) };
        assert_eq!(tracker.live_bytes(), 0);
    }

    #[test]
    fn stale_allocated_snapshot_cannot_poison_the_peak() {
        // Reproduces the cross-thread interleaving directly: another thread's
        // alloc+free lands entirely between this thread's `allocated` update
        // and its `freed` read, so the freed total exceeds the allocated
        // snapshot. The subtraction must saturate, not wrap the peak to ~2^64.
        let tracker = CountingAllocator::new();
        tracker.record_free(256);
        tracker.record_alloc(64);
        assert!(tracker.peak_bytes() <= 64, "peak must not wrap negative");
    }

    #[test]
    fn concurrent_traffic_balances_out() {
        use std::sync::Arc;
        use std::thread;
        let tracker = Arc::new(CountingAllocator::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let tracker = Arc::clone(&tracker);
                thread::spawn(move || {
                    let layout = Layout::from_size_align(32, 8).unwrap();
                    for _ in 0..1_000 {
                        // SAFETY: `layout` has non-zero size; the returned pointer is only used while the tracker lives.
                        let p = unsafe { tracker.alloc(layout) };
                        assert!(!p.is_null());
                        // SAFETY: the pointer came from this tracker's `alloc` with the identical layout and is freed once.
                        unsafe { tracker.dealloc(p, layout) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(tracker.live_bytes(), 0);
        assert_eq!(tracker.allocated_bytes(), 4 * 1_000 * 32);
    }
}
