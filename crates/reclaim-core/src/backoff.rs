//! Exponential backoff for contended compare-and-swap loops.
//!
//! The lock-free data structures retry their CAS loops on contention. Spinning
//! immediately burns memory bandwidth that the winning thread needs to make progress;
//! a short, exponentially growing pause (capped) is the standard remedy and is what
//! ASCYLIB — the code base the paper builds its structures on — uses as well.

use std::hint;
use std::thread;

/// Maximum exponent for the spinning phase: `2^6 = 64` `pause` instructions.
const SPIN_LIMIT: u32 = 6;
/// Maximum exponent overall; past this, [`Backoff::snooze`] yields to the scheduler.
const YIELD_LIMIT: u32 = 10;

/// An exponential backoff helper.
///
/// ```
/// use reclaim_core::Backoff;
///
/// let mut backoff = Backoff::new();
/// let mut attempts = 0;
/// loop {
///     attempts += 1;
///     if attempts == 4 {
///         break;
///     }
///     backoff.spin();
/// }
/// assert!(attempts == 4);
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Creates a fresh backoff counter.
    pub const fn new() -> Self {
        Self { step: 0 }
    }

    /// Resets the counter, e.g. after the operation finally succeeded.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// True once backing off has escalated past busy-spinning; callers that have an
    /// alternative strategy (e.g. helping) may switch to it at this point.
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }

    /// Busy-spin for `2^step` pause instructions (capped at `2^SPIN_LIMIT`).
    pub fn spin(&mut self) {
        let spins = 1_u32 << self.step.min(SPIN_LIMIT);
        for _ in 0..spins {
            hint::spin_loop();
        }
        if self.step <= YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// Backs off, escalating from busy-spinning to `thread::yield_now` once the
    /// counter passes the spin limit. This is the right call in loops that may have
    /// to wait for another thread to be scheduled (essential on machines with fewer
    /// cores than threads, as in this reproduction's container).
    pub fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            self.spin();
        } else {
            thread::yield_now();
            if self.step <= YIELD_LIMIT {
                self.step += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_escalates_and_completes() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.spin();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn reset_restarts_escalation() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn snooze_never_panics_past_the_limit() {
        let mut b = Backoff::new();
        for _ in 0..1000 {
            b.snooze();
        }
        assert!(b.is_completed());
    }
}
