//! Retired-node bookkeeping.
//!
//! When a data structure unlinks a node it hands the node to the reclamation scheme
//! via `retire` (the paper's `free_node_later`). The scheme must hold on to the node —
//! together with the timestamp of its removal, which Cadence's deferred reclamation
//! needs — until it can prove no other thread still uses it. [`RetiredPtr`] is the
//! Rust equivalent of the paper's `timestamped_node` wrapper (Algorithm 3), and
//! [`RetiredBag`] is one thread-local list of such wrappers (a limbo list in QSBR
//! terms, a removed-nodes list in HP/Cadence terms).

use crate::clock::Nanos;
use std::fmt;

/// A type-erased destructor: takes the pointer originally passed to `retire` and
/// releases the node's memory.
pub type DropFn = unsafe fn(*mut u8);

/// A retired node awaiting reclamation: pointer, destructor and removal timestamp.
pub struct RetiredPtr {
    ptr: *mut u8,
    drop_fn: DropFn,
    retired_at: Nanos,
}

// A RetiredPtr is just a deferred destructor call; the node it points to is already
// unreachable from the data structure, so moving the wrapper between threads is safe
// as long as only one thread ultimately runs the destructor (guaranteed by ownership).
unsafe impl Send for RetiredPtr {}

impl RetiredPtr {
    /// Wraps a retired node.
    ///
    /// # Safety
    ///
    /// `ptr` must be a valid, unlinked node that will not be retired again, and
    /// `drop_fn(ptr)` must correctly release it.
    pub unsafe fn new(ptr: *mut u8, drop_fn: DropFn, retired_at: Nanos) -> Self {
        debug_assert!(!ptr.is_null(), "retiring a null pointer");
        Self {
            ptr,
            drop_fn,
            retired_at,
        }
    }

    /// The retired node's address (used to match against hazard pointers).
    pub fn addr(&self) -> *mut u8 {
        self.ptr
    }

    /// Timestamp (scheme clock) at which the node was retired.
    pub fn retired_at(&self) -> Nanos {
        self.retired_at
    }

    /// `is_old_enough` from the paper (Algorithm 3, lines 36–39): the node may be
    /// considered for reclamation only once `now - retired_at >= min_age`, where
    /// `min_age = T + ε`.
    pub fn is_old_enough(&self, now: Nanos, min_age: Nanos) -> bool {
        now.saturating_sub(self.retired_at) >= min_age
    }

    /// Runs the destructor, consuming the wrapper.
    ///
    /// # Safety
    ///
    /// No thread may hold a hazardous reference to the node (this is exactly what the
    /// scheme's scan / grace-period logic establishes before calling this).
    pub unsafe fn reclaim(self) {
        (self.drop_fn)(self.ptr);
        // `self` is consumed; forgetting nothing — RetiredPtr has no Drop impl, so the
        // wrapper itself is released trivially.
    }
}

impl fmt::Debug for RetiredPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetiredPtr")
            .field("ptr", &self.ptr)
            .field("retired_at", &self.retired_at)
            .finish()
    }
}

/// A thread-local list of retired nodes awaiting reclamation.
///
/// The owning thread pushes retired nodes and periodically drains the bag through a
/// scheme-specific predicate (hazard-pointer scan, grace-period check, age check).
/// Other threads never touch the bag, so no synchronization is needed.
#[derive(Debug, Default)]
pub struct RetiredBag {
    nodes: Vec<RetiredPtr>,
}

impl RetiredBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Creates an empty bag with pre-allocated capacity (used by schemes that know
    /// their scan threshold `R`).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(cap),
        }
    }

    /// Number of nodes currently awaiting reclamation.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes await reclamation.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a retired node to the bag.
    pub fn push(&mut self, node: RetiredPtr) {
        self.nodes.push(node);
    }

    /// Moves every node out of `other` into `self` (used when QSense folds the three
    /// QSBR limbo lists into one Cadence removed-nodes list, §5.2).
    pub fn append(&mut self, other: &mut RetiredBag) {
        self.nodes.append(&mut other.nodes);
    }

    /// Reclaims every node for which `can_reclaim` returns true; nodes that are not
    /// yet safe remain in the bag. Returns the number of nodes reclaimed.
    ///
    /// # Safety
    ///
    /// The predicate must only return `true` for nodes that no other thread can still
    /// access (retired in the paper's terminology).
    pub unsafe fn reclaim_if(&mut self, mut can_reclaim: impl FnMut(&RetiredPtr) -> bool) -> usize {
        let mut kept = Vec::with_capacity(self.nodes.len());
        let mut freed = 0usize;
        for node in self.nodes.drain(..) {
            if can_reclaim(&node) {
                node.reclaim();
                freed += 1;
            } else {
                kept.push(node);
            }
        }
        self.nodes = kept;
        freed
    }

    /// Unconditionally reclaims every node in the bag. Returns the number reclaimed.
    ///
    /// # Safety
    ///
    /// Caller must guarantee that no thread can access any node in the bag (e.g. the
    /// scheme is being dropped and all handles are gone).
    pub unsafe fn reclaim_all(&mut self) -> usize {
        self.reclaim_if(|_| true)
    }

    /// Iterates over the retired nodes without reclaiming them.
    pub fn iter(&self) -> impl Iterator<Item = &RetiredPtr> {
        self.nodes.iter()
    }
}

impl Drop for RetiredBag {
    fn drop(&mut self) {
        // Dropping a non-empty bag would leak the nodes. Schemes drain their bags in
        // their own Drop impls (when it is provably safe); reaching this point with
        // leftovers indicates a scheme bug in debug builds, and in release we leak
        // rather than risk a double free.
        debug_assert!(
            self.nodes.is_empty(),
            "RetiredBag dropped with {} unreclaimed nodes",
            self.nodes.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct DropCounter {
        counter: Arc<AtomicUsize>,
    }

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.counter.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn retire_counter(counter: &Arc<AtomicUsize>, at: Nanos) -> RetiredPtr {
        let boxed = Box::new(DropCounter {
            counter: Arc::clone(counter),
        });
        let raw = Box::into_raw(boxed).cast::<u8>();
        unsafe fn drop_counter(ptr: *mut u8) {
            unsafe { drop(Box::from_raw(ptr.cast::<DropCounter>())) };
        }
        unsafe { RetiredPtr::new(raw, drop_counter, at) }
    }

    #[test]
    fn is_old_enough_respects_min_age() {
        let counter = Arc::new(AtomicUsize::new(0));
        let node = retire_counter(&counter, 1_000);
        assert!(!node.is_old_enough(1_500, 1_000));
        assert!(node.is_old_enough(2_000, 1_000));
        assert!(node.is_old_enough(2_500, 1_000));
        // Clean up.
        let mut bag = RetiredBag::new();
        bag.push(node);
        unsafe { bag.reclaim_all() };
    }

    #[test]
    fn is_old_enough_handles_clock_skew_saturating() {
        let counter = Arc::new(AtomicUsize::new(0));
        // Retired "in the future" relative to now: must not panic, must not be old.
        let node = retire_counter(&counter, 5_000);
        assert!(!node.is_old_enough(1_000, 1));
        let mut bag = RetiredBag::new();
        bag.push(node);
        unsafe { bag.reclaim_all() };
    }

    #[test]
    fn reclaim_if_frees_only_matching_nodes() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut bag = RetiredBag::with_capacity(4);
        for t in 0..4 {
            bag.push(retire_counter(&counter, t));
        }
        assert_eq!(bag.len(), 4);
        let freed = unsafe { bag.reclaim_if(|n| n.retired_at() < 2) };
        assert_eq!(freed, 2);
        assert_eq!(bag.len(), 2);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        let freed = unsafe { bag.reclaim_all() };
        assert_eq!(freed, 2);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert!(bag.is_empty());
    }

    #[test]
    fn append_moves_all_nodes() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut a = RetiredBag::new();
        let mut b = RetiredBag::new();
        a.push(retire_counter(&counter, 1));
        b.push(retire_counter(&counter, 2));
        b.push(retire_counter(&counter, 3));
        a.append(&mut b);
        assert_eq!(a.len(), 3);
        assert!(b.is_empty());
        assert_eq!(a.iter().count(), 3);
        unsafe { a.reclaim_all() };
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retired_ptr_reports_address() {
        let counter = Arc::new(AtomicUsize::new(0));
        let node = retire_counter(&counter, 0);
        assert!(!node.addr().is_null());
        let mut bag = RetiredBag::new();
        bag.push(node);
        unsafe { bag.reclaim_all() };
    }
}
