//! Retired-node bookkeeping.
//!
//! When a data structure unlinks a node it hands the node to the reclamation scheme
//! via `retire` (the paper's `free_node_later`). The scheme must hold on to the node —
//! together with the timestamp of its removal, which Cadence's deferred reclamation
//! needs — until it can prove no other thread still uses it. [`RetiredPtr`] is the
//! Rust equivalent of the paper's `timestamped_node` wrapper (Algorithm 3), and
//! [`RetiredBag`] is one thread-local list of such wrappers (a limbo list in QSBR
//! terms, a removed-nodes list in HP/Cadence terms).

use crate::clock::Nanos;
use std::fmt;

/// A type-erased destructor: takes the pointer originally passed to `retire` and
/// releases the node's memory.
pub type DropFn = unsafe fn(*mut u8);

/// A retired node awaiting reclamation: pointer, destructor and removal timestamp.
pub struct RetiredPtr {
    ptr: *mut u8,
    drop_fn: DropFn,
    retired_at: Nanos,
}

// A RetiredPtr is just a deferred destructor call; the node it points to is already
// unreachable from the data structure, so moving the wrapper between threads is safe
// as long as only one thread ultimately runs the destructor (guaranteed by ownership).
unsafe impl Send for RetiredPtr {}

impl RetiredPtr {
    /// Wraps a retired node.
    ///
    /// # Safety
    ///
    /// `ptr` must be a valid, unlinked node that will not be retired again, and
    /// `drop_fn(ptr)` must correctly release it.
    pub unsafe fn new(ptr: *mut u8, drop_fn: DropFn, retired_at: Nanos) -> Self {
        debug_assert!(!ptr.is_null(), "retiring a null pointer");
        Self {
            ptr,
            drop_fn,
            retired_at,
        }
    }

    /// The retired node's address (used to match against hazard pointers).
    pub fn addr(&self) -> *mut u8 {
        self.ptr
    }

    /// Timestamp (scheme clock) at which the node was retired.
    pub fn retired_at(&self) -> Nanos {
        self.retired_at
    }

    /// `is_old_enough` from the paper (Algorithm 3, lines 36–39): the node may be
    /// considered for reclamation only once `now - retired_at >= min_age`, where
    /// `min_age = T + ε`.
    pub fn is_old_enough(&self, now: Nanos, min_age: Nanos) -> bool {
        now.saturating_sub(self.retired_at) >= min_age
    }

    /// Runs the destructor, consuming the wrapper.
    ///
    /// # Safety
    ///
    /// No thread may hold a hazardous reference to the node (this is exactly what the
    /// scheme's scan / grace-period logic establishes before calling this).
    pub unsafe fn reclaim(self) {
        (self.drop_fn)(self.ptr);
        // `self` is consumed; forgetting nothing — RetiredPtr has no Drop impl, so the
        // wrapper itself is released trivially.
    }
}

impl fmt::Debug for RetiredPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetiredPtr")
            .field("ptr", &self.ptr)
            .field("retired_at", &self.retired_at)
            .finish()
    }
}

/// A thread-local list of retired nodes awaiting reclamation.
///
/// The owning thread pushes retired nodes and periodically drains the bag through a
/// scheme-specific predicate (hazard-pointer scan, grace-period check, age check).
/// Other threads never touch the bag, so no synchronization is needed.
#[derive(Debug, Default)]
pub struct RetiredBag {
    nodes: Vec<RetiredPtr>,
}

impl RetiredBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Creates an empty bag with pre-allocated capacity (used by schemes that know
    /// their scan threshold `R`).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(cap),
        }
    }

    /// Number of nodes currently awaiting reclamation.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes await reclamation.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a retired node to the bag.
    pub fn push(&mut self, node: RetiredPtr) {
        self.nodes.push(node);
    }

    /// Moves every node out of `other` into `self` (used when QSense folds the three
    /// QSBR limbo lists into one Cadence removed-nodes list, §5.2).
    pub fn append(&mut self, other: &mut RetiredBag) {
        self.nodes.append(&mut other.nodes);
    }

    /// Reclaims every node for which `can_reclaim` returns true; nodes that are not
    /// yet safe remain in the bag. Returns the number of nodes reclaimed.
    ///
    /// The partition is done in place with `swap_remove`, so a scan performs **zero
    /// heap allocations** — this runs on every scheme's reclamation path, up to once
    /// per `R` retires, and an earlier revision's drain-into-fresh-`Vec` approach
    /// made every scan pay an allocation proportional to the bag size. The price is
    /// that surviving nodes are reordered; no caller depends on bag order (nodes
    /// carry their own timestamps, and scans match by address).
    ///
    /// # Safety
    ///
    /// The predicate must only return `true` for nodes that no other thread can still
    /// access (retired in the paper's terminology).
    pub unsafe fn reclaim_if(&mut self, mut can_reclaim: impl FnMut(&RetiredPtr) -> bool) -> usize {
        let mut freed = 0usize;
        let mut i = 0usize;
        while i < self.nodes.len() {
            if can_reclaim(&self.nodes[i]) {
                let node = self.nodes.swap_remove(i);
                // SAFETY: forwarded from the caller's contract on `can_reclaim`.
                unsafe { node.reclaim() };
                freed += 1;
                // The node swapped into position `i` has not been examined yet; do
                // not advance.
            } else {
                i += 1;
            }
        }
        freed
    }

    /// Unconditionally reclaims every node in the bag. Returns the number reclaimed.
    ///
    /// # Safety
    ///
    /// Caller must guarantee that no thread can access any node in the bag (e.g. the
    /// scheme is being dropped and all handles are gone).
    pub unsafe fn reclaim_all(&mut self) -> usize {
        self.reclaim_if(|_| true)
    }

    /// Iterates over the retired nodes without reclaiming them.
    pub fn iter(&self) -> impl Iterator<Item = &RetiredPtr> {
        self.nodes.iter()
    }
}

impl Drop for RetiredBag {
    fn drop(&mut self) {
        // Dropping a non-empty bag would leak the nodes. Schemes drain their bags in
        // their own Drop impls (when it is provably safe); reaching this point with
        // leftovers indicates a scheme bug in debug builds, and in release we leak
        // rather than risk a double free.
        debug_assert!(
            self.nodes.is_empty(),
            "RetiredBag dropped with {} unreclaimed nodes",
            self.nodes.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct DropCounter {
        counter: Arc<AtomicUsize>,
    }

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.counter.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn retire_counter(counter: &Arc<AtomicUsize>, at: Nanos) -> RetiredPtr {
        let boxed = Box::new(DropCounter {
            counter: Arc::clone(counter),
        });
        let raw = Box::into_raw(boxed).cast::<u8>();
        unsafe fn drop_counter(ptr: *mut u8) {
            unsafe { drop(Box::from_raw(ptr.cast::<DropCounter>())) };
        }
        unsafe { RetiredPtr::new(raw, drop_counter, at) }
    }

    #[test]
    fn is_old_enough_respects_min_age() {
        let counter = Arc::new(AtomicUsize::new(0));
        let node = retire_counter(&counter, 1_000);
        assert!(!node.is_old_enough(1_500, 1_000));
        assert!(node.is_old_enough(2_000, 1_000));
        assert!(node.is_old_enough(2_500, 1_000));
        // Clean up.
        let mut bag = RetiredBag::new();
        bag.push(node);
        unsafe { bag.reclaim_all() };
    }

    #[test]
    fn is_old_enough_handles_clock_skew_saturating() {
        let counter = Arc::new(AtomicUsize::new(0));
        // Retired "in the future" relative to now: must not panic, must not be old.
        let node = retire_counter(&counter, 5_000);
        assert!(!node.is_old_enough(1_000, 1));
        let mut bag = RetiredBag::new();
        bag.push(node);
        unsafe { bag.reclaim_all() };
    }

    #[test]
    fn reclaim_if_frees_only_matching_nodes() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut bag = RetiredBag::with_capacity(4);
        for t in 0..4 {
            bag.push(retire_counter(&counter, t));
        }
        assert_eq!(bag.len(), 4);
        let freed = unsafe { bag.reclaim_if(|n| n.retired_at() < 2) };
        assert_eq!(freed, 2);
        assert_eq!(bag.len(), 2);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        let freed = unsafe { bag.reclaim_all() };
        assert_eq!(freed, 2);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert!(bag.is_empty());
    }

    /// The in-place swap-remove partition reorders survivors; what must hold is
    /// that exactly the matching nodes are freed and exactly the non-matching ones
    /// survive, for every interleaving of keep/free positions.
    #[test]
    fn reclaim_if_outcome_is_independent_of_node_order() {
        // Each mask bit selects which of 6 nodes are reclaimable this round.
        for mask in 0u32..64 {
            let counter = Arc::new(AtomicUsize::new(0));
            let mut bag = RetiredBag::new();
            for t in 0..6u64 {
                bag.push(retire_counter(&counter, t));
            }
            let expected_freed = mask.count_ones() as usize;
            let freed =
                unsafe { bag.reclaim_if(|n| mask & (1 << n.retired_at()) != 0) };
            assert_eq!(freed, expected_freed, "mask {mask:#b}");
            assert_eq!(counter.load(Ordering::SeqCst), expected_freed);
            assert_eq!(bag.len(), 6 - expected_freed);
            // Every survivor is a non-matching node, each exactly once.
            let mut survivors: Vec<u64> = bag.iter().map(RetiredPtr::retired_at).collect();
            survivors.sort_unstable();
            let expected: Vec<u64> =
                (0..6).filter(|t| mask & (1 << t) == 0).collect();
            assert_eq!(survivors, expected, "mask {mask:#b}");
            unsafe { bag.reclaim_all() };
        }
    }

    /// Steady-state scans must not allocate: repeated partitions of the same bag
    /// never grow its backing storage.
    #[test]
    fn reclaim_if_never_grows_capacity() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut bag = RetiredBag::with_capacity(16);
        for t in 0..16u64 {
            bag.push(retire_counter(&counter, t));
        }
        let cap = bag.nodes.capacity();
        for round in 0..8u64 {
            // Free two nodes per round, keep the rest.
            let freed = unsafe { bag.reclaim_if(|n| n.retired_at() / 2 == round) };
            assert_eq!(freed, 2);
            assert_eq!(bag.nodes.capacity(), cap, "scan reallocated the bag");
        }
        assert!(bag.is_empty());
    }

    #[test]
    fn append_moves_all_nodes() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut a = RetiredBag::new();
        let mut b = RetiredBag::new();
        a.push(retire_counter(&counter, 1));
        b.push(retire_counter(&counter, 2));
        b.push(retire_counter(&counter, 3));
        a.append(&mut b);
        assert_eq!(a.len(), 3);
        assert!(b.is_empty());
        assert_eq!(a.iter().count(), 3);
        unsafe { a.reclaim_all() };
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retired_ptr_reports_address() {
        let counter = Arc::new(AtomicUsize::new(0));
        let node = retire_counter(&counter, 0);
        assert!(!node.addr().is_null());
        let mut bag = RetiredBag::new();
        bag.push(node);
        unsafe { bag.reclaim_all() };
    }
}
