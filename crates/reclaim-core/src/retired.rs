//! Retired-node bookkeeping.
//!
//! When a data structure unlinks a node it hands the node to the reclamation scheme
//! via `retire` (the paper's `free_node_later`). The scheme must hold on to the node —
//! together with the timestamp of its removal, which Cadence's deferred reclamation
//! needs — until it can prove no other thread still uses it. [`RetiredPtr`] is the
//! Rust equivalent of the paper's `timestamped_node` wrapper (Algorithm 3); threads
//! collect these wrappers in [`crate::segbag::SegBag`] segment chains (a limbo list
//! in QSBR terms, a removed-nodes list in HP/Cadence terms).

use crate::clock::{Era, Nanos, NO_BIRTH_ERA};
use std::fmt;

/// A type-erased destructor: takes the pointer originally passed to `retire` and
/// releases the node's memory.
pub type DropFn = unsafe fn(*mut u8);

/// A retired node awaiting reclamation: pointer, destructor, removal timestamp,
/// allocation size, and — for the interval-based schemes — the era the node was
/// allocated in.
///
/// `retired_at` is whatever the retiring scheme's notion of "now" is: wall-clock
/// nanoseconds for the deferred-reclamation schemes (Cadence, QSense), the
/// logical retire era for Hazard Eras. `birth_era` is [`NO_BIRTH_ERA`] unless
/// the allocation site stamped the node through `SmrHandle::alloc_node` — the
/// era schemes treat an unstamped node as born before every announced era,
/// which is conservative (wider lifetime interval, never freed early).
/// `size` is the node's allocation size in bytes, stamped at retire by the
/// typed `retire_box*` entry points (which know the `Layout`); the raw
/// `retire` path stamps [`SIZE_UNKNOWN`] and such nodes count zero bytes
/// toward limbo budgets — byte budgets are only as complete as the callers'
/// stamping, never *over*-counted.
pub struct RetiredPtr {
    ptr: *mut u8,
    drop_fn: DropFn,
    retired_at: Nanos,
    birth_era: Era,
    size: u32,
    /// Coarse telemetry tick stamped at retire ([`crate::telemetry`]); 0 means
    /// "telemetry disabled at retire time". Fills the alignment padding after
    /// `size`, so the wrapper stays 40 bytes and segment geometry is untouched.
    tick: u32,
}

/// The size stamp of a node retired through the raw, size-unaware `retire`
/// path (also the honest stamp for zero-sized types). Budget accounting
/// treats these nodes as zero bytes.
pub const SIZE_UNKNOWN: u32 = 0;

// A RetiredPtr is just a deferred destructor call; the node it points to is already
// unreachable from the data structure, so moving the wrapper between threads is safe
// as long as only one thread ultimately runs the destructor (guaranteed by ownership).
unsafe impl Send for RetiredPtr {}

impl RetiredPtr {
    /// Wraps a retired node.
    ///
    /// # Safety
    ///
    /// `ptr` must be a valid, unlinked node that will not be retired again, and
    /// `drop_fn(ptr)` must correctly release it.
    pub unsafe fn new(ptr: *mut u8, drop_fn: DropFn, retired_at: Nanos) -> Self {
        // SAFETY: forwarded from the caller's contract.
        unsafe { Self::with_birth(ptr, drop_fn, retired_at, NO_BIRTH_ERA) }
    }

    /// Wraps a retired node together with its allocation-time birth era
    /// (interval-based schemes).
    ///
    /// # Safety
    ///
    /// Same contract as [`new`](Self::new); additionally `birth_era` must be the
    /// era stamped into the node at allocation (or [`NO_BIRTH_ERA`], which the
    /// era schemes treat maximally conservatively).
    pub unsafe fn with_birth(
        ptr: *mut u8,
        drop_fn: DropFn,
        retired_at: Nanos,
        birth_era: Era,
    ) -> Self {
        // SAFETY: forwarded from the caller's contract.
        unsafe { Self::with_birth_sized(ptr, drop_fn, retired_at, birth_era, 0) }
    }

    /// Wraps a retired node with its birth era *and* its allocation size in
    /// bytes — the fully stamped constructor the typed `retire_box*` entry
    /// points use. `size_bytes` of zero means "unknown" ([`SIZE_UNKNOWN`]);
    /// sizes past `u32::MAX` are clamped to `u32::MAX` (a single ≥ 4 GiB node
    /// is outside this substrate's design envelope; the clamp keeps the
    /// accounting bounded rather than wrapping).
    ///
    /// # Safety
    ///
    /// Same contract as [`with_birth`](Self::with_birth); additionally
    /// `size_bytes` must not exceed the node's actual allocation size.
    pub unsafe fn with_birth_sized(
        ptr: *mut u8,
        drop_fn: DropFn,
        retired_at: Nanos,
        birth_era: Era,
        size_bytes: usize,
    ) -> Self {
        debug_assert!(!ptr.is_null(), "retiring a null pointer");
        // Every retire path in every scheme funnels through this constructor,
        // so this is the oracle's single retire checkpoint.
        #[cfg(feature = "check-oracle")]
        crate::oracle::on_retire(ptr, size_bytes);
        Self {
            ptr,
            drop_fn,
            retired_at,
            birth_era,
            size: u32::try_from(size_bytes).unwrap_or(u32::MAX),
            tick: 0,
        }
    }

    /// Stamps the coarse telemetry tick taken at retire time
    /// ([`crate::telemetry::HandleTelemetry::retire_tick`]). Schemes call this
    /// right after constructing the wrapper; 0 (the default) marks the node as
    /// unstamped and the free-side delay measurement skips it.
    pub fn set_retire_tick(&mut self, tick: u32) {
        self.tick = tick;
    }

    /// The coarse telemetry tick stamped at retire, or 0 if telemetry was
    /// disabled when the node was retired.
    pub fn retire_tick(&self) -> u32 {
        self.tick
    }

    /// The retired node's address (used to match against hazard pointers).
    pub fn addr(&self) -> *mut u8 {
        self.ptr
    }

    /// The era the node was allocated in ([`NO_BIRTH_ERA`] if never stamped).
    pub fn birth_era(&self) -> Era {
        self.birth_era
    }

    /// The node's allocation size in bytes, or 0 ([`SIZE_UNKNOWN`]) when the
    /// retire path did not know it. Byte-budget accounting sums this, so
    /// unknown-size nodes weigh nothing — budgets under-count, never
    /// over-count.
    pub fn size_bytes(&self) -> usize {
        self.size as usize
    }

    /// Timestamp (scheme clock) at which the node was retired.
    pub fn retired_at(&self) -> Nanos {
        self.retired_at
    }

    /// `is_old_enough` from the paper (Algorithm 3, lines 36–39): the node may be
    /// considered for reclamation only once `now - retired_at >= min_age`, where
    /// `min_age = T + ε`.
    pub fn is_old_enough(&self, now: Nanos, min_age: Nanos) -> bool {
        now.saturating_sub(self.retired_at) >= min_age
    }

    /// Runs the destructor, consuming the wrapper.
    ///
    /// # Safety
    ///
    /// No thread may hold a hazardous reference to the node (this is exactly what the
    /// scheme's scan / grace-period logic establishes before calling this).
    pub unsafe fn reclaim(self) {
        // The single free checkpoint: the oracle flips the node to Freed and —
        // under quarantine — poisons the header and vetoes the destructor so
        // the address can never be reused (see `crate::oracle`).
        #[cfg(feature = "check-oracle")]
        if !crate::oracle::on_free(self.ptr) {
            return;
        }
        (self.drop_fn)(self.ptr);
        // `self` is consumed; forgetting nothing — RetiredPtr has no Drop impl, so the
        // wrapper itself is released trivially.
    }
}

impl fmt::Debug for RetiredPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetiredPtr")
            .field("ptr", &self.ptr)
            .field("retired_at", &self.retired_at)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct DropCounter {
        counter: Arc<AtomicUsize>,
    }

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.counter.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn retire_counter(counter: &Arc<AtomicUsize>, at: Nanos) -> RetiredPtr {
        let boxed = Box::new(DropCounter {
            counter: Arc::clone(counter),
        });
        let raw = Box::into_raw(boxed).cast::<u8>();
        unsafe fn drop_counter(ptr: *mut u8) {
            // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
            #[allow(clippy::disallowed_methods)]
            // sanctioned: drop_fn thunk: the retire contract pairs this with Box::into_raw
            unsafe {
                drop(Box::from_raw(ptr.cast::<DropCounter>()))
            };
        }
        // SAFETY: the pointer was just produced by Box::into_raw and matches the drop function's type.
        unsafe { RetiredPtr::new(raw, drop_counter, at) }
    }

    #[test]
    fn is_old_enough_respects_min_age() {
        let counter = Arc::new(AtomicUsize::new(0));
        let node = retire_counter(&counter, 1_000);
        assert!(!node.is_old_enough(1_500, 1_000));
        assert!(node.is_old_enough(2_000, 1_000));
        assert!(node.is_old_enough(2_500, 1_000));
        // SAFETY: the node was retired exactly once above and nothing protects it; reclaim drops it here.
        unsafe { node.reclaim() };
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn is_old_enough_handles_clock_skew_saturating() {
        let counter = Arc::new(AtomicUsize::new(0));
        // Retired "in the future" relative to now: must not panic, must not be old.
        let node = retire_counter(&counter, 5_000);
        assert!(!node.is_old_enough(1_000, 1));
        // SAFETY: the node was retired exactly once above and nothing protects it; reclaim drops it here.
        unsafe { node.reclaim() };
    }

    #[test]
    fn retired_ptr_reports_address_and_reclaims_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let node = retire_counter(&counter, 0);
        assert!(!node.addr().is_null());
        // SAFETY: the node was retired exactly once above and nothing protects it; reclaim drops it here.
        unsafe { node.reclaim() };
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn birth_era_defaults_to_reserved_and_round_trips_when_stamped() {
        let counter = Arc::new(AtomicUsize::new(0));
        let unstamped = retire_counter(&counter, 5);
        assert_eq!(unstamped.birth_era(), NO_BIRTH_ERA);
        // SAFETY: the node was retired exactly once above and nothing protects it; reclaim drops it here.
        unsafe { unstamped.reclaim() };

        let boxed = Box::new(DropCounter {
            counter: Arc::clone(&counter),
        });
        let raw = Box::into_raw(boxed).cast::<u8>();
        unsafe fn drop_counter(ptr: *mut u8) {
            // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
            #[allow(clippy::disallowed_methods)]
            // sanctioned: drop_fn thunk: the retire contract pairs this with Box::into_raw
            unsafe {
                drop(Box::from_raw(ptr.cast::<DropCounter>()))
            };
        }
        // SAFETY: `raw` was just leaked via Box::into_raw and matches `drop_counter`'s type.
        let stamped = unsafe { RetiredPtr::with_birth(raw, drop_counter, 9, 42) };
        assert_eq!(stamped.birth_era(), 42);
        assert_eq!(stamped.retired_at(), 9);
        // SAFETY: the node was retired exactly once above and nothing protects it; reclaim drops it here.
        unsafe { stamped.reclaim() };
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn size_stamp_defaults_to_unknown_and_round_trips_when_stamped() {
        let counter = Arc::new(AtomicUsize::new(0));
        let unsized_node = retire_counter(&counter, 1);
        assert_eq!(unsized_node.size_bytes(), SIZE_UNKNOWN as usize);
        // SAFETY: the node was retired exactly once above and nothing protects it; reclaim drops it here.
        unsafe { unsized_node.reclaim() };

        let boxed = Box::new(DropCounter {
            counter: Arc::clone(&counter),
        });
        let raw = Box::into_raw(boxed).cast::<u8>();
        unsafe fn drop_counter(ptr: *mut u8) {
            // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
            #[allow(clippy::disallowed_methods)]
            // sanctioned: drop_fn thunk: the retire contract pairs this with Box::into_raw
            unsafe {
                drop(Box::from_raw(ptr.cast::<DropCounter>()))
            };
        }
        // SAFETY: `raw` was just leaked via Box::into_raw and matches `drop_counter`'s type.
        let sized = unsafe { RetiredPtr::with_birth_sized(raw, drop_counter, 2, 7, 256) };
        assert_eq!(sized.size_bytes(), 256);
        assert_eq!(sized.birth_era(), 7);
        // SAFETY: the node was retired exactly once above and nothing protects it; reclaim drops it here.
        unsafe { sized.reclaim() };
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn retire_tick_defaults_to_unstamped_and_round_trips() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut node = retire_counter(&counter, 3);
        assert_eq!(node.retire_tick(), 0, "fresh wrappers are unstamped");
        node.set_retire_tick(12_345);
        assert_eq!(node.retire_tick(), 12_345);
        // The tick must fit the pre-existing padding: adding it must not have
        // grown the wrapper past its 40-byte footprint (segment geometry).
        assert_eq!(std::mem::size_of::<RetiredPtr>(), 40);
        // SAFETY: the node was retired exactly once above and nothing protects it; reclaim drops it here.
        unsafe { node.reclaim() };
    }

    #[test]
    fn oversized_stamp_clamps_instead_of_wrapping() {
        let counter = Arc::new(AtomicUsize::new(0));
        let boxed = Box::new(DropCounter {
            counter: Arc::clone(&counter),
        });
        let raw = Box::into_raw(boxed).cast::<u8>();
        unsafe fn drop_counter(ptr: *mut u8) {
            // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
            #[allow(clippy::disallowed_methods)]
            // sanctioned: drop_fn thunk: the retire contract pairs this with Box::into_raw
            unsafe {
                drop(Box::from_raw(ptr.cast::<DropCounter>()))
            };
        }
        // SAFETY: `raw` was just leaked via Box::into_raw and matches `drop_counter`'s type.
        let huge = unsafe { RetiredPtr::with_birth_sized(raw, drop_counter, 0, 0, usize::MAX) };
        assert_eq!(huge.size_bytes(), u32::MAX as usize);
        // SAFETY: the node was retired exactly once above and nothing protects it; reclaim drops it here.
        unsafe { huge.reclaim() };
    }
}
