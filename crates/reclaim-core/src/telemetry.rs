//! Lock-free latency histograms and the per-handle telemetry event layer.
//!
//! The paper's claims are *distributional*: the read path must be fast in the
//! common case **and** the retire→free delay must stay bounded under stalls.
//! Counters and peaks (see [`crate::stats`]) cannot show either tail. This
//! module adds the missing substrate:
//!
//! * [`LogHistogram`] — a fixed-size, allocation-free, cache-padded-striped
//!   histogram with 64 log2 buckets. Recording is one relaxed `fetch_add` to a
//!   stripe the recording handle owns in the common case; snapshots merge all
//!   stripes into a plain [`HistSnapshot`] that answers p50/p90/p99/p999
//!   queries.
//! * [`Telemetry`] — one per scheme instance, holding three histograms:
//!   guard-bracket **op latency** (nanoseconds, 1-in-N sampled), **scan
//!   duration** (nanoseconds, every scan), and **reclamation delay**
//!   (microseconds): a coarse monotonic tick stamped into
//!   [`RetiredPtr`](crate::retired::RetiredPtr) at retire and measured when the
//!   scan frees the node — the paper's "bounded garbage" claim as an observable
//!   retire→free distribution.
//! * [`HandleTelemetry`] — the per-handle recording cursor (stripe index plus
//!   the op-sampling counter), and [`ScanObserver`] — a per-scan probe the
//!   schemes thread through their reclaim predicates.
//!
//! ## Time sources
//!
//! Two different clocks, chosen per site by cost:
//!
//! * **Op latency and scan duration** use [`Instant`] — the precise monotonic
//!   clock. A `clock_gettime` pair per *sampled* op is affordable precisely
//!   because sampling is 1-in-N ([`SmrConfig::telemetry_sample_shift`],
//!   default 1-in-128); scans are already rare (every `R` retires).
//! * **Reclamation delay** must be stamped on *every* retire, so it uses a
//!   coarse tick instead: microseconds since the scheme's construction,
//!   truncated to `u32` ([`Telemetry::coarse_now`]). The stamp fits the
//!   existing padding hole in `RetiredPtr` (the wrapper stays 40 bytes, so
//!   segment geometry is untouched) and wraps after ~71.6 minutes; the
//!   free-side `wrapping_sub` stays correct across a single wrap, which no
//!   realistic retire→free delay outlives. Even a coarse clock read is too
//!   expensive to pay per retire on the cheapest schemes (a `clock_gettime`
//!   costs a third of a QSBR retire), so each handle *caches* the tick and
//!   refreshes it every [`TICK_REFRESH`] retires — and for free on every
//!   sampled op, reusing the `Instant` the latency sample already took. A
//!   stale cache only ever *over*-reports a delay, by at most the wall time
//!   the handle took to issue the last `TICK_REFRESH` retires (sub-µs in the
//!   high-churn regimes where delay matters, and well inside the 2× bucket
//!   bound everywhere else).
//!
//! ## Error bounds
//!
//! Buckets are powers of two: a recorded value `v` lands in bucket
//! `floor(log2(v))`, so any percentile query is exact to within one bucket —
//! the reported bound is at most 2× the true value (quantile values are
//! reported as the bucket's inclusive upper bound, never an underestimate).
//!
//! ## Disabled-path guarantee
//!
//! Telemetry is off by default. Every record site — op begin, retire stamp,
//! scan begin — first performs exactly **one relaxed load** of the `enabled`
//! flag (a read-mostly cache line shared with the histogram origin) and
//! branches away. No `Instant` is read, no stripe is touched, no stamp is
//! written. `BENCH_ablation_telemetry.json` quantifies both paths.
//!
//! ## Snapshot consistency
//!
//! Each bucket is a single atomic counter and every record is one `fetch_add`,
//! so no concurrent increment can be lost. Snapshots read buckets with
//! `Acquire`: bucket-wise, any snapshot dominates every snapshot that
//! happened-before it (totals are monotone), and a snapshot taken after the
//! recording threads are joined is exact. There is no cross-bucket tearing a
//! reader could misread as *negative* counts — the analog of the
//! `retired >= freed` stats guarantee is that a merged snapshot's bucket sums
//! never exceed the records actually issued, and never miss one issued before
//! the snapshot's happens-before edge.

use crate::config::SmrConfig;
use crate::pad::CachePadded;
use crate::retired::RetiredPtr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log2 buckets per histogram: one per `u64` bit position.
pub const HIST_BUCKETS: usize = 64;

/// Counter stripes per histogram. Handles are assigned stripes round-robin;
/// eight padded stripes keep concurrent recorders off each other's cache
/// lines at every thread count the benchmarks run.
pub const HIST_STRIPES: usize = 8;

/// One stripe: 64 buckets, 512 bytes, single cache-padded unit.
struct Stripe {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Stripe {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-size, allocation-free, cache-padded-striped log2 histogram.
///
/// Values are `u64`; value `v` is counted in bucket `floor(log2(max(v, 1)))`.
/// Recording is wait-free (one relaxed `fetch_add`); snapshotting sums the
/// stripes into a [`HistSnapshot`]. The whole structure is inline — no heap
/// allocation at construction, record, or snapshot time.
pub struct LogHistogram {
    stripes: [CachePadded<Stripe>; HIST_STRIPES],
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            stripes: std::array::from_fn(|_| CachePadded::new(Stripe::new())),
        }
    }

    /// Bucket index for a value: `floor(log2(max(value, 1)))`.
    #[inline]
    fn bucket_for(value: u64) -> usize {
        (63 - (value | 1).leading_zeros()) as usize
    }

    /// Records one occurrence of `value` on `stripe` (taken modulo the stripe
    /// count). One relaxed `fetch_add` to a cache-padded line; wait-free.
    #[inline]
    pub fn record(&self, stripe: usize, value: u64) {
        self.stripes[stripe % HIST_STRIPES].buckets[Self::bucket_for(value)]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Sums all stripes into a plain snapshot. Bucket-wise monotone across
    /// snapshots; exact once recorders have quiesced (see module docs).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut out = HistSnapshot::default();
        for stripe in &self.stripes {
            for (bucket, counter) in stripe.buckets.iter().enumerate() {
                out.buckets[bucket] += counter.load(Ordering::Acquire);
            }
        }
        out
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain, mergeable snapshot of a [`LogHistogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Per-bucket counts (bucket `i` covers values in `[2^i, 2^(i+1))`,
    /// with bucket 0 also absorbing value 0).
    pub fn bucket_counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Inclusive upper bound of bucket `i`: the largest value it can hold.
    fn bucket_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// The value at percentile `p` (`0.0 < p <= 1.0`), reported as the upper
    /// bound of the bucket containing that rank — exact to within one log2
    /// bucket (at most 2× the true value, never an underestimate). Returns 0
    /// for an empty snapshot.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(HIST_BUCKETS - 1)
    }

    /// Convenience: the (p50, p90, p99, p999) quadruple every report prints.
    pub fn quantiles(&self) -> (u64, u64, u64, u64) {
        (
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.percentile(0.999),
        )
    }
}

/// A plain snapshot of all three per-scheme histograms, mergeable across
/// schemes or runs. Produced by [`Telemetry::summary`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Guard-bracket op latency, nanoseconds (1-in-N sampled).
    pub op_latency_ns: HistSnapshot,
    /// Scan (reclamation pass) duration, nanoseconds.
    pub scan_ns: HistSnapshot,
    /// Retire→free delay, microseconds (coarse-tick resolution).
    pub reclaim_delay_us: HistSnapshot,
}

impl TelemetrySummary {
    /// Adds `other`'s counts into `self`, histogram by histogram.
    pub fn merge(&mut self, other: &TelemetrySummary) {
        self.op_latency_ns.merge(&other.op_latency_ns);
        self.scan_ns.merge(&other.scan_ns);
        self.reclaim_delay_us.merge(&other.reclaim_delay_us);
    }

    /// True when no histogram holds any record.
    pub fn is_empty(&self) -> bool {
        self.op_latency_ns.is_empty() && self.scan_ns.is_empty() && self.reclaim_delay_us.is_empty()
    }
}

/// Per-scheme telemetry state: the enabled flag, the coarse-tick origin, and
/// the three histograms. One instance lives in every scheme object (behind the
/// scheme's `Arc`); handles record through [`HandleTelemetry`] cursors.
pub struct Telemetry {
    /// Read-mostly: every record site loads this (relaxed) exactly once and
    /// branches away when telemetry is off.
    enabled: AtomicBool,
    /// `ops & sample_mask == 0` selects the sampled ops: `(1 << shift) - 1`.
    sample_mask: u32,
    /// Origin of the coarse tick; also the precise-clock anchor.
    origin: Instant,
    /// Round-robin stripe assignment cursor for registering handles.
    next_stripe: AtomicUsize,
    op_latency: LogHistogram,
    scan_duration: LogHistogram,
    reclaim_delay: LogHistogram,
}

impl Telemetry {
    /// Builds telemetry state from a scheme configuration
    /// ([`SmrConfig::telemetry`], [`SmrConfig::telemetry_sample_shift`]).
    pub fn from_config(config: &SmrConfig) -> Self {
        Self::new(config.telemetry, config.telemetry_sample_shift)
    }

    /// Builds telemetry state directly: `enabled` plus the op-latency sample
    /// shift (sample 1 op in `2^shift`; shift is clamped to 31).
    pub fn new(enabled: bool, sample_shift: u32) -> Self {
        Self {
            enabled: AtomicBool::new(enabled),
            sample_mask: (1u32 << sample_shift.min(31)) - 1,
            origin: Instant::now(),
            next_stripe: AtomicUsize::new(0),
            op_latency: LogHistogram::new(),
            scan_duration: LogHistogram::new(),
            reclaim_delay: LogHistogram::new(),
        }
    }

    /// Whether record sites are live. One relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime. Record sites notice on their
    /// next relaxed load; stamps written while enabled remain valid.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The coarse monotonic tick: microseconds since scheme construction,
    /// truncated to `u32` (wraps after ~71.6 minutes; the free-side
    /// `wrapping_sub` is correct across one wrap). Never returns 0, so a zero
    /// stamp in a retired node always means "stamped while disabled".
    #[inline]
    pub fn coarse_now(&self) -> u32 {
        self.tick_from(Instant::now())
    }

    /// The coarse tick a known instant corresponds to — lets a caller that
    /// already read the clock derive the tick without a second read.
    #[inline]
    fn tick_from(&self, now: Instant) -> u32 {
        let t = now.saturating_duration_since(self.origin).as_micros() as u32;
        if t == 0 {
            1
        } else {
            t
        }
    }

    /// Assigns a histogram stripe to a registering handle (round-robin).
    pub fn assign_stripe(&self) -> usize {
        self.next_stripe.fetch_add(1, Ordering::Relaxed) % HIST_STRIPES
    }

    /// Begins observing one scan: one relaxed load when disabled, otherwise a
    /// probe carrying the scan's start instant and the current coarse tick.
    /// Schemes call [`ScanObserver::note_free`] from their reclaim predicate
    /// for every node they free and [`ScanObserver::finish`] when the pass is
    /// done.
    #[inline]
    pub fn scan_observer(&self, stripe: usize) -> Option<ScanObserver<'_>> {
        if !self.is_enabled() {
            return None;
        }
        Some(ScanObserver {
            shared: self,
            stripe,
            start: Instant::now(),
            now_tick: self.coarse_now(),
        })
    }

    /// Records one sampled guard-bracket op latency (nanoseconds).
    #[inline]
    fn record_op_latency(&self, stripe: usize, nanos: u64) {
        self.op_latency.record(stripe, nanos);
    }

    /// Snapshots all three histograms into a plain, mergeable summary.
    pub fn summary(&self) -> TelemetrySummary {
        TelemetrySummary {
            op_latency_ns: self.op_latency.snapshot(),
            scan_ns: self.scan_duration.snapshot(),
            reclaim_delay_us: self.reclaim_delay.snapshot(),
        }
    }
}

/// A handle refreshes its cached retire tick every this many retires (must be
/// a power of two). Between refreshes the cached tick can only make delays
/// look *longer*, by at most the wall time those retires spanned.
pub const TICK_REFRESH: u32 = 16;

/// The per-handle recording cursor: an `Arc` to the scheme's [`Telemetry`],
/// this handle's stripe, the 1-in-N op-sampling counter, and the amortised
/// retire-tick cache. All methods are one relaxed load when telemetry is
/// disabled.
pub struct HandleTelemetry {
    shared: Arc<Telemetry>,
    stripe: usize,
    ops: u32,
    retires: u32,
    tick_cache: u32,
}

impl HandleTelemetry {
    /// Attaches a new per-handle cursor to the scheme's shared telemetry.
    pub fn attach(shared: &Arc<Telemetry>) -> Self {
        Self {
            stripe: shared.assign_stripe(),
            shared: Arc::clone(shared),
            ops: 0,
            retires: 0,
            tick_cache: 0,
        }
    }

    /// This handle's histogram stripe (pass to [`Telemetry::scan_observer`]).
    #[inline]
    pub fn stripe(&self) -> usize {
        self.stripe
    }

    /// The shared telemetry this cursor records into.
    #[inline]
    pub fn shared(&self) -> &Telemetry {
        &self.shared
    }

    /// Op-bracket entry: one relaxed load when disabled; when enabled, counts
    /// the op and reads `Instant::now()` for the 1-in-N sampled ops only.
    #[inline]
    pub fn op_begin(&mut self) -> Option<Instant> {
        if !self.shared.is_enabled() {
            return None;
        }
        let sampled = self.ops & self.shared.sample_mask == 0;
        self.ops = self.ops.wrapping_add(1);
        if sampled {
            let now = Instant::now();
            // Free tick refresh: the sample already paid for the clock read.
            self.tick_cache = self.shared.tick_from(now);
            Some(now)
        } else {
            None
        }
    }

    /// Op-bracket exit for a sampled op: records the elapsed nanoseconds.
    #[inline]
    pub fn op_end(&mut self, started: Instant) {
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.shared.record_op_latency(self.stripe, nanos);
    }

    /// The retire-time stamp for [`RetiredPtr::set_retire_tick`]: 0 (one
    /// relaxed load) when disabled, otherwise the cached coarse tick. The
    /// cache re-reads the clock every [`TICK_REFRESH`] retires (and whenever
    /// a sampled op refreshes it for free), so the per-retire cost between
    /// refreshes is the flag load, a counter bump, and one `u32` copy.
    #[inline]
    pub fn retire_tick(&mut self) -> u32 {
        if !self.shared.is_enabled() {
            return 0;
        }
        if self.retires & (TICK_REFRESH - 1) == 0 || self.tick_cache == 0 {
            self.tick_cache = self.shared.coarse_now();
        }
        self.retires = self.retires.wrapping_add(1);
        self.tick_cache
    }
}

/// A per-scan probe: carries the scan's start instant and the coarse tick the
/// delay measurements are taken against, so the per-node free path does one
/// histogram `fetch_add` and no clock reads.
pub struct ScanObserver<'a> {
    shared: &'a Telemetry,
    stripe: usize,
    start: Instant,
    now_tick: u32,
}

impl ScanObserver<'_> {
    /// Records the retire→free delay of one node this scan is about to free.
    /// Nodes stamped while telemetry was disabled (tick 0) are skipped.
    #[inline]
    pub fn note_free(&self, node: &RetiredPtr) {
        let tick = node.retire_tick();
        if tick == 0 {
            return;
        }
        let delay_us = u64::from(self.now_tick.wrapping_sub(tick));
        self.shared.reclaim_delay.record(self.stripe, delay_us);
    }

    /// Ends the scan, recording its duration (nanoseconds).
    pub fn finish(self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.shared.scan_duration.record(self.stripe, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;
    use std::thread;

    #[test]
    fn bucket_for_is_floor_log2() {
        assert_eq!(LogHistogram::bucket_for(0), 0);
        assert_eq!(LogHistogram::bucket_for(1), 0);
        assert_eq!(LogHistogram::bucket_for(2), 1);
        assert_eq!(LogHistogram::bucket_for(3), 1);
        assert_eq!(LogHistogram::bucket_for(4), 2);
        assert_eq!(LogHistogram::bucket_for(1023), 9);
        assert_eq!(LogHistogram::bucket_for(1024), 10);
        assert_eq!(LogHistogram::bucket_for(u64::MAX), 63);
    }

    #[test]
    fn percentiles_walk_buckets_with_upper_bounds() {
        let hist = LogHistogram::new();
        // 90 small values (bucket 3: 8..=15), 10 large (bucket 10: 1024..=2047).
        for i in 0..90 {
            hist.record(i, 10);
        }
        for i in 0..10 {
            hist.record(i, 1500);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.percentile(0.50), 15);
        assert_eq!(snap.percentile(0.90), 15);
        assert_eq!(snap.percentile(0.99), 2047);
        assert_eq!(snap.percentile(0.999), 2047);
        let (p50, p90, p99, p999) = snap.quantiles();
        assert_eq!((p50, p90, p99, p999), (15, 15, 2047, 2047));
    }

    #[test]
    fn empty_snapshot_reports_zero() {
        let snap = HistSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.percentile(0.99), 0);
    }

    #[test]
    fn merge_adds_bucket_wise() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(0, 10);
        b.record(5, 10);
        b.record(5, 1 << 40);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.bucket_counts()[3], 2);
        assert_eq!(merged.bucket_counts()[40], 1);
    }

    #[test]
    fn concurrent_churn_loses_no_counts_and_snapshots_are_monotone() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        let hist = LogHistogram::new();
        let issued = TestCounter::new(0);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let hist = &hist;
                let issued = &issued;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        hist.record(t, i);
                        issued.fetch_add(1, Ordering::Release);
                    }
                });
            }
            // Concurrent snapshots: totals must be monotone and never exceed
            // the records issued before the snapshot began... the reverse — a
            // snapshot can only *miss* in-flight records, never invent them.
            let mut last_total = 0u64;
            for _ in 0..100 {
                let snap = hist.snapshot();
                let total = snap.count();
                assert!(total >= last_total, "snapshot totals must be monotone");
                last_total = total;
                // `issued` is bumped *after* each record, so reading it after
                // the snapshot gives an upper bound up to one in-flight record
                // per thread.
                let upper = issued.load(Ordering::Acquire);
                assert!(
                    total <= upper + THREADS as u64,
                    "snapshot invented counts: {total} > {upper} + in-flight"
                );
            }
        });
        let final_snap = hist.snapshot();
        assert_eq!(
            final_snap.count(),
            (THREADS as u64) * PER_THREAD,
            "post-join snapshot must be exact — no lost counts"
        );
    }

    #[test]
    fn sampling_mask_selects_one_in_n() {
        let tele = Arc::new(Telemetry::new(true, 3)); // 1-in-8
        let mut cursor = HandleTelemetry::attach(&tele);
        let mut sampled = 0;
        for _ in 0..64 {
            if let Some(start) = cursor.op_begin() {
                cursor.op_end(start);
                sampled += 1;
            }
        }
        assert_eq!(sampled, 8);
        assert_eq!(tele.summary().op_latency_ns.count(), 8);
    }

    #[test]
    fn disabled_paths_record_nothing() {
        let tele = Arc::new(Telemetry::new(false, 0));
        let mut cursor = HandleTelemetry::attach(&tele);
        for _ in 0..32 {
            assert!(cursor.op_begin().is_none());
        }
        assert_eq!(cursor.retire_tick(), 0);
        assert!(tele.scan_observer(0).is_none());
        assert!(tele.summary().is_empty());
    }

    #[test]
    fn coarse_now_is_never_zero_and_delay_measures_tick_gap() {
        let tele = Telemetry::new(true, 0);
        assert_ne!(tele.coarse_now(), 0);
        let obs = tele.scan_observer(0).expect("enabled");
        // An unstamped node (tick 0) is skipped.
        let unstamped =
            // SAFETY: the pointer was just produced by Box::into_raw and matches the drop function's type.
            unsafe { RetiredPtr::new(Box::into_raw(Box::new(7u64)).cast(), drop_u64, 0) };
        obs.note_free(&unstamped);
        let mut stamped =
            // SAFETY: the pointer was just produced by Box::into_raw and matches the drop function's type.
            unsafe { RetiredPtr::new(Box::into_raw(Box::new(7u64)).cast(), drop_u64, 0) };
        stamped.set_retire_tick(tele.coarse_now());
        obs.note_free(&stamped);
        obs.finish();
        let summary = tele.summary();
        assert_eq!(summary.reclaim_delay_us.count(), 1);
        assert_eq!(summary.scan_ns.count(), 1);
        // SAFETY: both nodes were retired exactly once above and nothing protects them.
        unsafe {
            unstamped.reclaim();
            stamped.reclaim();
        }
    }

    unsafe fn drop_u64(ptr: *mut u8) {
        // SAFETY: test pointers originate from Box::into_raw::<u64>.
        #[allow(clippy::disallowed_methods)]
        // sanctioned: drop_fn thunk: the retire contract pairs this with Box::into_raw
        unsafe {
            drop(Box::from_raw(ptr.cast::<u64>()))
        };
    }

    #[test]
    fn retire_tick_cache_is_monotone_and_never_zero_while_enabled() {
        let tele = Arc::new(Telemetry::new(true, 0));
        let mut cursor = HandleTelemetry::attach(&tele);
        let mut last = 0u32;
        // One past the refresh boundary, so the final stamp below can only
        // come from the cache (not a boundary re-read).
        for _ in 0..(TICK_REFRESH * 4 + 1) {
            let tick = cursor.retire_tick();
            assert_ne!(tick, 0, "enabled stamps are never the disabled marker");
            assert!(tick >= last, "cached ticks never run backwards");
            last = tick;
        }
        // A sampled op refreshes the cache without waiting for the next
        // refresh boundary.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let started = cursor.op_begin().expect("shift 0 samples every op");
        cursor.op_end(started);
        assert!(cursor.retire_tick() > last, "op sample advanced the cache");
    }

    #[test]
    fn set_enabled_toggles_record_sites() {
        let tele = Arc::new(Telemetry::new(false, 0));
        let mut cursor = HandleTelemetry::attach(&tele);
        assert!(cursor.op_begin().is_none());
        tele.set_enabled(true);
        assert!(cursor.op_begin().is_some());
        tele.set_enabled(false);
        assert!(cursor.op_begin().is_none());
    }

    #[test]
    fn stripes_are_assigned_round_robin() {
        let tele = Telemetry::new(true, 0);
        let first: Vec<usize> = (0..HIST_STRIPES).map(|_| tele.assign_stripe()).collect();
        assert_eq!(first, (0..HIST_STRIPES).collect::<Vec<_>>());
        assert_eq!(tele.assign_stripe(), 0, "wraps around");
    }
}
