//! # reclaim-core
//!
//! Shared substrate for the QSense family of safe-memory-reclamation (SMR) schemes,
//! reproducing *"Fast and Robust Memory Reclamation for Concurrent Data Structures"*
//! (Balmau, Guerraoui, Herlihy, Zablotchi — SPAA 2016).
//!
//! This crate contains everything the individual schemes (`hazard`, `qsbr`, `cadence`,
//! `qsense`) have in common:
//!
//! * the [`Smr`] / [`SmrHandle`] traits — the three-function interface the paper
//!   prescribes (`manage_qsense_state`, `assign_HP`, `free_node_later`) plus the
//!   plumbing a real library needs (registration, statistics, forced collection);
//! * a [`registry::Registry`] of per-thread slots with interior-mutable per-thread
//!   state that other threads may scan (hazard pointers, epochs, presence flags),
//!   each slot carrying its own cache-padded statistics stripe
//!   ([`stats::StatStripe`]) so hot-path counter updates never contend, and a
//!   per-slot generation counter that lets asynchronous actors (QSense's evictor)
//!   detect slot turnover exactly;
//! * [`retired::RetiredPtr`] — the timestamped retired-node wrapper (the paper's
//!   `timestamped_node`, Algorithm 3) — collected in [`segbag::SegBag`]
//!   segment chains recycled through a per-handle [`segbag::SegPool`], so the
//!   steady-state retire/scan/reclaim pipeline never touches the allocator;
//! * a [`clock::Clock`] abstraction (real, monotonic nanoseconds) with a manually
//!   driven variant for deterministic tests;
//! * low-level utilities: [`pad::CachePadded`], [`backoff::Backoff`], and the
//!   asymmetric process-wide fence in [`membarrier`];
//! * the [`leaky::Leaky`] "scheme" (no reclamation at all), the paper's *None*
//!   baseline;
//! * [`config::SmrConfig`] holding every tunable the paper names
//!   (`Q`, `R`, `C`, `K`, `T`, `ε`, `N`).
//!
//! The data structures in `lockfree-ds` are generic over [`Smr`], so any scheme can be
//! plugged into any structure exactly as in the paper's evaluation.
//!
//! ## Hot-path cost model
//!
//! The paper's thesis is that reclamation overhead on the *common path* must be near
//! zero. This crate is therefore organized around an explicit cost budget: which
//! work runs per operation, which runs once per `Q` operations, and which runs only
//! per scan. Per-op work must touch only thread-private or single-writer
//! cache-padded state; scans may sweep shared state but must not allocate.
//!
//! | frequency | work | shared-memory cost |
//! |-----------|------|--------------------|
//! | per op (`begin_op`) | a local counter bump (QSBR/QSense batching); a pin store plus an O(#buckets) bucket-age check (EBR only) | none (EBR: one release store to an owned padded line) |
//! | per node traversed (`protect`) | hazard-pointer store (HP/Cadence/QSense) | one release store to an owned padded slot; classic HP adds the `SeqCst` fence the paper is about |
//! | per `retire` | write into the tail segment of the thread-local [`segbag::SegBag`], bump the slot's [`stats::StatStripe`], one acquire load of the fallback flag (QSense) | single-writer padded lines only — **no shared `fetch_add`**, no shared epoch load (EBR tags with its pin-time epoch) |
//! | per segment (every [`segbag::SEG_CAP`] retires) | pop a recycled segment from the per-handle [`segbag::SegPool`] | none — the allocator is touched only past the handle's all-time peak |
//! | per `Q` ops (quiescent state) | epoch adoption (one release store) or a bounded epoch-confirmation poll (amortized O(1), see `qsbr::EpochCursor`); one eviction-counter load (QSense) | a handful of loads + at most one CAS |
//! | per scan (every `R` retires) | snapshot all `N·K` hazard pointers into a **reusable** scratch buffer, two-cursor compaction of the segment chain ([`segbag::SegBag::reclaim_if`]) | O(N·K) loads, zero heap allocations in steady state |
//! | per handle drop | splice leftovers into the scheme's parked chain ([`segbag::SegBag::splice`]) | O(1) pointer surgery under a mutex — no allocation |
//! | per snapshot (`Smr::stats`) | sum all counter stripes | O(N) loads — diagnostic path, never on the hot path |
//!
//! Segment recycling makes the whole retire→scan→reclaim pipeline allocation-free
//! in steady state, *including* bag growth past a single bag's previous high-water
//! mark (the per-handle pool backs all of a handle's bags) and the parked-bag
//! hand-off at handle drop (an O(1) chain splice; surviving handles re-adopt the
//! parked chain on their next flush). The remaining allocation site is handle
//! registration itself (scratch buffers, handle struct) — once per thread
//! lifetime, never on an operation path.
//!
//! ## Pointer-level safety contract
//!
//! All schemes traffic in type-erased pointers (`*mut u8` plus an `unsafe fn(*mut u8)`
//! destructor). The contract, identical to the paper's node-state machine (§2.1):
//!
//! 1. a node may be retired only after it has been unlinked from the data structure
//!    (state *removed*), and only once;
//! 2. a thread may dereference a removed node only while one of its protection slots
//!    (hazard pointers) covers it and the protection was validated while the node was
//!    still reachable (Condition 1 of the paper);
//! 3. once the scheme invokes the destructor the node is *free* and must never be
//!    touched again.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc_track;
pub mod backoff;
pub mod clock;
pub mod config;
pub mod leaky;
pub mod membarrier;
pub mod pad;
pub mod registry;
pub mod retired;
pub mod scratch;
pub mod segbag;
pub mod smr;
pub mod stats;

pub use alloc_track::CountingAllocator;
pub use backoff::Backoff;
pub use clock::{Clock, ManualClock, Nanos};
pub use config::SmrConfig;
pub use leaky::{Leaky, LeakyHandle};
pub use pad::CachePadded;
pub use registry::{Registry, SlotId};
pub use retired::RetiredPtr;
pub use scratch::PtrScratch;
pub use segbag::{ParkedChain, SegBag, SegPool, SEG_CAP};
pub use smr::{drop_fn_for, Smr, SmrHandle};
pub use stats::{ShardedStats, StatStripe, StatsSnapshot};

/// Convenience: retire a typed, heap-allocated (`Box`-originated) pointer through any
/// [`SmrHandle`].
///
/// # Safety
///
/// `ptr` must have been created by `Box::into_raw`, must already be unlinked from the
/// data structure, and must not be retired more than once.
pub unsafe fn retire_box<T, H: SmrHandle + ?Sized>(handle: &mut H, ptr: *mut T) {
    handle.retire(ptr.cast::<u8>(), drop_fn_for::<T>());
}
