//! # reclaim-core
//!
//! Shared substrate for the QSense family of safe-memory-reclamation (SMR) schemes,
//! reproducing *"Fast and Robust Memory Reclamation for Concurrent Data Structures"*
//! (Balmau, Guerraoui, Herlihy, Zablotchi — SPAA 2016).
//!
//! This crate contains everything the individual schemes (`hazard`, `qsbr`, `cadence`,
//! `qsense`) have in common:
//!
//! * the [`Smr`] / [`SmrHandle`] traits — the three-function interface the paper
//!   prescribes (`manage_qsense_state`, `assign_HP`, `free_node_later`) plus the
//!   plumbing a real library needs (registration, statistics, forced collection);
//! * a [`registry::Registry`] of per-thread slots with interior-mutable per-thread
//!   state that other threads may scan (hazard pointers, epochs, presence flags);
//! * [`retired::RetiredBag`] / [`retired::RetiredPtr`] — timestamped retired-node
//!   bookkeeping (the paper's `timestamped_node` wrapper, Algorithm 3);
//! * a [`clock::Clock`] abstraction (real, monotonic nanoseconds) with a manually
//!   driven variant for deterministic tests;
//! * low-level utilities: [`pad::CachePadded`], [`backoff::Backoff`], and the
//!   asymmetric process-wide fence in [`membarrier`];
//! * the [`leaky::Leaky`] "scheme" (no reclamation at all), the paper's *None*
//!   baseline;
//! * [`config::SmrConfig`] holding every tunable the paper names
//!   (`Q`, `R`, `C`, `K`, `T`, `ε`, `N`).
//!
//! The data structures in `lockfree-ds` are generic over [`Smr`], so any scheme can be
//! plugged into any structure exactly as in the paper's evaluation.
//!
//! ## Pointer-level safety contract
//!
//! All schemes traffic in type-erased pointers (`*mut u8` plus an `unsafe fn(*mut u8)`
//! destructor). The contract, identical to the paper's node-state machine (§2.1):
//!
//! 1. a node may be retired only after it has been unlinked from the data structure
//!    (state *removed*), and only once;
//! 2. a thread may dereference a removed node only while one of its protection slots
//!    (hazard pointers) covers it and the protection was validated while the node was
//!    still reachable (Condition 1 of the paper);
//! 3. once the scheme invokes the destructor the node is *free* and must never be
//!    touched again.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc_track;
pub mod backoff;
pub mod clock;
pub mod config;
pub mod leaky;
pub mod membarrier;
pub mod pad;
pub mod registry;
pub mod retired;
pub mod smr;
pub mod stats;

pub use alloc_track::CountingAllocator;
pub use backoff::Backoff;
pub use clock::{Clock, ManualClock, Nanos};
pub use config::SmrConfig;
pub use leaky::{Leaky, LeakyHandle};
pub use pad::CachePadded;
pub use registry::{Registry, SlotId};
pub use retired::{RetiredBag, RetiredPtr};
pub use smr::{drop_fn_for, Smr, SmrHandle};
pub use stats::SmrStats;

/// Convenience: retire a typed, heap-allocated (`Box`-originated) pointer through any
/// [`SmrHandle`].
///
/// # Safety
///
/// `ptr` must have been created by `Box::into_raw`, must already be unlinked from the
/// data structure, and must not be retired more than once.
pub unsafe fn retire_box<T, H: SmrHandle + ?Sized>(handle: &mut H, ptr: *mut T) {
    handle.retire(ptr.cast::<u8>(), drop_fn_for::<T>());
}
