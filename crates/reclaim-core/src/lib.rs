//! # reclaim-core
//!
//! Shared substrate for the QSense family of safe-memory-reclamation (SMR) schemes,
//! reproducing *"Fast and Robust Memory Reclamation for Concurrent Data Structures"*
//! (Balmau, Guerraoui, Herlihy, Zablotchi — SPAA 2016).
//!
//! This crate contains everything the individual schemes (`hazard`, `qsbr`, `cadence`,
//! `qsense`) have in common:
//!
//! * the [`Smr`] / [`SmrHandle`] traits — the three-function interface the paper
//!   prescribes (`manage_qsense_state`, `assign_HP`, `free_node_later`) plus the
//!   plumbing a real library needs (registration, statistics, forced collection)
//!   and an allocation-side hook ([`SmrHandle::alloc_node`] /
//!   [`SmrHandle::retire_with_birth`]) that stamps nodes with the birth era the
//!   interval-based `he` scheme (Hazard Eras / 2GE-IBR) reasons about — a no-op
//!   for every other scheme;
//! * a [`registry::Registry`] of per-thread slots with interior-mutable per-thread
//!   state that other threads may scan (hazard pointers, epochs, presence flags),
//!   striped into claim-bitmap **shards** of [`registry::SHARD_SLOTS`] so scans
//!   step over wholly-vacant shards on one bitmap load (scan cost tracks active
//!   shards, not capacity) and registration CASes a round-robin home shard
//!   instead of contending down one array; each slot carries its own
//!   cache-padded statistics stripe ([`stats::StatStripe`]) so hot-path counter
//!   updates never contend, and a per-slot generation counter that lets
//!   asynchronous actors (QSense's evictor) detect slot turnover exactly;
//! * a [`lease::LeasePool`] that time-shares `N` registered handles among `M`
//!   short-lived tasks (checkout/checkin with wait-or-fail exhaustion policy),
//!   so task-per-connection runtimes never register per task;
//! * [`retired::RetiredPtr`] — the timestamped retired-node wrapper (the paper's
//!   `timestamped_node`, Algorithm 3) — collected in [`segbag::SegBag`]
//!   segment chains recycled through a per-handle [`segbag::SegPool`], so the
//!   steady-state retire/scan/reclaim pipeline never touches the allocator;
//! * a [`clock::Clock`] abstraction (real, monotonic nanoseconds) with a manually
//!   driven variant for deterministic tests, and the global [`clock::EraClock`]
//!   logical clock of the era schemes;
//! * a [`handle_cache::HandleCache`] that recycles dying handles' pools and
//!   scratch buffers to the next registrant, so thread-pool churn stays
//!   allocation-free after the first wave;
//! * low-level utilities: [`pad::CachePadded`], [`backoff::Backoff`], and the
//!   asymmetric process-wide fence in [`membarrier`];
//! * the [`leaky::Leaky`] "scheme" (no reclamation at all), the paper's *None*
//!   baseline;
//! * [`config::SmrConfig`] holding every tunable the paper names
//!   (`Q`, `R`, `C`, `K`, `T`, `ε`, `N`).
//!
//! The data structures in `lockfree-ds` are generic over [`Smr`], so any scheme can be
//! plugged into any structure exactly as in the paper's evaluation.
//!
//! ## Hot-path cost model
//!
//! The paper's thesis is that reclamation overhead on the *common path* must be near
//! zero. This crate is therefore organized around an explicit cost budget: which
//! work runs per operation, which runs once per `Q` operations, and which runs only
//! per scan. Per-op work must touch only thread-private or single-writer
//! cache-padded state; scans may sweep shared state but must not allocate.
//!
//! | frequency | work | shared-memory cost |
//! |-----------|------|--------------------|
//! | per op (`begin_op`) | a local counter bump (QSBR/QSense batching); a pin store plus an O(#buckets) bucket-age check (EBR only); one era announcement — an era load plus, on change, a fenced reservation store (HE only) | none (EBR: one release store to an owned padded line; HE: one era store per op to an owned padded line, fenced only when the era moved) |
//! | per node traversed (`protect`) | hazard-pointer store (HP/Cadence/QSense); era re-announcement only when the global era advanced mid-operation (HE) | one release store to an owned padded slot; classic HP adds the `SeqCst` fence the paper is about; HE's amortized cost here is ~zero (eras advance once per [`clock::EraPacer::current_interval`] allocations, not per node) |
//! | per node allocated ([`smr::SmrHandle::alloc_node`]) | birth-era stamp: one era load, plus one shared `fetch_add` every [`clock::EraPacer::current_interval`] allocations (HE only; no-op for every other scheme). The interval is a constant under [`clock::EraAdvancePolicy::Static`]; under the adaptive policy it is one extra relaxed load of a read-mostly padded line — the pacer's entire allocation-side cost is amortized zero | one acquire load of the (mostly read-shared) era line |
//! | per `retire` | write into the tail segment of the thread-local [`segbag::SegBag`], bump the slot's [`stats::StatStripe`], one acquire load of the fallback flag (QSense) or of the era clock (HE — the retire-era stamp must be fresh, see `he`) | single-writer padded lines only — **no shared `fetch_add`**, no shared epoch load (EBR tags with its pin-time epoch) |
//! | per segment (every [`segbag::SEG_CAP`] retires) | pop a recycled segment from the per-handle [`segbag::SegPool`] | none — the allocator is touched only past the handle's all-time peak |
//! | per `Q` ops (quiescent state) | epoch adoption (one release store) or a bounded epoch-confirmation poll (amortized O(1), see `qsbr::EpochCursor`); one eviction-counter load (QSense) | a handful of loads + at most one CAS |
//! | per scan (every `R` retires) | snapshot all `N·K` hazard pointers into a **reusable** scratch buffer (HP/Cadence/QSense) or all `N` era reservations — O(N) era reads, not O(N·K) (HE); two-cursor compaction of the segment chain ([`segbag::SegBag::reclaim_if`]) plus at most one O(1) adjacent-segment merge; under the adaptive era policy, one striped limbo report (a single `fetch_add` to the handle's padded stripe) plus an O(#stripes) estimate read to adapt the tick interval ([`clock::EraPacer::note_scan`]) | O(N·K) loads (O(N) for HE), zero heap allocations in steady state |
//! | per scan, shard dispatch ([`registry::Registry::collect_protected`]) | one acquire bitmap load per shard of [`registry::SHARD_SLOTS`] slots; wholly-vacant shards are stepped over with **zero slot-line touches** (counted in [`stats::StatsSnapshot::shard_skips`]), so the flat model's O(capacity) sweep becomes O(active shards · `SHARD_SLOTS` + total shards) — with 8 handles in a 256-slot registry, 8 of 32 shards are walked and the other 24 cost one load each. Epoch-confirmation walks get the same jump via [`registry::Registry::skip_vacant_shards`] | one read-mostly padded line per shard; vacant shards' record lines never enter the scanner's cache |
//! | per lease checkout/checkin ([`lease::LeasePool`]) | one uncontended mutex lock + a `Vec` pop (checkout) or push-into-reserved-capacity + one condvar notify (checkin) — O(1) in `M` and `N`, allocation-free after construction; registration/scan costs are **not** re-paid per task, that is the point | one mutex word; contended only when tasks outnumber idle handles |
//! | per `retire` (byte accounting) | stamp `size_of::<T>()` into the [`retired::RetiredPtr`] (a compile-time constant written next to the timestamp the wrapper already carries; raw `retire` keeps a size-unknown 0 path); bump the slot's retired-bytes stripe; one grain-gated [`budget::BudgetGovernor::observe`] — a comparison against the handle's last-reported figure, escalating to a striped `fetch_add` plus an O(#stripes) estimate refresh only when this handle's limbo moved a full grain (budget/64, clamped to [256 B, 64 KiB]) | single-writer padded lines; the governor add touches one of 8 `CachePadded` stripes, and only once per grain of churn — **no per-retire shared write** |
//! | per budget crossing ([`budget::BudgetGovernor`] escalation) | rung 1: a forced scan on the retiring handle; rung 2: the scheme's own pressure lever — HE's byte-mode [`clock::EraPacer`] boost, QSense's early fallback trip; rung 3: one bounded `yield_now` of retire-side backpressure when the forced scan failed to get back under budget | nothing new — every rung reuses the scan/switch machinery above, and every pull is counted in the queryable [`budget::BudgetVerdict`] |
//! | per op, guard layer ([`guard::Guard`] bracket) | `begin_op` at construction; `clear_protections` + `end_op` at drop — the per-op scheme costs above plus the telemetry rows below; the guard itself is a pointer and an (almost always empty) latency-sample slot, never allocated | none beyond the wrapped calls |
//! | per protected load ([`guard::Guard::load_protected`] / [`guard::Guard::protect_word`]) | the `protect` store above plus one acquire re-read of the link word (looping only while the word moves) — the same publish + re-validate pattern the hand-written protocol used, priced identically | identical to raw `protect` + re-read |
//! | per node allocated ([`guard::Owned::new`]) | one heap allocation of value + one-word birth-era header; the `alloc_node` stamp above written into the header | identical to `alloc_node` |
//! | per retire ([`guard::Unlinked::retire`] / [`guard::Guard::retire_raw`]) | exactly the sized retire above: birth era read back from the node header (one thread-local load), size a compile-time constant — the size-unknown 0-byte path is unreachable from the guard layer | identical to [`smr::SmrHandle::retire_sized`] |
//! | per handle drop | splice leftovers into the scheme's parked chain ([`segbag::SegBag::splice`]); park the pool + scratch on the scheme's [`handle_cache::HandleCache`]; retract the handle's reported byte contribution and move its leftover bytes to the governor's parked counter (two relaxed adds — leaked bytes stay visible, never stranded) | O(1) pointer surgery under a mutex — no allocation |
//! | per snapshot (`Smr::stats`) | sum all counter stripes | O(N) loads — diagnostic path, never on the hot path |
//! | per op, telemetry **disabled** (the default) | one relaxed load of the `enabled` flag at each record site — op begin ([`guard::Guard`] bracket), retire stamp, scan begin — then a branch away; no clock read, no stamp, no histogram touch | one read-mostly padded line shared by all record sites |
//! | per op, telemetry **enabled** ([`config::SmrConfig::with_telemetry`]) | op bracket: a counter bump, plus an `Instant` pair and one relaxed histogram `fetch_add` for the 1-in-2^[`config::SmrConfig::telemetry_sample_shift`] sampled ops; retire: the handle's *cached* coarse tick stamped into the [`retired::RetiredPtr`] padding — the clock is re-read only every [`telemetry::TICK_REFRESH`] retires (and for free on sampled ops, reusing their `Instant`), so a stale stamp can only over-report a delay, by at most the wall time those retires spanned; free: one relaxed `fetch_add` to the scanning handle's [`telemetry::LogHistogram`] stripe per freed node; scan: one `Instant` pair per pass that frees anything (empty passes skip the observer entirely) | relaxed adds to one of 8 cache-padded stripes — no shared read-modify-write on the unsampled path |
//!
//! ## Observability
//!
//! The [`telemetry`] module turns the paper's *distributional* claims into
//! measurements: a per-scheme [`telemetry::Telemetry`] holds three fixed-size
//! striped [`telemetry::LogHistogram`]s — guard-bracket **op latency**
//! (nanoseconds, sampled 1-in-N), **scan duration** (nanoseconds, every
//! pass), and **reclamation delay** (microseconds): a coarse tick stamped
//! into [`retired::RetiredPtr`] at retire and measured when the scan frees
//! the node, i.e. the retire→free distribution "bounded garbage" is about.
//!
//! Design choices, and their error bounds:
//!
//! * **Time sources** — precise [`std::time::Instant`] only on sampled ops and
//!   per-scan events; the per-retire stamp uses a µs-resolution `u32` tick
//!   (wraps ~71.6 min; correct across one wrap) that fits the wrapper's
//!   existing padding, so segment geometry and the retire path's single-writer
//!   discipline are untouched. Each handle caches the tick and re-reads the
//!   clock every [`telemetry::TICK_REFRESH`] retires — even a vDSO clock read
//!   is a third of a QSBR retire, so paying it per retire would distort the
//!   very path being measured. The cache can only *over*-report a delay, by
//!   at most the wall time the handle's last [`telemetry::TICK_REFRESH`]
//!   retires spanned.
//! * **Sampling rate** — 1-in-128 by default
//!   ([`config::SmrConfig::telemetry_sample_shift`]); percentiles of a
//!   uniform 1-in-N sample converge on the true distribution, and the modular
//!   counter costs one branch per op.
//! * **Histogram error** — 64 log2 buckets: any quantile is reported as its
//!   bucket's upper bound, within 2× of the true value and never an
//!   underestimate.
//! * **Consistency** — records are single relaxed `fetch_add`s (no lost
//!   counts); snapshots are bucket-wise monotone and exact after recorders
//!   quiesce — the histogram analog of the `retired >= freed` guarantee
//!   [`stats::StatStripe::merge_into`] gives the counters.
//!
//! Disabled (the default), every record site is **one relaxed load**; the
//! `ablation_telemetry` bench (`BENCH_ablation_telemetry.json`) holds both
//! that and the enabled path's overhead under CI watch.
//!
//! Segment recycling makes the whole retire→scan→reclaim pipeline allocation-free
//! in steady state, *including* bag growth past a single bag's previous high-water
//! mark (the per-handle pool backs all of a handle's bags) and the parked-bag
//! hand-off at handle drop (an O(1) chain splice; surviving handles re-adopt the
//! parked chain on their next flush). Handle registration itself allocates only
//! on the *first* wave: a dying handle parks its pool and scratch buffers on the
//! scheme's [`handle_cache::HandleCache`] and the next registrant adopts them,
//! so thread-pool churn (register → work → drop, repeatedly) is allocation-free
//! after the pool's first generation of handles.
//!
//! ## Robustness verdicts
//!
//! With [`config::SmrConfig::with_limbo_budget`] set, every scheme runs its
//! limbo *bytes* (stamped at retire, summed per chain, adjusted at adoption
//! and handle drop) against the same [`budget::BudgetGovernor`], and answers
//! for the run through [`Smr::budget_verdict`]: the peak byte estimate, the
//! wall-clock time spent over budget, and a counter per escalation rung
//! actually pulled. The ladder, in order:
//!
//! 1. **forced scan** — a budget crossing on the retire path forces a
//!    reclamation pass on the retiring handle, threshold counters
//!    notwithstanding;
//! 2. **scheme-specific pressure lever** — HE switches its [`clock::EraPacer`]
//!    into byte mode and tightens the era cadence; QSense trips its hybrid
//!    fallback switch *early* (before the node-count threshold `C` would);
//! 3. **bounded backpressure** — when the forced scan could not get back
//!    under budget (everything left is protected or too young), the retiring
//!    thread takes one `yield_now`, slowing the producer instead of the
//!    readers.
//!
//! Enforcement engages only *after* the estimate crosses the budget, so an
//! enforcing scheme legitimately peaks slightly above it —
//! [`budget::BudgetVerdict::within_budget`] is the strict check; CI's
//! robustness verdicts instead allow constant headroom (in-flight young
//! bursts + 4× budget) and require `escalations() > 0`. What the ladder can
//! and cannot bound, per scheme family:
//!
//! * **HP / Cadence / QSense / RefCount** — bounded: nothing a stalled or
//!   leaked participant does can keep an unprotected, aged node from a forced
//!   scan (RefCount frees eagerly and rarely needs rung 1 at all);
//! * **HE** — bounded: a stalled reservation pins only the eras up to the
//!   stall, and byte pressure tightens the pacer so later stalls pin less;
//! * **QSBR / EBR** — *not* bounded under their blocking faults (QSBR: any
//!   silent participant; EBR: a participant stalled or leaked mid-operation).
//!   The ladder fires — the verdict records the pulls and the time over
//!   budget — but no lever substitutes for the blocked grace period. The
//!   fault-injection suite asserts these as expected-fail verdicts rather
//!   than skipping them.
//!
//! ## Pointer-level safety contract
//!
//! All schemes traffic in type-erased pointers (`*mut u8` plus an `unsafe fn(*mut u8)`
//! destructor). The contract, identical to the paper's node-state machine (§2.1):
//!
//! 1. a node may be retired only after it has been unlinked from the data structure
//!    (state *removed*), and only once;
//! 2. a thread may dereference a removed node only while one of its protection slots
//!    (hazard pointers) covers it and the protection was validated while the node was
//!    still reachable (Condition 1 of the paper);
//! 3. once the scheme invokes the destructor the node is *free* and must never be
//!    touched again.
//!
//! ## Skip-list linking safety argument
//!
//! Rule 2's "validated while the node was still reachable" silently assumes a
//! fourth rule that every scanning scheme needs from the *data structure*:
//!
//! 4. **a retired node is never re-linked** — otherwise a reader could validate
//!    a fresh protection for it through the stale link *after* a scan already
//!    found it unprotected and freed it.
//!
//! The linked list and the BST get rule 4 for free, because their
//! validate-then-CAS pattern targets the very word it validated: any overlap of
//! a removal changes that word (the list marks the *outgoing* pointer of the
//! deleted node; the BST flags/tags the edge before splicing), so a stale CAS
//! fails on plain pointer+mark/clean-edge equality, and hazard-pointer
//! protection of the expected successor rules out address-reuse ABA (the
//! in-code notes at the `list::insert::pre_link_cas` and
//! `bst::insert::pre_link_cas` pause points carry the per-structure argument,
//! each pinned by a forced-schedule test in `tests/interleaving_harness.rs`).
//!
//! The skip list is the one structure where the pattern is *split*: `insert`'s
//! phase-2 membership validation (`succs[0] == node`, level 0) and its link CAS
//! (`pred.next[level]`, level ≥ 1) touch **different words**. A complete
//! `remove` — mark all levels, sweep, retire — fits between them while leaving
//! the CASed word bit-identical, so pointer equality proves nothing and the
//! stale CAS would re-link a retired node, violating rule 4. The fix is a
//! two-sided protocol over **versioned links** (`lockfree-ds::tagged`
//! `VersionedAtomic`: pointer + mark + a 16-bit per-link version that every
//! successful CAS bumps):
//!
//! * **Validate-on-link** — the link CAS's expected value is the full
//!   `LinkWord` (pointer *and* version) observed by the same traversal that
//!   validated membership, so "the link looks unchanged" and "the link is
//!   unchanged since my validation" coincide;
//! * **Upper-level fencing** — the remover's phase 3 first sweeps the victim
//!   out of every level *walking through equal-key runs* (a marked victim can
//!   transiently hide behind an equal-key node, where a plain `find` — which
//!   stops at the first key ≥ k — would never see it), then bumps the version
//!   of the canonical pred link at every upper level of the victim's tower. Any
//!   insert whose validation predates the sweep now fails its versioned CAS;
//!   any insert validating afterwards observes `succs[0] != node` and stops
//!   linking. Only after every fence bump lands while the victim is observed
//!   absent does the remover retire.
//!
//! Why each scheme's validation is sound given rule 4:
//!
//! * **HP / Cadence / QSense (fallback)** — a protection is honoured only if
//!   validated through a link the node is still reachable from; rule 4 makes
//!   "retired" imply "never again reachable", so every honoured protection was
//!   published before the retire and is seen by every subsequent scan (HP: the
//!   publication fence; Cadence/QSense: rooster-bounded store visibility, which
//!   the deferred-reclamation age outwaits).
//! * **HE** — era reservations cover a node only while the reader's `[lower,
//!   upper]` interval overlaps the node's birth–retire interval; a re-linked
//!   retired node could be validated by a reader whose interval starts entirely
//!   *after* the retire era, which no scan would wait for. Rule 4 removes the
//!   case.
//! * **QSBR / EBR / QSense (fast path)** — already safe without rule 4: the
//!   stale re-link is performed by a thread inside an operation, so the grace
//!   period that must elapse before the victim is freed cannot complete while
//!   that thread still holds (and could republish) the reference. The fix turns
//!   their probabilistic non-exposure into the same structural guarantee the
//!   scanning schemes get.
//!
//! Version wrap (2¹⁶) is analyzed in `lockfree-ds::tagged`'s module docs: a
//! dangerous wrap requires one traversal to stall across ≥ 32 768 successful
//! unlink/re-link cycles of one node its own protection keeps alive — and
//! retired nodes, the only dangerous targets, are never re-linked at all. The
//! deterministic regression schedule (which re-linked a retired node on the
//! pre-versioned skip list under hp, cadence, he and qsense alike) lives in
//! `tests/interleaving_harness.rs`.
//!
//! ## Verification
//!
//! Two test-only layers check the protocol above *mechanically* instead of by
//! argument (`crates/reclaim-check` drives both; neither exists in a default
//! build):
//!
//! **The shadow-heap oracle** (`feature = "check-oracle"`, the [`oracle`]
//! module) tracks every node in an address-keyed state machine —
//! `Live → Retired → Freed`:
//!
//! * [`guard::Owned::new`] (and the expert structures' raw `Node::alloc`
//!   sites) **register** the allocation;
//! * [`retired::RetiredPtr::with_birth_sized`] — the constructor every
//!   scheme's retire path funnels through — marks it **Retired**
//!   (double-retire and retire-after-free panic);
//! * [`retired::RetiredPtr::reclaim`] — the single free choke point — marks
//!   it **Freed**; under the explorer's *quarantine* mode the destructor is
//!   skipped, the first 8 bytes of the node are overwritten with
//!   [`oracle::CANARY`] (`0xDEAD_BEEF_5AFE_CA4E`) and the allocation is
//!   leaked, so a freed address can never be reused and mask a UAF;
//! * every validated [`guard::Guard::load_protected`] /
//!   [`guard::Guard::protect_word`] success and every [`guard::Shared`] /
//!   [`guard::Unlinked`] dereference is a **checkpoint**: a `Freed` verdict
//!   panics on the spot, naming the node address, its shadow state, the
//!   canary status and the context (scheme + schedule) the harness installed
//!   via [`oracle::set_context`] — a reservation-coverage violation becomes a
//!   deterministic verdict at the exact instruction that would have touched
//!   freed memory.
//!
//! Synchronous owned frees ([`guard::Owned::into_inner`]/`Drop`, structure
//! teardown walks, failed-insert rollbacks) **deregister** instead; nodes the
//! oracle never saw allocated (raw test Boxes) are tracked from retire to
//! free only, so allocator address reuse it cannot see never false-positives.
//!
//! **The schedule explorer** (`reclaim-check`) serializes 2–3 model threads
//! through `lockfree-ds::interleave`'s pause points and enumerates every
//! interleaving up to a **preemption bound** (default 2, CHESS-style):
//! within the bound the enumeration is exhaustive over the instrumented
//! points, so "exploration completes clean" means *no schedule with ≤ N
//! preemptions at the pause points violates the oracle* — it says nothing
//! about windows no pause point names, about schedules needing more
//! preemptions, or about weak-memory reorderings (execution is sequentially
//! consistent under the scheduler). Every failure report carries the exact
//! `thread@pause-point` schedule that produced it; to pin one as a
//! regression, paste the trace into `reclaim_check::Explorer::replay`, which
//! re-runs that single schedule deterministically (see
//! `crates/reclaim-check/tests/replayed_schedules.rs` for the PR 4 races
//! re-found this way).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc_track;
pub mod backoff;
pub mod budget;
pub mod clock;
pub mod config;
pub mod guard;
pub mod handle_cache;
pub mod leaky;
pub mod lease;
pub mod membarrier;
#[cfg(feature = "check-oracle")]
pub mod oracle;
pub mod pad;
pub mod registry;
pub mod retired;
pub mod scratch;
pub mod segbag;
pub mod smr;
pub mod stats;
pub mod tagged;
pub mod telemetry;

pub use alloc_track::CountingAllocator;
pub use backoff::Backoff;
pub use budget::{BudgetGovernor, BudgetVerdict};
pub use clock::{
    Clock, Era, EraAdvancePolicy, EraClock, EraPacer, ManualClock, Nanos,
    DEFAULT_ERA_ADVANCE_INTERVAL, NO_BIRTH_ERA,
};
pub use config::SmrConfig;
pub use guard::{Atomic, Guard, Owned, Shared, Unlinked};
pub use handle_cache::{HandleCache, ScanParts};
pub use leaky::{Leaky, LeakyHandle};
pub use lease::{HandleLease, LeaseExhausted, LeasePolicy, LeasePool};
pub use pad::CachePadded;
pub use registry::{Registry, RegistryFull, SlotId, SHARD_SLOTS};
pub use retired::RetiredPtr;
pub use scratch::PtrScratch;
pub use segbag::{ParkedChain, SegBag, SegPool, SEG_CAP};
pub use smr::{drop_fn_for, CapacityExhausted, Smr, SmrHandle};
pub use stats::{ShardedStats, StatStripe, StatsSnapshot};
pub use telemetry::{
    HandleTelemetry, HistSnapshot, LogHistogram, ScanObserver, Telemetry, TelemetrySummary,
};

/// Convenience: retire a typed, heap-allocated (`Box`-originated) pointer through any
/// [`SmrHandle`].
///
/// Being typed, this knows the node's `Layout` and stamps its size
/// (`size_of::<T>()`) into the retired record, feeding the limbo byte
/// accounting; the raw [`SmrHandle::retire`] stays the size-unknown path.
///
/// # Safety
///
/// `ptr` must have been created by `Box::into_raw`, must already be unlinked from the
/// data structure, and must not be retired more than once.
pub unsafe fn retire_box<T, H: SmrHandle + ?Sized>(handle: &mut H, ptr: *mut T) {
    handle.retire_sized(
        ptr.cast::<u8>(),
        drop_fn_for::<T>(),
        NO_BIRTH_ERA,
        std::mem::size_of::<T>(),
    );
}

/// Convenience: retire a typed, heap-allocated pointer together with its
/// allocation-time birth era (the stamp [`SmrHandle::alloc_node`] produced when
/// the node was created; see [`SmrHandle::retire_with_birth`]) and its size
/// (`size_of::<T>()`, for the limbo byte accounting).
///
/// # Safety
///
/// Same contract as [`retire_box`]; `birth_era` must be the node's stamp or
/// [`NO_BIRTH_ERA`].
pub unsafe fn retire_box_with_birth<T, H: SmrHandle + ?Sized>(
    handle: &mut H,
    ptr: *mut T,
    birth_era: Era,
) {
    handle.retire_sized(
        ptr.cast::<u8>(),
        drop_fn_for::<T>(),
        birth_era,
        std::mem::size_of::<T>(),
    );
}
