//! Segment-chain retired-node bags: the allocation-free steady-state retire path.
//!
//! `RetiredBag` (the previous generation of this module's job) stored retired
//! nodes in a `Vec<RetiredPtr>`. That left two allocation sites *on* the retire
//! path — `Vec` doubling when a bag grew past its high-water mark, and a fresh
//! `Vec` per parked bag at handle drop — plus an O(n) copy at every doubling.
//! [`SegBag`] removes all of them by storing nodes in fixed-size **segments**
//! linked into a chain:
//!
//! * **push** writes into the tail segment; when it fills, the next segment is
//!   popped from a per-handle free list ([`SegPool`]) in O(1). The allocator is
//!   touched only when the pool is empty, i.e. only while a thread's *total*
//!   outstanding retired-node count exceeds everything it has seen before.
//!   Because the pool is shared by all of a handle's bags (the three epoch limbo
//!   lists of QSBR/QSense, the four of EBR), a bag can grow far past its own
//!   previous high-water mark without allocating, as long as the handle's
//!   segments cover it.
//! * **reclaim** compacts survivors in place *within their segment* and
//!   unlinks drained segments back to the pool — zero heap traffic, O(freed)
//!   moves (survivors never migrate across segments, with one bounded
//!   exception: at most one *adjacent-segment merge* per pass, see below), same
//!   cost class as the old `swap_remove` partition but with segment recycling
//!   instead of a retained `Vec` capacity.
//! * **adjacent-segment merge**: when a pass leaves two neighbouring segments
//!   whose combined survivors fit one segment, the later segment's survivors
//!   are appended to the earlier one and the drained shell is pooled. At most
//!   one merge happens per pass (≤ [`SEG_CAP`] moves, i.e. O(1) extra work per
//!   scan), which is enough to stop scattered long-lived survivors — the
//!   hazard-pointer residue — from pinning one near-empty segment each: every
//!   scan shrinks such a chain by one segment until the survivors share one.
//! * **splice** moves another bag's entire chain in O(1) pointer surgery. This
//!   is what makes the parked-bag hand-off at handle drop allocation-free: the
//!   scheme keeps one [`ParkedChain`] and dying handles splice their leftovers
//!   into it; surviving handles adopt the parked chain back (another splice) on
//!   their next flush.
//!
//! ## Segment size
//!
//! A [`RetiredPtr`] is 40 bytes (pointer, destructor, timestamp, birth era,
//! size stamp). With [`SEG_CAP`] = 12 slots plus the `next`/`len` header a
//! segment is 496 bytes — eight cache lines, comfortably under one 512-byte
//! allocator size class. The size is a balance: large enough that the
//! amortized per-retire overhead (chain link maintenance, pool pop) is a small
//! fraction of a pointer push, small enough that a mostly-empty bag wastes at
//! most a few hundred bytes and that EBR's "touch shared epoch state once per
//! segment" batching still reacts quickly (every 12 retires).
//!
//! ## Byte accounting
//!
//! Every bag maintains a running total of its nodes' stamped allocation sizes
//! ([`SegBag::bytes`]), updated on push, splice and reclaim, so "how much
//! memory does this limbo list pin" is an O(1) read — the primitive the
//! scheme-wide limbo *byte* budgets are built on. Nodes retired through the
//! size-unknown raw path weigh zero (see [`RetiredPtr::size_bytes`]): the
//! total under-counts, never over-counts.
//!
//! ## Safety model
//!
//! A `SegBag` is owned by one thread at a time (all methods take `&mut self`);
//! `splice` transfers whole chains between owners, which is safe because a
//! [`RetiredPtr`] is `Send`. Segments are manually managed `Box` allocations;
//! the only `unsafe` is the slot bookkeeping, where the compaction's
//! within-segment write index never passes its read index — see `reclaim_if`.

use crate::retired::RetiredPtr;
use std::fmt;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::Mutex;

/// Retired nodes per segment (see the module docs for the size rationale).
pub const SEG_CAP: usize = 12;

/// One fixed-size link of a [`SegBag`] chain.
struct Segment {
    next: *mut Segment,
    /// Number of initialized slots. Pushes fill only the tail, but partial
    /// segments can sit mid-chain (after a `splice`, or where `reclaim_if`
    /// freed some of a segment's nodes); every traversal honours per-segment
    /// `len`.
    len: usize,
    slots: [MaybeUninit<RetiredPtr>; SEG_CAP],
}

impl Segment {
    fn alloc() -> *mut Segment {
        Box::into_raw(Box::new(Segment {
            next: ptr::null_mut(),
            len: 0,
            slots: [const { MaybeUninit::uninit() }; SEG_CAP],
        }))
    }

    /// # Safety
    ///
    /// `seg` must have come from [`Segment::alloc`] and hold no initialized
    /// slots the caller still cares about (moved out or already dropped).
    unsafe fn dealloc(seg: *mut Segment) {
        // SAFETY: forwarded from the caller's contract; the slots are
        // `MaybeUninit`, so dropping the box never runs `RetiredPtr` work.
        #[allow(clippy::disallowed_methods)]
        // sanctioned: segment deallocation: the pool's only free path
        drop(unsafe { Box::from_raw(seg) });
    }
}

/// A per-handle free list of empty segments.
///
/// Bags draw empty segments from the pool on push and return drained segments
/// on reclaim. The pool is unbounded but can only grow to the owning handle's
/// all-time peak segment count — the classic high-water-mark retention that
/// makes the steady state allocation-free. It is deliberately a separate type
/// (not embedded in [`SegBag`]) so one handle's pool can back several bags.
pub struct SegPool {
    free: *mut Segment,
    free_len: usize,
}

// SAFETY: the pool owns its (empty) segments outright; there is no aliasing —
// moving it to another thread moves plain heap blocks.
unsafe impl Send for SegPool {}

impl SegPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self {
            free: ptr::null_mut(),
            free_len: 0,
        }
    }

    /// Creates a pool pre-warmed with enough segments to hold `nodes` retired
    /// nodes, so a handle that knows its scan threshold never allocates on the
    /// retire path at all — not even the first time its bag fills up.
    pub fn with_node_capacity(nodes: usize) -> Self {
        let mut pool = Self::new();
        for _ in 0..nodes.div_ceil(SEG_CAP) {
            let seg = Segment::alloc();
            // SAFETY: freshly allocated, empty.
            unsafe { pool.put(seg) };
        }
        pool
    }

    /// Number of empty segments currently pooled.
    pub fn free_segments(&self) -> usize {
        self.free_len
    }

    /// Pops an empty segment, allocating only when the pool is dry.
    fn get(&mut self) -> *mut Segment {
        if self.free.is_null() {
            return Segment::alloc();
        }
        let seg = self.free;
        // SAFETY: `seg` came from `put`, which keeps the free list well formed.
        self.free = unsafe { (*seg).next };
        self.free_len -= 1;
        // SAFETY: `seg` was just unlinked from the free list and is exclusively owned here.
        unsafe {
            (*seg).next = ptr::null_mut();
        }
        seg
    }

    /// Returns a drained segment to the free list.
    ///
    /// # Safety
    ///
    /// Every slot of `seg` must be uninitialized (moved out or reclaimed).
    unsafe fn put(&mut self, seg: *mut Segment) {
        // SAFETY: the caller guarantees the segment is drained; resetting `len`
        // makes that state canonical before it is reused.
        unsafe {
            (*seg).len = 0;
            (*seg).next = self.free;
        }
        self.free = seg;
        self.free_len += 1;
    }
}

impl Default for SegPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SegPool {
    fn drop(&mut self) {
        let mut seg = self.free;
        while !seg.is_null() {
            // SAFETY: free-list segments are empty and owned by the pool.
            let next = unsafe { (*seg).next };
            unsafe { Segment::dealloc(seg) };
            seg = next;
        }
    }
}

impl fmt::Debug for SegPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegPool")
            .field("free_segments", &self.free_len)
            .finish()
    }
}

/// A thread-local bag of retired nodes stored as a chain of fixed segments.
///
/// The owning thread pushes retired nodes and periodically drains the bag
/// through a scheme-specific predicate (hazard-pointer scan, grace-period
/// check, age check). Other threads never touch a live bag; whole bags change
/// owners only via [`splice`](Self::splice) (parked-bag hand-off).
pub struct SegBag {
    /// Oldest segment (start of the chain); null iff the bag is empty.
    head: *mut Segment,
    /// Newest segment — the push target; null iff the bag is empty.
    tail: *mut Segment,
    len: usize,
    /// Sum of the stamped allocation sizes of every node in the bag, kept in
    /// lock-step with `len` (push adds, splice transfers, reclaim subtracts)
    /// so byte totals are O(1) reads.
    bytes: usize,
}

// SAFETY: the chain is uniquely owned by the bag and `RetiredPtr` is `Send`;
// moving the bag moves ownership of every pending destructor call.
unsafe impl Send for SegBag {}

impl SegBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        Self {
            head: ptr::null_mut(),
            tail: ptr::null_mut(),
            len: 0,
            bytes: 0,
        }
    }

    /// Number of nodes currently awaiting reclamation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Total stamped allocation bytes awaiting reclamation in this bag. O(1);
    /// nodes whose retire path did not stamp a size count zero.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// True when no nodes await reclamation.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments currently linked into the chain (diagnostics/tests).
    pub fn segments(&self) -> usize {
        let mut count = 0;
        let mut seg = self.head;
        while !seg.is_null() {
            count += 1;
            // SAFETY: chain segments are owned by the bag and well formed.
            seg = unsafe { (*seg).next };
        }
        count
    }

    /// Adds a retired node, drawing a segment from `pool` if the tail is full.
    pub fn push(&mut self, pool: &mut SegPool, node: RetiredPtr) {
        self.bytes += node.size_bytes();
        // SAFETY: `head`/`tail` segments come from `pool.get` and are exclusively owned by this bag.
        unsafe {
            if self.tail.is_null() {
                let seg = pool.get();
                self.head = seg;
                self.tail = seg;
            } else if (*self.tail).len == SEG_CAP {
                let seg = pool.get();
                (*self.tail).next = seg;
                self.tail = seg;
            }
            // SAFETY: the tail now has a free slot at `len`.
            let tail = &mut *self.tail;
            tail.slots[tail.len].write(node);
            tail.len += 1;
        }
        self.len += 1;
    }

    /// Moves every node out of `other` into `self` with O(1) pointer surgery —
    /// no copy, no allocation. Used for the parked-bag hand-off at handle drop
    /// (dying handle → scheme) and for parked-chain adoption (scheme →
    /// surviving handle), and when QSense folds its limbo lists together.
    pub fn splice(&mut self, other: &mut SegBag) {
        if other.head.is_null() {
            return;
        }
        if self.head.is_null() {
            self.head = other.head;
            self.tail = other.tail;
        } else {
            // SAFETY: both chains are well formed and uniquely owned.
            unsafe { (*self.tail).next = other.head };
            self.tail = other.tail;
        }
        self.len += other.len;
        self.bytes += other.bytes;
        other.head = ptr::null_mut();
        other.tail = ptr::null_mut();
        other.len = 0;
        other.bytes = 0;
    }

    /// Reclaims every node for which `can_reclaim` returns true; nodes that are
    /// not yet safe remain in the bag. Returns the number of nodes reclaimed.
    ///
    /// Survivors are compacted **within their segment only** (a local write
    /// cursor trailing the read index), and segments left empty are unlinked
    /// and returned to `pool` — zero heap allocations either way. Crucially,
    /// survivors never migrate across segments wholesale: an earlier revision
    /// repacked the whole chain densely, which moved *every* survivor whenever
    /// a prefix of the bag was freed — exactly Cadence's steady state, where
    /// each scan frees the oldest few nodes of an age-ordered bag holding tens
    /// of thousands of still-young survivors, turning an O(freed) partition
    /// into an O(bag) copy per scan. The one bounded exception is the
    /// opportunistic **adjacent-segment merge**: at most once per pass, two
    /// neighbouring segments whose combined survivors fit one segment are
    /// folded together (≤ [`SEG_CAP`] moves — O(1)), so scattered long-lived
    /// survivors converge toward one shared segment over successive scans
    /// instead of pinning one near-empty segment each. The residual slack is
    /// still bounded by the survivor count — for real schemes the
    /// hazard-pointer residue (≤ `N·K` nodes) — it just stops being one
    /// *segment* per survivor.
    ///
    /// Survivor order is preserved; no caller relies on it, but the tests do
    /// check it to pin the compaction down.
    ///
    /// # Safety
    ///
    /// The predicate must only return `true` for nodes that no other thread can
    /// still access (*retired* in the paper's terminology).
    pub unsafe fn reclaim_if(
        &mut self,
        pool: &mut SegPool,
        mut can_reclaim: impl FnMut(&RetiredPtr) -> bool,
    ) -> usize {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.reclaim_impl(pool, |_| true, &mut can_reclaim, |_| {}) }
    }

    /// Like [`reclaim_if`](Self::reclaim_if), but additionally calls
    /// `visit_survivor` exactly once for every node that *remains* in the bag
    /// after the pass. The walk already touches every survivor to compact it,
    /// so the visit is free; callers use it to recompute aggregate bounds
    /// (e.g. the era chains' min/max birth) that would otherwise go stale
    /// after a partial reclaim — stale bounds cost O(bag) walks on every
    /// later scan until the bag fully drains.
    ///
    /// # Safety
    ///
    /// Same contract as [`reclaim_if`](Self::reclaim_if).
    pub unsafe fn reclaim_if_visit(
        &mut self,
        pool: &mut SegPool,
        mut can_reclaim: impl FnMut(&RetiredPtr) -> bool,
        mut visit_survivor: impl FnMut(&RetiredPtr),
    ) -> usize {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.reclaim_impl(pool, |_| true, &mut can_reclaim, &mut visit_survivor) }
    }

    /// Like [`reclaim_if`](Self::reclaim_if), but the walk stops for good at
    /// the first node for which `keep_scanning` returns false; later nodes are
    /// not examined (and not reclaimed) this pass.
    ///
    /// This is the age-ordered fast path for deferred-reclamation scans
    /// (Cadence, QSense's fallback): a thread pushes in retirement order, so
    /// once a node is too young to free, everything behind it is younger
    /// still — the scan touches only the reclaimable prefix plus one node,
    /// O(freed), instead of walking tens of thousands of still-young
    /// survivors. A [`splice`](Self::splice) can append *older* nodes behind
    /// younger ones (parked-chain adoption); stopping early merely delays
    /// those until the nodes in front of them age too, which is always safe.
    ///
    /// # Safety
    ///
    /// Same contract as [`reclaim_if`](Self::reclaim_if).
    pub unsafe fn reclaim_if_while(
        &mut self,
        pool: &mut SegPool,
        mut keep_scanning: impl FnMut(&RetiredPtr) -> bool,
        mut can_reclaim: impl FnMut(&RetiredPtr) -> bool,
    ) -> usize {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.reclaim_impl(pool, &mut keep_scanning, &mut can_reclaim, |_| {}) }
    }

    /// Shared walk for the two reclaim entry points (see their docs).
    ///
    /// # Safety
    ///
    /// `can_reclaim` must only return `true` for nodes no other thread can
    /// still access.
    unsafe fn reclaim_impl(
        &mut self,
        pool: &mut SegPool,
        mut keep_scanning: impl FnMut(&RetiredPtr) -> bool,
        can_reclaim: &mut impl FnMut(&RetiredPtr) -> bool,
        mut visit_survivor: impl FnMut(&RetiredPtr),
    ) -> usize {
        let mut freed = 0usize;
        let mut freed_bytes = 0usize;
        let mut prev: *mut Segment = ptr::null_mut();
        let mut seg = self.head;
        let mut stopped = false;
        let mut merged = false;
        // SAFETY: the caller vouches that nodes passing the predicate are unprotected; the bag exclusively owns its segments, and compaction moves each survivor exactly once.
        unsafe {
            while !seg.is_null() && !stopped {
                let next = (*seg).next;
                let len = (*seg).len;
                let mut write = 0usize;
                for read in 0..len {
                    let slot = (*seg).slots.as_mut_ptr().add(read);
                    // SAFETY: `read < len`, so the slot is initialized.
                    let node_ref = (*slot).assume_init_ref();
                    if !stopped && !keep_scanning(node_ref) {
                        stopped = true;
                    }
                    if !stopped && can_reclaim(node_ref) {
                        let node = (*slot).assume_init_read();
                        freed_bytes += node.size_bytes();
                        // SAFETY: forwarded from the caller's contract.
                        node.reclaim();
                        freed += 1;
                    } else {
                        // Survivor (or unexamined remainder after a stop):
                        // compact within the segment.
                        visit_survivor(node_ref);
                        if write != read {
                            // SAFETY: `write < read`, so the target slot was
                            // already read out of; the move neither drops a
                            // live node nor duplicates one.
                            let node = (*slot).assume_init_read();
                            (*seg)
                                .slots
                                .as_mut_ptr()
                                .add(write)
                                .write(MaybeUninit::new(node));
                        }
                        write += 1;
                    }
                }
                (*seg).len = write;
                if write == 0 {
                    // Drained: unlink and recycle. SAFETY: every slot was
                    // reclaimed above.
                    if prev.is_null() {
                        self.head = next;
                    } else {
                        (*prev).next = next;
                    }
                    if self.tail == seg {
                        self.tail = prev;
                    }
                    pool.put(seg);
                } else if !merged && !prev.is_null() && (*prev).len + write <= SEG_CAP {
                    // Opportunistic adjacent-segment merge (at most one per
                    // pass, ≤ SEG_CAP moves): append this segment's survivors
                    // to the previous one and recycle the drained shell.
                    // Appending after the predecessor's survivors preserves
                    // global order, since `prev` precedes `seg` in the chain.
                    let plen = (*prev).len;
                    for i in 0..write {
                        // SAFETY: slots `0..write` of `seg` are initialized
                        // (just compacted) and slots `plen..plen + write` of
                        // `prev` are free (`plen + write <= SEG_CAP`); each
                        // node is moved exactly once.
                        let node = (*seg).slots[i].assume_init_read();
                        (*prev)
                            .slots
                            .as_mut_ptr()
                            .add(plen + i)
                            .write(MaybeUninit::new(node));
                    }
                    (*prev).len = plen + write;
                    (*seg).len = 0;
                    (*prev).next = next;
                    if self.tail == seg {
                        self.tail = prev;
                    }
                    // SAFETY: every slot of `seg` was moved out above.
                    pool.put(seg);
                    merged = true;
                } else {
                    prev = seg;
                }
                seg = next;
            }
        }
        self.len -= freed;
        self.bytes -= freed_bytes;
        freed
    }

    /// Unconditionally reclaims every node in the bag. Returns the number
    /// reclaimed.
    ///
    /// # Safety
    ///
    /// Caller must guarantee that no thread can access any node in the bag
    /// (e.g. the scheme is being dropped and all handles are gone).
    pub unsafe fn reclaim_all(&mut self, pool: &mut SegPool) -> usize {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.reclaim_if(pool, |_| true) }
    }

    /// Iterates over the retired nodes without reclaiming them.
    pub fn iter(&self) -> SegBagIter<'_> {
        SegBagIter {
            seg: self.head,
            idx: 0,
            _bag: std::marker::PhantomData,
        }
    }
}

impl Default for SegBag {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SegBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegBag")
            .field("len", &self.len)
            .field("bytes", &self.bytes)
            .field("segments", &self.segments())
            .finish()
    }
}

impl Drop for SegBag {
    fn drop(&mut self) {
        // Dropping a non-empty bag would leak the nodes. Schemes drain their
        // bags (or splice them into the scheme's parked bag) in their own Drop
        // impls; reaching this point with leftovers indicates a scheme bug in
        // debug builds, and in release we leak the *nodes* rather than risk a
        // double free — but the segment memory itself is always released.
        debug_assert!(
            self.len == 0,
            "SegBag dropped with {} unreclaimed nodes",
            self.len
        );
        let mut seg = self.head;
        while !seg.is_null() {
            // SAFETY: the chain is uniquely owned; any still-initialized
            // RetiredPtr slots carry no Drop impl of their own (the pointed-to
            // nodes leak deliberately, see above).
            let next = unsafe { (*seg).next };
            unsafe { Segment::dealloc(seg) };
            seg = next;
        }
    }
}

/// Scheme-level parking lot for the limbo leftovers of exited threads.
///
/// A dying handle [`park`](Self::park)s whatever its final scan could not free
/// (an O(1) chain splice under the lock, no allocation); the next surviving
/// handle to flush [`adopt`](Self::adopt_into)s the whole chain back into its
/// own bag, where the nodes rejoin normal scanning; anything never adopted is
/// [`drain`](Self::drain_all)ed when the scheme itself drops. Every scheme
/// embeds one of these — the protocol lives here exactly once instead of being
/// repeated per scheme crate.
pub struct ParkedChain {
    chain: Mutex<SegBag>,
}

impl ParkedChain {
    /// Creates an empty parking lot.
    pub fn new() -> Self {
        Self {
            chain: Mutex::new(SegBag::new()),
        }
    }

    /// Splices `leftovers` into the parked chain. O(1); skips the lock when
    /// there is nothing to park.
    pub fn park(&self, leftovers: &mut SegBag) {
        if leftovers.is_empty() {
            return;
        }
        self.chain
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .splice(leftovers);
    }

    /// Splices the entire parked chain into `into`. O(1).
    pub fn adopt_into(&self, into: &mut SegBag) {
        let mut parked = self.chain.lock().unwrap_or_else(|e| e.into_inner());
        into.splice(&mut parked);
    }

    /// Stamped bytes currently sitting in the parking lot (diagnostics; takes
    /// the lock).
    pub fn parked_bytes(&self) -> usize {
        self.chain
            .lock()
            .map(|chain| chain.bytes())
            .unwrap_or_default()
    }

    /// Unconditionally frees every parked node, returning `(nodes, bytes)`
    /// freed. The drained segments are released to the allocator (via a
    /// throwaway pool) — this runs at scheme drop, not on any hot path.
    ///
    /// # Safety
    ///
    /// Caller must guarantee no thread can access any parked node (e.g. the
    /// scheme is being dropped and every handle is gone).
    pub unsafe fn drain_all(&self) -> (usize, usize) {
        let mut parked = self.chain.lock().unwrap_or_else(|e| e.into_inner());
        let mut pool = SegPool::new();
        let bytes = parked.bytes();
        // SAFETY: forwarded from the caller's contract.
        let nodes = unsafe { parked.reclaim_all(&mut pool) };
        (nodes, bytes - parked.bytes())
    }
}

impl Default for ParkedChain {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ParkedChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let len = self
            .chain
            .lock()
            .map(|chain| chain.len())
            .unwrap_or_default();
        f.debug_struct("ParkedChain").field("len", &len).finish()
    }
}

/// Borrowing iterator over a [`SegBag`]'s nodes, segment by segment.
pub struct SegBagIter<'a> {
    seg: *mut Segment,
    idx: usize,
    _bag: std::marker::PhantomData<&'a SegBag>,
}

impl<'a> Iterator for SegBagIter<'a> {
    type Item = &'a RetiredPtr;

    fn next(&mut self) -> Option<&'a RetiredPtr> {
        loop {
            if self.seg.is_null() {
                return None;
            }
            // SAFETY: the borrow on the bag keeps the chain alive and unmodified.
            unsafe {
                if self.idx < (*self.seg).len {
                    let item = (*self.seg).slots[self.idx].assume_init_ref();
                    self.idx += 1;
                    return Some(item);
                }
                self.seg = (*self.seg).next;
                self.idx = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Nanos;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct DropCounter {
        counter: Arc<AtomicUsize>,
    }

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.counter.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn retire_counter(counter: &Arc<AtomicUsize>, at: Nanos) -> RetiredPtr {
        let boxed = Box::new(DropCounter {
            counter: Arc::clone(counter),
        });
        let raw = Box::into_raw(boxed).cast::<u8>();
        unsafe fn drop_counter(ptr: *mut u8) {
            // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
            #[allow(clippy::disallowed_methods)]
            // sanctioned: drop_fn thunk: the retire contract pairs this with Box::into_raw
            unsafe {
                drop(Box::from_raw(ptr.cast::<DropCounter>()))
            };
        }
        // SAFETY: the pointer was just produced by Box::into_raw and matches the drop function's type.
        unsafe { RetiredPtr::new(raw, drop_counter, at) }
    }

    fn retire_counter_sized(counter: &Arc<AtomicUsize>, at: Nanos, size: usize) -> RetiredPtr {
        let boxed = Box::new(DropCounter {
            counter: Arc::clone(counter),
        });
        let raw = Box::into_raw(boxed).cast::<u8>();
        unsafe fn drop_counter(ptr: *mut u8) {
            // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
            #[allow(clippy::disallowed_methods)]
            // sanctioned: drop_fn thunk: the retire contract pairs this with Box::into_raw
            unsafe {
                drop(Box::from_raw(ptr.cast::<DropCounter>()))
            };
        }
        // SAFETY: `raw` was just leaked via Box::into_raw and matches `drop_counter`'s type.
        unsafe { RetiredPtr::with_birth_sized(raw, drop_counter, at, 0, size) }
    }

    #[test]
    fn segment_fits_eight_cache_lines() {
        assert!(
            std::mem::size_of::<Segment>() <= 512,
            "segment grew past its size class: {} bytes",
            std::mem::size_of::<Segment>()
        );
    }

    #[test]
    fn byte_totals_track_push_splice_and_reclaim() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut a = SegBag::new();
        let mut b = SegBag::new();
        assert_eq!(a.bytes(), 0);
        // Sizes 100, 200, 300, ... make partial frees distinguishable.
        for t in 0..(SEG_CAP as u64 + 3) {
            a.push(
                &mut pool,
                retire_counter_sized(&counter, t, 100 * (t as usize + 1)),
            );
        }
        let n = SEG_CAP + 3;
        let total: usize = (1..=n).map(|i| 100 * i).sum();
        assert_eq!(a.bytes(), total);
        // Unknown-size nodes weigh zero.
        a.push(&mut pool, retire_counter(&counter, 999));
        assert_eq!(a.bytes(), total);
        // Splice transfers the byte total along with the chain.
        b.push(&mut pool, retire_counter_sized(&counter, 1_000, 64));
        a.splice(&mut b);
        assert_eq!(a.bytes(), total + 64);
        assert_eq!(b.bytes(), 0);
        // A partial reclaim subtracts exactly the freed nodes' stamps.
        // SAFETY: the test owns every node in the bag; none is protected.
        let freed = unsafe { a.reclaim_if(&mut pool, |node| node.retired_at() < 2) };
        assert_eq!(freed, 2);
        assert_eq!(a.bytes(), total + 64 - 100 - 200);
        // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
        unsafe { a.reclaim_all(&mut pool) };
        assert_eq!(a.bytes(), 0);
    }

    #[test]
    fn parked_chain_reports_and_drains_bytes() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut leftovers = SegBag::new();
        for t in 0..4u64 {
            leftovers.push(&mut pool, retire_counter_sized(&counter, t, 50));
        }
        let parked = ParkedChain::new();
        parked.park(&mut leftovers);
        assert_eq!(parked.parked_bytes(), 200);
        // SAFETY: the test owns the parked nodes; no scan is concurrent.
        let (nodes, bytes) = unsafe { parked.drain_all() };
        assert_eq!((nodes, bytes), (4, 200));
        assert_eq!(parked.parked_bytes(), 0);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn push_links_segments_and_reclaim_recycles_them() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut bag = SegBag::new();
        let n = 3 * SEG_CAP + 5;
        for t in 0..n as u64 {
            bag.push(&mut pool, retire_counter(&counter, t));
        }
        assert_eq!(bag.len(), n);
        assert_eq!(bag.segments(), 4);
        // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
        let freed = unsafe { bag.reclaim_all(&mut pool) };
        assert_eq!(freed, n);
        assert!(bag.is_empty());
        assert_eq!(bag.segments(), 0);
        assert_eq!(pool.free_segments(), 4, "drained segments must be pooled");
        assert_eq!(counter.load(Ordering::SeqCst), n);
    }

    #[test]
    fn reclaim_if_frees_only_matching_nodes_and_preserves_survivors() {
        // Each mask bit selects which of 2*SEG_CAP nodes are reclaimable.
        for round in 0..64u64 {
            let counter = Arc::new(AtomicUsize::new(0));
            let mut pool = SegPool::new();
            let mut bag = SegBag::new();
            let n = 2 * SEG_CAP as u64;
            for t in 0..n {
                bag.push(&mut pool, retire_counter(&counter, t));
            }
            // A different pseudo-random keep/free pattern per round.
            let keep =
                |t: u64| (t.wrapping_mul(2654435761).wrapping_add(round * 97)).is_multiple_of(3);
            let expected_freed = (0..n).filter(|&t| !keep(t)).count();
            // SAFETY: retired nodes are owned by the bag; the predicate only spares still-protected ones.
            let freed = unsafe { bag.reclaim_if(&mut pool, |node| !keep(node.retired_at())) };
            assert_eq!(freed, expected_freed, "round {round}");
            assert_eq!(counter.load(Ordering::SeqCst), expected_freed);
            assert_eq!(bag.len(), n as usize - expected_freed);
            let survivors: Vec<u64> = bag.iter().map(RetiredPtr::retired_at).collect();
            let expected: Vec<u64> = (0..n).filter(|&t| keep(t)).collect();
            assert_eq!(
                survivors, expected,
                "round {round}: compaction must keep order"
            );
            // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
            unsafe { bag.reclaim_all(&mut pool) };
        }
    }

    #[test]
    fn steady_state_cycles_never_touch_the_allocator_pool_side() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut bag = SegBag::new();
        // Warm up to the high-water mark, then drain.
        for t in 0..(4 * SEG_CAP) as u64 {
            bag.push(&mut pool, retire_counter(&counter, t));
        }
        // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
        unsafe { bag.reclaim_all(&mut pool) };
        let pooled = pool.free_segments();
        assert_eq!(pooled, 4);
        // Refill/drain cycles at or below the high-water mark recycle segments
        // instead of allocating: the pool never grows past its peak.
        for _ in 0..8 {
            for t in 0..(4 * SEG_CAP) as u64 {
                bag.push(&mut pool, retire_counter(&counter, t));
            }
            assert_eq!(pool.free_segments(), 0, "all segments in use");
            // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
            unsafe { bag.reclaim_all(&mut pool) };
            assert_eq!(pool.free_segments(), pooled, "segments fully recycled");
        }
    }

    #[test]
    fn drained_segments_are_unlinked_at_head_middle_and_tail() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut bag = SegBag::new();
        for t in 0..(3 * SEG_CAP) as u64 {
            bag.push(&mut pool, retire_counter(&counter, t));
        }
        // Free the first and last segment's nodes entirely: both drained
        // segments (the head and the tail) must be unlinked and pooled while
        // the middle segment's survivors stay in place, unmoved.
        let keep = |t: u64| (SEG_CAP as u64..2 * SEG_CAP as u64).contains(&t);
        // SAFETY: retired nodes are owned by the bag; the predicate only spares still-protected ones.
        let freed = unsafe { bag.reclaim_if(&mut pool, |n| !keep(n.retired_at())) };
        assert_eq!(freed, 2 * SEG_CAP);
        assert_eq!(bag.len(), SEG_CAP);
        assert_eq!(bag.segments(), 1, "drained segments must be unlinked");
        assert_eq!(pool.free_segments(), 2);
        let survivors: Vec<u64> = bag.iter().map(RetiredPtr::retired_at).collect();
        assert_eq!(
            survivors,
            (SEG_CAP as u64..2 * SEG_CAP as u64).collect::<Vec<_>>()
        );
        // Pushing after the tail was unlinked continues on the surviving
        // (now full) segment's successor, drawn from the pool.
        bag.push(&mut pool, retire_counter(&counter, 1_000));
        assert_eq!(bag.segments(), 2);
        assert_eq!(pool.free_segments(), 1);
        // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
        unsafe { bag.reclaim_all(&mut pool) };
    }

    #[test]
    fn partial_reclaims_compact_within_segments_with_one_merge_per_pass() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut bag = SegBag::new();
        for t in 0..(3 * SEG_CAP) as u64 {
            bag.push(&mut pool, retire_counter(&counter, t));
        }
        // Free two thirds, scattered: every segment keeps some survivors, so no
        // segment is *drained* — survivors compact within their segment, and
        // exactly one adjacent pair (whose combined survivors fit one segment)
        // is merged this pass. The move cost stays O(freed) + one bounded merge,
        // never O(bag).
        // SAFETY: retired nodes are owned by the bag; the predicate only spares still-protected ones.
        let freed = unsafe { bag.reclaim_if(&mut pool, |n| !n.retired_at().is_multiple_of(3)) };
        assert_eq!(freed, 2 * SEG_CAP);
        assert_eq!(bag.len(), SEG_CAP);
        assert_eq!(
            bag.segments(),
            2,
            "exactly one adjacent pair merged this pass"
        );
        assert_eq!(pool.free_segments(), 1, "the merged shell is recycled");
        let survivors: Vec<u64> = bag.iter().map(RetiredPtr::retired_at).collect();
        let expected: Vec<u64> = (0..3 * SEG_CAP as u64)
            .filter(|t| t.is_multiple_of(3))
            .collect();
        assert_eq!(
            survivors, expected,
            "order preserved within and across segments"
        );
        // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
        unsafe { bag.reclaim_all(&mut pool) };
        assert_eq!(pool.free_segments(), 3);
    }

    #[test]
    fn scattered_survivors_converge_to_one_segment_over_passes() {
        // The fragmentation scenario from the ROADMAP: long-lived survivors
        // scattered one per segment. Each no-op pass performs one adjacent
        // merge, so the chain shrinks by one segment per scan until every
        // survivor shares a single segment — instead of each pinning its own.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut bag = SegBag::new();
        let segments = 4;
        for t in 0..(segments * SEG_CAP) as u64 {
            bag.push(&mut pool, retire_counter(&counter, t));
        }
        // Keep exactly one node per segment.
        let keep = |t: u64| t.is_multiple_of(SEG_CAP as u64);
        // SAFETY: retired nodes are owned by the bag; the predicate only spares still-protected ones.
        let freed = unsafe { bag.reclaim_if(&mut pool, |n| !keep(n.retired_at())) };
        assert_eq!(freed, segments * (SEG_CAP - 1));
        // Pass 1 already merged one pair; every further (empty) pass merges one
        // more until a single segment remains.
        assert_eq!(bag.segments(), segments - 1);
        for remaining in (1..segments - 1).rev() {
            // SAFETY: retired nodes are owned by the bag; the predicate only spares still-protected ones.
            let freed = unsafe { bag.reclaim_if(&mut pool, |_| false) };
            assert_eq!(freed, 0);
            assert_eq!(bag.segments(), remaining);
        }
        assert_eq!(bag.len(), segments);
        let survivors: Vec<u64> = bag.iter().map(RetiredPtr::retired_at).collect();
        let expected: Vec<u64> = (0..segments as u64).map(|i| i * SEG_CAP as u64).collect();
        assert_eq!(survivors, expected, "merges preserve order");
        // Converged: further passes are no-ops.
        // SAFETY: retired nodes are owned by the bag; the predicate only spares still-protected ones.
        unsafe { bag.reclaim_if(&mut pool, |_| false) };
        assert_eq!(bag.segments(), 1);
        // The bag is still writable after merges relocated the tail.
        bag.push(&mut pool, retire_counter(&counter, 1_000));
        assert_eq!(bag.len(), segments + 1);
        // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
        unsafe { bag.reclaim_all(&mut pool) };
        assert_eq!(pool.free_segments(), segments);
    }

    #[test]
    fn reclaim_if_visit_sees_every_survivor_exactly_once() {
        for round in 0..16u64 {
            let counter = Arc::new(AtomicUsize::new(0));
            let mut pool = SegPool::new();
            let mut bag = SegBag::new();
            let n = 3 * SEG_CAP as u64;
            for t in 0..n {
                bag.push(&mut pool, retire_counter(&counter, t));
            }
            let keep =
                |t: u64| !(t.wrapping_mul(2654435761).wrapping_add(round * 31)).is_multiple_of(4);
            let mut visited = Vec::new();
            // SAFETY: the test owns every node in the bag; none is protected.
            let freed = unsafe {
                bag.reclaim_if_visit(
                    &mut pool,
                    |node| !keep(node.retired_at()),
                    |survivor| visited.push(survivor.retired_at()),
                )
            };
            let expected: Vec<u64> = (0..n).filter(|&t| keep(t)).collect();
            assert_eq!(
                visited, expected,
                "round {round}: every survivor visited once, in order"
            );
            assert_eq!(freed, n as usize - expected.len());
            assert_eq!(bag.len(), expected.len());
            let remaining: Vec<u64> = bag.iter().map(RetiredPtr::retired_at).collect();
            assert_eq!(
                remaining, expected,
                "round {round}: visited set matches the bag after merges"
            );
            // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
            unsafe { bag.reclaim_all(&mut pool) };
        }
    }

    #[test]
    fn reclaim_if_while_stops_at_the_first_blocking_node() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut bag = SegBag::new();
        let n = 2 * SEG_CAP as u64 + 5;
        for t in 0..n {
            bag.push(&mut pool, retire_counter(&counter, t));
        }
        // Age cutoff mid-chain: nodes 0..cutoff are "old enough"; node 7 is
        // protected and must survive even inside the scanned prefix.
        let cutoff = SEG_CAP as u64 + 3;
        // SAFETY: the test owns every node in the bag; none is protected.
        let freed = unsafe {
            bag.reclaim_if_while(
                &mut pool,
                |node| node.retired_at() < cutoff,
                |node| node.retired_at() != 7,
            )
        };
        assert_eq!(
            freed,
            cutoff as usize - 1,
            "prefix minus the protected node"
        );
        assert_eq!(bag.len(), n as usize - freed);
        // Everything at or past the cutoff was never examined; node 7 survived.
        let survivors: Vec<u64> = bag.iter().map(RetiredPtr::retired_at).collect();
        let expected: Vec<u64> = std::iter::once(7).chain(cutoff..n).collect();
        assert_eq!(survivors, expected);
        assert_eq!(counter.load(Ordering::SeqCst), freed);
        // A later unrestricted pass can still free the rest.
        // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
        let freed = unsafe { bag.reclaim_all(&mut pool) };
        assert_eq!(freed, n as usize - (cutoff as usize - 1));
        assert!(bag.is_empty());
    }

    #[test]
    fn splice_is_o1_and_moves_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut a = SegBag::new();
        let mut b = SegBag::new();
        for t in 0..5u64 {
            a.push(&mut pool, retire_counter(&counter, t));
        }
        for t in 5..(SEG_CAP as u64 + 9) {
            b.push(&mut pool, retire_counter(&counter, t));
        }
        let total = a.len() + b.len();
        a.splice(&mut b);
        assert_eq!(a.len(), total);
        assert!(b.is_empty());
        assert_eq!(b.segments(), 0);
        // Splicing leaves a partial segment mid-chain; iteration and reclaim
        // must both handle it.
        let seen: Vec<u64> = a.iter().map(RetiredPtr::retired_at).collect();
        assert_eq!(seen.len(), total);
        // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
        let freed = unsafe { a.reclaim_all(&mut pool) };
        assert_eq!(freed, total);
        assert_eq!(counter.load(Ordering::SeqCst), total);
        // Splicing an empty bag into an empty bag is a no-op.
        a.splice(&mut b);
        assert!(a.is_empty());
    }

    #[test]
    fn splice_into_empty_adopts_the_chain() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut a = SegBag::new();
        let mut b = SegBag::new();
        for t in 0..3u64 {
            b.push(&mut pool, retire_counter(&counter, t));
        }
        a.splice(&mut b);
        assert_eq!(a.len(), 3);
        // The adopted chain is writable (push goes to the adopted tail).
        a.push(&mut pool, retire_counter(&counter, 3));
        assert_eq!(a.len(), 4);
        assert_eq!(a.segments(), 1);
        // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
        unsafe { a.reclaim_all(&mut pool) };
    }

    #[test]
    fn pool_prewarm_covers_the_requested_node_count() {
        let pool = SegPool::with_node_capacity(3 * SEG_CAP + 1);
        assert_eq!(pool.free_segments(), 4);
        let empty = SegPool::with_node_capacity(0);
        assert_eq!(empty.free_segments(), 0);
    }

    #[test]
    fn reclaim_after_splice_handles_partial_segments_mid_chain() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = SegPool::new();
        let mut a = SegBag::new();
        for t in 0..2u64 {
            a.push(&mut pool, retire_counter(&counter, t));
        }
        let mut b = SegBag::new();
        for t in 2..(2 + 2 * SEG_CAP as u64) {
            b.push(&mut pool, retire_counter(&counter, t));
        }
        a.splice(&mut b); // chain: [2-node partial] -> [full] -> [full]
        let total = a.len();
        // Keep everything: the pass must traverse the partial segment mid-chain
        // without losing, duplicating, or migrating nodes.
        // SAFETY: the test owns every node in the bag; none is protected.
        let freed = unsafe { a.reclaim_if(&mut pool, |_| false) };
        assert_eq!(freed, 0);
        assert_eq!(a.len(), total);
        let survivors: Vec<u64> = a.iter().map(RetiredPtr::retired_at).collect();
        assert_eq!(survivors, (0..total as u64).collect::<Vec<_>>());
        // Nothing was freed, so all 3 segments (partial one included) remain.
        assert_eq!(a.segments(), 3);
        // SAFETY: every node in the bag was handed over by `retire` and none is protected — the test owns them all.
        unsafe { a.reclaim_all(&mut pool) };
        assert_eq!(counter.load(Ordering::SeqCst), total);
    }
}
