//! The safe, scheme-generic pointer layer: [`Guard`] / [`Atomic`] /
//! [`Shared`] / [`Owned`] / [`Unlinked`].
//!
//! Every structure in `lockfree-ds` used to re-derive the paper's three
//! integration rules (§1.3) by hand at every call site: `begin_op` at
//! operation start, `protect` + re-validate before dereferencing, retire
//! exactly once after the unlink CAS. This module states those rules **once,
//! in the type system**, so a new structure inherits them instead of
//! re-proving them:
//!
//! | protocol rule | type-level rendering |
//! |---------------|----------------------|
//! | `begin_op` / `end_op` bracket every operation | [`Guard`] is RAII: construction calls `begin_op`, drop clears every protection slot and calls `end_op` |
//! | no shared reference outlives the operation | [`Shared<'g, T>`] borrows the guard; the borrow checker rejects any `Shared` outliving its `Guard` (see the `compile_fail` test on [`Guard`]) |
//! | protect, then re-validate reachability | [`Guard::load_protected`] and [`Guard::protect_word`] bundle the publish + re-read + full-word compare; a `Shared` handed out by them was validated under protection |
//! | stamp the birth era at allocation | [`Owned::new`] routes through [`SmrHandle::alloc_node`] and stores the stamp in a private header — structures never see eras |
//! | retire only what you unlinked, exactly once | [`Unlinked`] is produced **only** by a successful unlink CAS ([`Atomic::cas_unlink`]) and is the only type with a `retire`; retiring consumes it |
//! | byte budgets stay exact | [`Unlinked::retire`] always flows through the sized, birth-era-stamped [`SmrHandle::retire_sized`] path — the size-unknown raw retire is unreachable from here |
//!
//! Links are [`VersionedAtomic`] words (pointer + mark + 16-bit version, see
//! [`crate::tagged`]), so a `Shared` doubles as the *validate-on-link* CAS
//! expected value: "the link looks unchanged" and "the link is unchanged since
//! my validation" coincide, which is what makes helping and unlinking sound
//! even for structures whose CAS targets the very word it validated.
//!
//! ## What stays `unsafe`
//!
//! The layer shrinks the unsafe surface to two honest obligations the type
//! system cannot discharge:
//!
//! * [`Shared::as_ref`] — the caller asserts the `Shared` came from a
//!   *validated* protection (a `load_protected`/`protect_word` success, or a
//!   word whose reachability was re-validated after publication);
//! * [`Atomic::cas_unlink`] — the caller asserts this link is the **sole**
//!   remaining path to the victim, so success makes the node unreachable and
//!   no second `Unlinked` can be minted for it elsewhere.
//!
//! Everything else — slot bookkeeping, era stamping, sized retirement, the
//! begin/end bracket — is safe code in one place.
//!
//! Expert structures with bespoke link protocols (the skip list's fenced
//! towers, the BST's flagged edges) keep their own node layout and use the
//! guard's raw escape hatches ([`Guard::protect_ptr`], [`Guard::retire_raw`]);
//! those are the only sanctioned spellings of raw protection/retirement
//! outside this module (enforced by clippy's `disallowed-methods` gate).
//!
//! ## M:N handles: leases are task-scoped, guards are op-scoped
//!
//! A registered handle does not have to mean a dedicated thread. The
//! [`crate::lease`] layer pools `N` registered handles behind a
//! [`crate::LeasePool`] so `M > N` short-lived tasks borrow them in turn: a
//! [`crate::HandleLease`] is `Send`, so a borrowed handle may migrate between
//! threads (or executor workers) *between* operations. The guard is the
//! boundary that keeps that safe: a `Guard` is **`!Send`/`!Sync`**, so an
//! *in-flight* operation — protections published, `Shared` values live — can
//! never cross a thread or `.await` boundary where the scheme's per-slot
//! protocol (thread-confined protection slots, the begin/end fence bracket)
//! would silently break. Lease across tasks; guard within an operation.
//!
//! ```compile_fail
//! use reclaim_core::{Guard, Leaky, LeasePolicy, LeasePool};
//!
//! let scheme = Leaky::with_defaults();
//! let pool = LeasePool::for_scheme(&scheme, 2, LeasePolicy::Wait).unwrap();
//! let mut lease = pool.checkout().unwrap();
//! let guard = Guard::new(&mut *lease);
//! fn crosses_a_task_boundary<T: Send>(_: T) {}
//! // ERROR: `Guard` is `!Send` — an open operation cannot migrate to
//! // another task/thread; finish (drop) it first, then move the lease.
//! crosses_a_task_boundary(guard);
//! ```
//!
//! ## Migration guide: raw protocol → guard API
//!
//! One before/after per integration rule, in the order a structure method
//! meets them. "Before" is the hand-written protocol the pre-guard structures
//! carried; "after" is the only spelling the lint gate accepts outside this
//! module.
//!
//! **Rule 1 — bracket every operation.** Every early return used to need the
//! teardown pair repeated by hand:
//!
//! ```text
//! handle.begin_op();
//! /* traversal; every `return` must remember both calls below */
//! handle.clear_protections();
//! handle.end_op();
//! ```
//!
//! After: construction opens, drop closes — early returns are just `return`.
//!
//! ```
//! # use reclaim_core::{Guard, Leaky, Smr};
//! # let scheme = Leaky::with_defaults();
//! # let mut handle = scheme.register();
//! let guard = Guard::new(&mut handle);
//! // traversal; dropping the guard clears the slots and ends the op
//! ```
//!
//! **Rule 2 — protect, then re-validate before dereferencing.** The publish /
//! re-read / compare loop was copied at every advance:
//!
//! ```text
//! let mut curr = pred_next.load(Acquire);
//! loop {
//!     handle.protect(HP_CURR, curr.ptr().cast());
//!     let reread = pred_next.load(Acquire);
//!     if reread == curr { break; }          // protection validated
//!     curr = reread;
//! }
//! let node = unsafe { &*curr.ptr() };        // raw deref, unchecked
//! ```
//!
//! After: [`Guard::load_protected`] is that loop; the `Shared` it returns is
//! tied to the guard's lifetime, and the one remaining obligation (the link
//! was rooted) is [`Shared::as_ref`]'s documented contract:
//!
//! ```
//! # use reclaim_core::{Atomic, Guard, Leaky, Owned, Smr};
//! # let scheme = Leaky::with_defaults();
//! # let mut handle = scheme.register();
//! # let link = Atomic::new(Owned::sentinel(7_u64));
//! # const HP_CURR: usize = 0;
//! let guard = Guard::new(&mut handle);
//! let curr = guard.load_protected(HP_CURR, &link);
//! // SAFETY: validated protection on a rooted link.
//! let value = unsafe { curr.as_ref() };
//! # assert_eq!(value, Some(&7));
//! # drop(guard);
//! # let mut link = link; unsafe { link.take() };
//! ```
//!
//! **Rule 3 — stamp the birth era at allocation.** Structures used to carry an
//! era field in their node layout and thread it to the retire site:
//!
//! ```text
//! let node = Box::into_raw(Box::new(Node {
//!     birth_era: handle.alloc_node(),   // easy to forget ⇒ HE over-pins
//!     key, value, next: ...,
//! }));
//! ```
//!
//! After: [`Owned::new`] stamps a private header the structure never sees
//! (and [`Owned::sentinel`] covers pre-handle construction):
//!
//! ```
//! # use reclaim_core::{Guard, Leaky, Owned, Smr};
//! # struct Node { key: u64 }
//! # let scheme = Leaky::with_defaults();
//! # let mut handle = scheme.register();
//! let guard = Guard::new(&mut handle);
//! let node = Owned::new(Node { key: 7 }, &guard);
//! # drop(node);
//! ```
//!
//! **Rule 4 — retire only what you unlinked, exactly once, with exact bytes.**
//! The unlink CAS and the retire used to be two separate acts whose pairing
//! (once, and only after success) was a reviewer obligation:
//!
//! ```text
//! if pred_next.compare_exchange(curr, succ, ...).is_ok() {
//!     unsafe { retire_box_with_birth(handle, curr.ptr(), (*curr.ptr()).birth_era) };
//!     // double-retire on a second path? sized or size-unknown? — convention only
//! }
//! ```
//!
//! After: success of [`Atomic::cas_unlink`] *is* the retire capability — an
//! [`Unlinked`] that must be consumed ([`#[must_use]`](Unlinked)) and always
//! flows through the sized, birth-stamped path:
//!
//! ```
//! # use reclaim_core::{Atomic, Guard, Leaky, Owned, Shared, Smr};
//! # let scheme = Leaky::with_defaults();
//! # let mut handle = scheme.register();
//! # let link = Atomic::new(Owned::sentinel(9_u64));
//! let guard = Guard::new(&mut handle);
//! let curr = guard.load_protected(0, &link);
//! // SAFETY: this link is the sole remaining path to the node.
//! if let Ok((unlinked, _now)) = unsafe { link.cas_unlink(curr, Shared::null()) } {
//!     unlinked.retire(&guard); // consumed: exactly once, sized, era-stamped
//! }
//! ```

use crate::clock::{Era, NO_BIRTH_ERA};
use crate::smr::{drop_fn_for, SmrHandle};
use crate::tagged::{LinkWord, VersionedAtomic};
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ptr::NonNull;
use std::sync::atomic::Ordering;

/// The heap header the guard layer wraps every node value in: the birth-era
/// stamp lives *next to* the value, invisible to the structure. `repr(C)` pins
/// the layout so the type-erased destructor and the sized retire agree on it.
#[repr(C)]
struct NodeBox<T> {
    birth_era: Era,
    value: T,
}

/// An RAII operation bracket over one [`SmrHandle`].
///
/// Constructing a `Guard` calls [`SmrHandle::begin_op`]; dropping it clears
/// every protection slot and calls [`SmrHandle::end_op`]. Every [`Shared`]
/// loaded through the guard borrows it, so the borrow checker enforces the
/// paper's "no shared references outside an operation" rule at compile time:
///
/// ```compile_fail
/// use reclaim_core::{Atomic, Guard, Leaky, Smr};
///
/// let scheme = Leaky::with_defaults();
/// let mut handle = scheme.register();
/// let link: Atomic<u64> = Atomic::null();
/// let stale = {
///     let guard = Guard::new(&mut handle);
///     link.load(&guard)
/// }; // ERROR: `guard` does not live long enough — a `Shared`
///    // cannot outlive the operation that protected it.
/// let _ = stale.is_null();
/// ```
///
/// The guard borrows the handle mutably for its whole lifetime, so one thread
/// cannot hold two overlapping operations on the same handle, and is neither
/// `Send` nor `Sync` — protections are per-thread state.
pub struct Guard<'h, H: SmrHandle> {
    /// Raw so the guard can publish protections through `&self` while `Shared`
    /// values (immutable borrows of the guard) are live. Sound because the
    /// pointer came from an exclusive `&'h mut H`, the guard is `!Send`/`!Sync`
    /// (raw-pointer field), and no method re-enters another.
    handle: *mut H,
    /// Telemetry op-latency sample: `Some` only for the 1-in-N ops the
    /// scheme's telemetry chose to time ([`SmrHandle::telemetry_op_begin`]);
    /// the drop records the bracket's elapsed time. Always `None` — one
    /// relaxed load — when telemetry is disabled.
    op_start: Option<std::time::Instant>,
    _marker: PhantomData<&'h mut H>,
}

impl<'h, H: SmrHandle> Guard<'h, H> {
    /// Opens an operation: calls [`SmrHandle::begin_op`] and takes exclusive
    /// use of the handle until the guard drops.
    pub fn new(handle: &'h mut H) -> Self {
        handle.begin_op();
        let op_start = handle.telemetry_op_begin();
        Self {
            handle,
            op_start,
            _marker: PhantomData,
        }
    }

    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut H) -> R) -> R {
        // SAFETY: `handle` originates from the exclusive borrow held for 'h;
        // the guard is confined to the owning thread and `f` never re-enters
        // the guard, so this is the only live reference during the call.
        f(unsafe { &mut *self.handle })
    }

    /// The birth era to stamp into a node allocated now (the scheme's
    /// [`SmrHandle::alloc_node`] hook). [`Owned::new`] calls this for you.
    pub fn alloc_era(&self) -> Era {
        self.with(|h| h.alloc_node())
    }

    /// Publishes a protection for a raw pointer in `slot` — the expert escape
    /// hatch for structures that manage their own node layout (skip list,
    /// BST). The caller must re-validate reachability before dereferencing,
    /// exactly as with [`SmrHandle::protect`].
    #[inline]
    pub fn protect_ptr(&self, slot: usize, ptr: *mut u8) {
        #[allow(clippy::disallowed_methods)]
        self.with(|h| h.protect(slot, ptr));
    }

    /// Re-publishes an already-validated `Shared` into another slot (e.g.
    /// duplicating the current node's protection into the predecessor slot
    /// before advancing, or covering a successor before a value read). The
    /// caller must re-validate reachability *after* this call before
    /// dereferencing through the new slot.
    #[inline]
    pub fn protect_shared<T>(&self, slot: usize, shared: Shared<'_, T>) {
        self.protect_ptr(slot, shared.word.ptr().cast());
    }

    /// Loads `link` and publishes a validated protection for the result in
    /// `slot`: publish, re-read, retry until the word is stable across the
    /// publication. The returned `Shared` is safe to dereference while the
    /// guard lives, **provided the link itself is rooted** (a structure head
    /// or a link of a node currently protected by this guard).
    pub fn load_protected<T>(&self, slot: usize, link: &Atomic<T>) -> Shared<'_, T> {
        let mut word = link.inner.load(Ordering::Acquire);
        loop {
            self.protect_ptr(slot, word.ptr().cast());
            let reread = link.inner.load(Ordering::Acquire);
            if reread == word {
                #[cfg(feature = "check-oracle")]
                crate::oracle::check_protected(word.ptr().cast(), "Guard::load_protected");
                return Shared::from_word(word);
            }
            word = reread;
        }
    }

    /// Seeded protect-and-validate: publishes protection for `expect`'s
    /// pointer in `slot`, then re-reads `link`. `Ok(expect)` means the link
    /// still holds exactly the observed word (pointer, mark *and* version) —
    /// the protection is validated. `Err` returns the word actually observed;
    /// the protection in `slot` covers the *expected* pointer and must not be
    /// trusted for the returned one.
    ///
    /// This is the single-attempt variant traversals use to advance: the
    /// expected word came from the predecessor's link, so a mismatch means the
    /// neighborhood changed and the traversal restarts.
    pub fn protect_word<'g, T>(
        &'g self,
        slot: usize,
        link: &Atomic<T>,
        expect: Shared<'g, T>,
    ) -> Result<Shared<'g, T>, Shared<'g, T>> {
        self.protect_ptr(slot, expect.word.ptr().cast());
        let reread = link.inner.load(Ordering::Acquire);
        if reread == expect.word {
            #[cfg(feature = "check-oracle")]
            crate::oracle::check_protected(expect.word.ptr().cast(), "Guard::protect_word");
            Ok(expect)
        } else {
            Err(Shared::from_word(reread))
        }
    }

    /// Retires a raw typed node — the expert escape hatch paired with
    /// [`Guard::protect_ptr`] for structures that manage their own node
    /// layout. Routes through the sized path (`size_of::<T>()`), keeping the
    /// byte accounting exact.
    ///
    /// # Safety
    ///
    /// `ptr` must originate from `Box::<T>::into_raw`, be unlinked from the
    /// structure, and never be retired twice; `birth_era` must be the node's
    /// [`SmrHandle::alloc_node`] stamp or [`NO_BIRTH_ERA`].
    pub unsafe fn retire_raw<T>(&self, ptr: *mut T, birth_era: Era) {
        self.with(|h| {
            // SAFETY: forwarded from the caller's contract.
            unsafe {
                h.retire_sized(
                    ptr.cast::<u8>(),
                    drop_fn_for::<T>(),
                    birth_era,
                    std::mem::size_of::<T>(),
                )
            }
        });
    }
}

impl<H: SmrHandle> Drop for Guard<'_, H> {
    fn drop(&mut self) {
        let op_start = self.op_start;
        self.with(|h| {
            h.clear_protections();
            h.end_op();
            // Sampled op: record the full begin→end bracket, teardown included.
            if let Some(started) = op_start {
                h.telemetry_op_end(started);
            }
        });
    }
}

/// An atomic, versioned link to a guard-layer node: the only way nodes are
/// wired together. Backed by a [`VersionedAtomic`] word, so every successful
/// CAS bumps the link's version and stale expected words fail even when the
/// pointer has ABA'd back.
pub struct Atomic<T> {
    inner: VersionedAtomic<NodeBox<T>>,
}

// SAFETY: an `Atomic` is a single atomic word; sharing it shares access to the
// pointed-to `T` across threads, hence the `Send + Sync` bounds on `T`.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above — all mutation goes through atomic operations.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> Atomic<T> {
    /// A fresh null link (unmarked, version 0).
    pub fn null() -> Self {
        Self {
            inner: VersionedAtomic::new(std::ptr::null_mut()),
        }
    }

    /// A fresh link holding `node` (construction-time wiring of owned
    /// sentinels/dummies; no CAS, version starts at 0).
    pub fn new(node: Owned<T>) -> Self {
        let ptr = node.ptr.as_ptr();
        // Sanctioned ownership transfer: the node now belongs to the link.
        #[allow(clippy::disallowed_methods)]
        std::mem::forget(node);
        Self {
            inner: VersionedAtomic::new(ptr),
        }
    }

    /// A second link to the same node, for container construction only (e.g.
    /// a queue whose head *and* tail both start at the dummy). The alias's
    /// version counter starts at 0 independently of `self`'s.
    pub fn alias(&self) -> Self {
        Self {
            inner: VersionedAtomic::new(self.inner.load(Ordering::Relaxed).ptr()),
        }
    }

    /// Loads the current word. The guard borrow ties the returned `Shared` to
    /// the operation; dereferencing it additionally requires a validated
    /// protection (see [`Shared::as_ref`]).
    pub fn load<'g, H: SmrHandle>(&self, _guard: &'g Guard<'_, H>) -> Shared<'g, T> {
        Shared::from_word(self.inner.load(Ordering::Acquire))
    }

    /// Plain store of `shared`'s pointer (unmarked, version reset to 0). Only
    /// legal while the owning node is **private** — i.e. this `Atomic` is a
    /// field of an [`Owned`] not yet linked in; a plain store on a shared link
    /// would bypass the version discipline.
    pub fn store_private(&self, shared: Shared<'_, T>) {
        self.inner
            .store_private(shared.word.ptr(), Ordering::Relaxed);
    }

    /// Attempts `current → new` (pointer *and* mark taken from `new`),
    /// bumping the version. This is the general re-pointing CAS used for
    /// helping (e.g. swinging a queue's tail); it neither publishes new nodes
    /// ([`cas_link`](Self::cas_link)) nor unlinks ([`cas_unlink`](Self::cas_unlink)).
    ///
    /// On success returns the word now in the link; on failure the word
    /// observed.
    pub fn cas<'g>(
        &self,
        current: Shared<'g, T>,
        new: Shared<'g, T>,
    ) -> Result<Shared<'g, T>, Shared<'g, T>> {
        self.inner
            .compare_exchange(
                current.word,
                new.word.ptr(),
                new.word.is_marked(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(Shared::from_word)
            .map_err(Shared::from_word)
    }

    /// Publishes `new` into the link: attempts `current → new` and transfers
    /// ownership of the node to the structure on success. On failure the
    /// `Owned` comes back (so its key/value can be recovered or the insert
    /// retried) along with the word observed.
    ///
    /// Success returns the link's new word — a `Shared` for the just-linked
    /// node, usable e.g. to swing auxiliary pointers at it.
    #[allow(clippy::type_complexity)]
    pub fn cas_link<'g>(
        &self,
        current: Shared<'g, T>,
        new: Owned<T>,
    ) -> Result<Shared<'g, T>, (Shared<'g, T>, Owned<T>)> {
        match self.inner.compare_exchange(
            current.word,
            new.ptr.as_ptr(),
            false,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(word) => {
                // Sanctioned ownership transfer: the winning CAS published the
                // node; the structure owns it now.
                #[allow(clippy::disallowed_methods)]
                std::mem::forget(new);
                Ok(Shared::from_word(word))
            }
            Err(observed) => Err((Shared::from_word(observed), new)),
        }
    }

    /// Attempts to set the logical-deletion mark: `current → (current.ptr,
    /// marked)`, bumping the version. The thread whose mark CAS succeeds owns
    /// the removal; the node's outgoing marked link stays marked forever.
    pub fn try_mark<'g>(&self, current: Shared<'g, T>) -> Result<Shared<'g, T>, Shared<'g, T>> {
        self.inner
            .try_mark(current.word, Ordering::AcqRel, Ordering::Acquire)
            .map(Shared::from_word)
            .map_err(Shared::from_word)
    }

    /// The unlink CAS: attempts `current → replacement` and, on success, mints
    /// the **only** [`Unlinked`] for the node `current` pointed to — the one
    /// capability that can retire it. Also returns the link's new word so the
    /// caller can continue traversing past the excision.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that this link is the *sole remaining path*
    /// by which new observers can reach `current`'s node (its predecessor link
    /// in a list after the node's own mark settled, a queue's head, a stack's
    /// top), so that success makes the node unreachable, and that no other
    /// code path can produce an `Unlinked` for the same node. `current` must
    /// be non-null.
    #[allow(clippy::type_complexity)]
    pub unsafe fn cas_unlink<'g>(
        &self,
        current: Shared<'g, T>,
        replacement: Shared<'g, T>,
    ) -> Result<(Unlinked<T>, Shared<'g, T>), Shared<'g, T>> {
        debug_assert!(!current.is_null(), "cannot unlink through a null word");
        match self.inner.compare_exchange(
            current.word,
            replacement.word.ptr(),
            replacement.word.is_marked(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(word) => {
                let node = NonNull::new(current.word.ptr()).expect("checked non-null");
                Ok((Unlinked { ptr: node }, Shared::from_word(word)))
            }
            Err(observed) => Err(Shared::from_word(observed)),
        }
    }

    /// Takes the linked node out for teardown, leaving the link null. Used by
    /// structure `Drop` impls to walk and free their chains.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the whole structure (no
    /// concurrent operations, no outstanding protections on the chain) and
    /// must not call this on two links aliasing the same node.
    pub unsafe fn take(&mut self) -> Option<Owned<T>> {
        let word = self.inner.load(Ordering::Relaxed);
        self.inner
            .store_private(std::ptr::null_mut(), Ordering::Relaxed);
        NonNull::new(word.ptr()).map(|ptr| Owned { ptr })
    }
}

/// A shared, possibly marked reference observed from an [`Atomic`] link,
/// valid for the lifetime `'g` of the [`Guard`] it was loaded under.
///
/// A `Shared` is the full observed [`LinkWord`] — pointer, mark **and**
/// version — so it doubles as the validate-on-link CAS expected value for the
/// link it was read from. It is `Copy`; equality compares the whole word.
///
/// `Shared` deliberately has no `retire`: only an [`Unlinked`] — minted by a
/// successful [`Atomic::cas_unlink`] — can retire a node.
///
/// ```compile_fail
/// use reclaim_core::{Atomic, Guard, Leaky, Smr};
///
/// let scheme = Leaky::with_defaults();
/// let mut handle = scheme.register();
/// let link: Atomic<u64> = Atomic::null();
/// let guard = Guard::new(&mut handle);
/// let observed = link.load(&guard);
/// observed.retire(&guard); // ERROR: no method `retire` on `Shared` —
///                          // retirement requires a successful unlink CAS.
/// ```
pub struct Shared<'g, T> {
    word: LinkWord<NodeBox<T>>,
    _guard: PhantomData<&'g ()>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}
impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.word == other.word
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("ptr", &self.word.ptr())
            .field("marked", &self.word.is_marked())
            .field("version", &self.word.version())
            .finish()
    }
}

impl<'g, T> Shared<'g, T> {
    fn from_word(word: LinkWord<NodeBox<T>>) -> Self {
        Self {
            word,
            _guard: PhantomData,
        }
    }

    /// The null word (null pointer, unmarked, version 0). Matches a fresh
    /// [`Atomic::null`] link, and serves as the expected value for a CAS on
    /// one.
    pub fn null() -> Self {
        Self::from_word(LinkWord::null())
    }

    /// True if the pointer field is null.
    pub fn is_null(self) -> bool {
        self.word.ptr().is_null()
    }

    /// Whether the logical-deletion mark was set at observation time.
    pub fn is_marked(self) -> bool {
        self.word.is_marked()
    }

    /// The same word with the mark cleared — the *new* value for a CAS that
    /// re-links a deleted node's successor (never a CAS expected value).
    pub fn unmarked(self) -> Self {
        Self::from_word(self.word.with_mark(false))
    }

    /// Pointer identity (mark and version ignored) — e.g. the Michael–Scott
    /// `head == tail` check.
    pub fn ptr_eq(self, other: Shared<'_, T>) -> bool {
        self.word.ptr() == other.word.ptr()
    }

    /// Dereferences the shared node for the guard's lifetime.
    ///
    /// # Safety
    ///
    /// The `Shared` must carry a **validated** protection: it came from
    /// [`Guard::load_protected`] / a successful [`Guard::protect_word`] on a
    /// rooted link (or its reachability was re-validated after
    /// [`Guard::protect_shared`]), and that protection slot has not since been
    /// overwritten with a different pointer.
    pub unsafe fn as_ref(self) -> Option<&'g T> {
        #[cfg(feature = "check-oracle")]
        crate::oracle::check_protected(self.word.ptr().cast(), "Shared::as_ref");
        // SAFETY: per the caller's contract the node is protected and cannot
        // be freed while the guard lives.
        unsafe { self.word.ptr().as_ref().map(|node| &node.value) }
    }
}

/// An owned, not-yet-linked node: the only way to allocate into the guard
/// layer. Allocation stamps the scheme's birth era ([`SmrHandle::alloc_node`])
/// into a private header, so era schemes (HE) get exact lifetime intervals
/// without the structure ever seeing an era.
pub struct Owned<T> {
    ptr: NonNull<NodeBox<T>>,
}

// SAFETY: an `Owned` is exclusive ownership of a heap node, like `Box<T>`.
unsafe impl<T: Send> Send for Owned<T> {}

impl<T> Owned<T> {
    /// Allocates a node stamped with the current birth era.
    pub fn new<H: SmrHandle>(value: T, guard: &Guard<'_, H>) -> Self {
        Self::with_era(value, guard.alloc_era())
    }

    /// Allocates a node with no birth stamp, for construction-time sentinels
    /// and dummies created before any handle exists (era schemes treat
    /// [`NO_BIRTH_ERA`] as born before every announced era — always safe).
    pub fn sentinel(value: T) -> Self {
        Self::with_era(value, NO_BIRTH_ERA)
    }

    fn with_era(value: T, birth_era: Era) -> Self {
        let boxed = Box::new(NodeBox { birth_era, value });
        let raw = Box::into_raw(boxed);
        #[cfg(feature = "check-oracle")]
        crate::oracle::register(raw.cast(), std::mem::size_of::<NodeBox<T>>());
        Self {
            // SAFETY: `Box::into_raw` never returns null.
            ptr: unsafe { NonNull::new_unchecked(raw) },
        }
    }

    /// Recovers the value, freeing the node — the failed-insert path (the CAS
    /// handed the `Owned` back, the caller wants its key/value for the retry).
    pub fn into_inner(self) -> T {
        let this = ManuallyDrop::new(self);
        #[cfg(feature = "check-oracle")]
        crate::oracle::deregister(this.ptr.as_ptr().cast());
        // Sanctioned free path: the never-linked node leaves the protocol
        // synchronously, outside retire→reclaim.
        #[allow(clippy::disallowed_methods)]
        // SAFETY: `ptr` came from `Box::into_raw` and `self` is consumed
        // without running its destructor, so the box is reconstructed once.
        let boxed = unsafe { Box::from_raw(this.ptr.as_ptr()) };
        boxed.value
    }
}

impl<T> std::fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Owned").field("ptr", &self.ptr).finish()
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive ownership of a live allocation.
        unsafe { &self.ptr.as_ref().value }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive ownership of a live allocation.
        unsafe { &mut self.ptr.as_mut().value }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        #[cfg(feature = "check-oracle")]
        crate::oracle::deregister(self.ptr.as_ptr().cast());
        // Sanctioned free path: owned teardown (never-linked node, or a node
        // taken back via `Atomic::take` during structure Drop).
        #[allow(clippy::disallowed_methods)]
        // SAFETY: `ptr` came from `Box::into_raw` and is dropped exactly once.
        unsafe {
            drop(Box::from_raw(self.ptr.as_ptr()))
        };
    }
}

/// A node provably excised from the structure: minted **only** by a successful
/// [`Atomic::cas_unlink`], and the only type that can retire. "You can only
/// retire what you provably unlinked" is thereby an ownership rule, not a
/// comment.
#[must_use = "an Unlinked node owns the obligation to retire — dropping it leaks"]
pub struct Unlinked<T> {
    ptr: NonNull<NodeBox<T>>,
}

// SAFETY: the sole excision capability for a node, like `Box<T>` minus the
// right to free it synchronously.
unsafe impl<T: Send> Send for Unlinked<T> {}

/// Reads the excised node. Safe: the allocation stays live at least until
/// [`Unlinked::retire`] consumes the `Unlinked`, and it is the unique one for
/// the node. (Interior mutability inside `T` — e.g. a stack node's value cell
/// — is governed by the structure's own protocol.)
impl<T> AsRef<T> for Unlinked<T> {
    fn as_ref(&self) -> &T {
        #[cfg(feature = "check-oracle")]
        crate::oracle::check_protected(self.ptr.as_ptr().cast(), "Unlinked::as_ref");
        // SAFETY: the node is unreachable to new observers but not yet
        // retired, so the allocation is live; `&self` keeps it so.
        unsafe { &self.ptr.as_ref().value }
    }
}

impl<T> Unlinked<T> {
    /// Hands the node to the scheme for deferred reclamation — always through
    /// the fully stamped path ([`SmrHandle::retire_sized`]): birth era from
    /// the allocation-time header, size from the node's layout. The byte
    /// accounting and the era schemes' lifetime intervals therefore stay
    /// exact for every guard-layer node.
    pub fn retire<H: SmrHandle>(self, guard: &Guard<'_, H>) {
        let node = self.ptr.as_ptr();
        // SAFETY: header written at allocation, node not yet retired.
        let birth_era = unsafe { (*node).birth_era };
        guard.with(|h| {
            // SAFETY: minted by the unlink CAS — the node is unlinked, and
            // consuming `self` makes this the only retirement.
            unsafe {
                h.retire_sized(
                    node.cast::<u8>(),
                    drop_fn_for::<NodeBox<T>>(),
                    birth_era,
                    std::mem::size_of::<NodeBox<T>>(),
                )
            }
        });
        // `self` has no `Drop`; consuming it here simply spends the
        // must-use retirement obligation.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaky::Leaky;
    use crate::smr::Smr;

    #[test]
    fn owned_round_trips_value_and_header() {
        let node = Owned::sentinel(41_u64);
        assert_eq!(*node, 41);
        let mut node = node;
        *node += 1;
        assert_eq!(node.into_inner(), 42);
    }

    #[test]
    fn load_protected_returns_the_linked_node() {
        let scheme = Leaky::with_defaults();
        let mut handle = scheme.register();
        let link = Atomic::new(Owned::sentinel(7_u64));
        {
            let guard = Guard::new(&mut handle);
            let shared = guard.load_protected(0, &link);
            assert!(!shared.is_null());
            assert!(!shared.is_marked());
            // SAFETY: validated protection on a rooted link.
            assert_eq!(unsafe { shared.as_ref() }, Some(&7));
        }
        let mut link = link;
        // SAFETY: single-threaded teardown.
        let node = unsafe { link.take() }.expect("node present");
        assert_eq!(node.into_inner(), 7);
    }

    #[test]
    fn cas_link_failure_returns_the_owned_node() {
        let scheme = Leaky::with_defaults();
        let mut handle = scheme.register();
        let link = Atomic::new(Owned::sentinel(1_u64));
        let guard = Guard::new(&mut handle);
        let node = Owned::new(2_u64, &guard);
        // Expected word is null but the link holds a node: the CAS must fail
        // and hand the Owned back.
        let (observed, node) = link
            .cas_link(Shared::null(), node)
            .expect_err("stale expected word must fail");
        assert!(!observed.is_null());
        assert_eq!(node.into_inner(), 2);
        drop(guard);
        let mut link = link;
        // SAFETY: single-threaded teardown.
        drop(unsafe { link.take() });
    }

    #[test]
    fn unlink_mints_exactly_one_retire_capability() {
        let scheme = Leaky::with_defaults();
        let mut handle = scheme.register();
        let link = Atomic::new(Owned::sentinel(9_u64));
        {
            let guard = Guard::new(&mut handle);
            let shared = guard.load_protected(0, &link);
            // SAFETY: the head link is the sole path to the node.
            let (unlinked, now) =
                unsafe { link.cas_unlink(shared, Shared::null()) }.expect("uncontended unlink");
            assert!(now.is_null());
            assert_eq!(*unlinked.as_ref(), 9);
            unlinked.retire(&guard);
        }
        // Leaky never frees, but the protocol completed; stats record it.
        assert_eq!(scheme.stats().retired, 1);
    }

    #[test]
    fn stale_unlink_fails_on_version_even_with_pointer_aba() {
        let scheme = Leaky::with_defaults();
        let mut handle = scheme.register();
        let link: Atomic<u64> = Atomic::null();
        let guard = Guard::new(&mut handle);
        let stale = link.load(&guard); // (null, v0)
        let linked = link
            .cas_link(stale, Owned::new(5, &guard))
            .expect("link succeeds");
        // SAFETY: sole path.
        let (unlinked, now) =
            unsafe { link.cas_unlink(linked, Shared::null()) }.expect("unlink succeeds");
        unlinked.retire(&guard);
        assert!(now.is_null(), "pointer is null again");
        // The word is (null, v2) now: the stale (null, v0) snapshot must fail.
        assert!(
            link.cas_link(stale, Owned::new(6, &guard)).is_err(),
            "version bump defeats pointer ABA"
        );
    }

    #[test]
    fn guard_brackets_the_operation() {
        let scheme = Leaky::with_defaults();
        let mut handle = scheme.register();
        {
            let _guard = Guard::new(&mut handle);
        }
        {
            let _guard = Guard::new(&mut handle);
        }
        // Two begin/end brackets and no panic: the RAII pairing holds. Leaky
        // counts nothing here; schemes with per-op state are exercised by the
        // structure matrices.
    }
}
