//! Cache-line padding.
//!
//! Shared per-thread records (hazard-pointer slots, epoch counters, presence flags,
//! throughput counters) are written by one thread and read by many. Placing two such
//! records on the same cache line turns every write into cross-core invalidation
//! traffic ("false sharing"), which would distort exactly the overheads the paper
//! measures. [`CachePadded`] aligns and pads its contents to 128 bytes — two 64-byte
//! lines — because modern x86 prefetchers pull cache lines in pairs.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that it owns its cache-line pair.
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned cell.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        Self::new(self.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem::{align_of, size_of};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(align_of::<CachePadded<u8>>() >= 128);
        assert!(align_of::<CachePadded<AtomicUsize>>() >= 128);
    }

    #[test]
    fn size_is_a_multiple_of_alignment() {
        assert_eq!(size_of::<CachePadded<u8>>() % 128, 0);
        assert_eq!(size_of::<CachePadded<[u64; 40]>>() % 128, 0);
    }

    #[test]
    fn deref_round_trip() {
        let mut padded = CachePadded::new(41_u64);
        *padded += 1;
        assert_eq!(*padded, 42);
        assert_eq!(padded.into_inner(), 42);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let v = [CachePadded::new(0_u8), CachePadded::new(0_u8)];
        let a = &v[0] as *const _ as usize;
        let b = &v[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn debug_and_from_impls() {
        let padded: CachePadded<u32> = 7.into();
        assert!(format!("{padded:?}").contains('7'));
        let cloned = padded.clone();
        assert_eq!(*cloned, 7);
    }
}
