//! Reusable scan scratch space.
//!
//! Every scanning scheme snapshots the registry's hazard pointers into a
//! per-handle buffer so steady-state scans allocate nothing. The buffer holds
//! raw pointers, which would make any handle embedding a plain
//! `Vec<*mut u8>` `!Send` — and a blanket `unsafe impl Send` on the *handle*
//! would silently vouch for every other current and future field too.
//! [`PtrScratch`] scopes the assertion to exactly the field it is true of.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A reusable buffer of scanned pointer values (hazard-pointer snapshots).
///
/// The pointers are only a staging area during one scan: the buffer is
/// logically empty between uses — cleared and rebuilt from shared state every
/// time — so moving it between threads transfers no ownership or aliasing
/// obligations.
#[derive(Default)]
pub struct PtrScratch {
    buf: Vec<*mut u8>,
}

// SAFETY: see the type docs — the contained pointers are transient scan-time
// copies with no ownership semantics; the buffer's contents are never read
// across a use boundary.
unsafe impl Send for PtrScratch {}

impl PtrScratch {
    /// Creates a scratch buffer pre-sized for `capacity` pointers (handles use
    /// the `N·K` worst case so scans never reallocate).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }
}

impl Deref for PtrScratch {
    type Target = Vec<*mut u8>;

    fn deref(&self) -> &Vec<*mut u8> {
        &self.buf
    }
}

impl DerefMut for PtrScratch {
    fn deref_mut(&mut self) -> &mut Vec<*mut u8> {
        &mut self.buf
    }
}

impl fmt::Debug for PtrScratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PtrScratch")
            .field("len", &self.buf.len())
            .field("capacity", &self.buf.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_send_and_reusable() {
        fn assert_send<T: Send>() {}
        assert_send::<PtrScratch>();
        let mut scratch = PtrScratch::with_capacity(8);
        let cap = scratch.capacity();
        scratch.push(0x10 as *mut u8);
        scratch.clear();
        scratch.extend([0x20 as *mut u8, 0x30 as *mut u8]);
        assert_eq!(scratch.len(), 2);
        assert_eq!(scratch.capacity(), cap, "reuse must not reallocate");
        std::thread::spawn(move || drop(scratch)).join().unwrap();
    }
}
