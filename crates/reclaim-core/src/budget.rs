//! Scheme-wide limbo **byte** budgets with graceful degradation.
//!
//! The paper's robustness claim is about *memory*, not node counts: a scheme
//! is robust when the garbage a stalled, silent or dead thread pins stays
//! bounded in bytes. PR 5 left the repo measuring limbo in nodes and enforcing
//! nothing; this module closes that gap. Every scheme embeds one
//! [`BudgetGovernor`] that
//!
//! 1. **tracks** a scheme-wide limbo-byte estimate the same way
//!    [`EraPacer`](crate::clock::EraPacer) tracks node counts — striped
//!    cache-padded counters fed delta-reports by each handle at a bounded
//!    *grain*, plus a parked counter so a dying handle's leftovers never go
//!    invisible — and records the high-water mark ([`peak`](BudgetGovernor::peak_bytes));
//! 2. **enforces** an optional budget ([`SmrConfig::limbo_budget`]
//!    (crate::config::SmrConfig::limbo_budget)): when the estimate crosses it,
//!    the retire path escalates in a fixed ladder — force an immediate scan,
//!    scheme-specific boosts (the HE pacer switches to byte-driven ticks,
//!    QSense trips its fallback path early), and as a last resort one bounded
//!    retire-side backpressure yield — with every rung counted;
//! 3. **answers** for itself: [`BudgetGovernor::verdict`] returns a
//!    [`BudgetVerdict`] (peak bytes, time spent over budget, escalations
//!    taken) that benches, the CLI fault matrix and CI assert against.
//!
//! ## What enforcement can and cannot promise
//!
//! The ladder only pulls levers that are *safe on the retire path*: scans
//! gated by hazard pointers, ages or era reservations may run at any point, so
//! HP, Cadence, QSense, HE, EBR and RefCount can all free garbage the moment
//! the budget trips. QSBR cannot — declaring a quiescent state mid-operation
//! would be unsound, and no scan exists — so under a stalled reader QSBR
//! *exceeds* its budget and the verdict records exactly that. This asymmetry
//! is the point: the budget turns the paper's robust/non-robust distinction
//! into a pass/fail verdict instead of a plot a human eyeballs.
//!
//! ## Accuracy
//!
//! Reports are grain-batched (at most [`grain`](BudgetGovernor::grain) bytes
//! of drift per handle between reports), so the estimate — and therefore the
//! recorded peak — trails the true total by at most `handles × grain`. The
//! grain is sized at `budget / 64` (clamped to [256 B, 64 KiB]) so the slack
//! is a small fraction of any budget it could hide under. Size-unknown nodes
//! (raw `retire`) weigh zero bytes: the estimate under-counts rather than
//! over-counts, matching the stamping contract of
//! [`RetiredPtr`](crate::retired::RetiredPtr).

use crate::clock::{Clock, Nanos};
use crate::pad::CachePadded;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Stripes of the governor's byte estimate; handles map in by registry
/// *shard* ([`SlotId::shard`](crate::registry::SlotId::shard)), mirroring the
/// `EraPacer` striping: handles sharing a registry shard already share
/// registration-time lines, so shard-keyed striping aligns accounting
/// locality with scan locality. Registry-less schemes key by their assigned
/// stats stripe instead.
const BUDGET_STRIPES: usize = 8;

/// Queryable outcome of running a scheme under a limbo budget: the evidence a
/// robustness verdict is made of.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetVerdict {
    /// The configured budget in bytes; 0 means tracking-only (no enforcement).
    pub budget_bytes: u64,
    /// The limbo-byte estimate at the moment the verdict was taken.
    pub current_bytes: u64,
    /// High-water mark of the limbo-byte estimate over the scheme's lifetime.
    pub peak_bytes: u64,
    /// Total wall-clock time the estimate spent above the budget.
    pub time_over_budget: Duration,
    /// Escalation rung 1: scans forced on the retire path by a budget breach.
    pub forced_scans: u64,
    /// Escalation rung 2a: era-pacer speed-ups attributed to byte pressure
    /// (HE only).
    pub pacer_boosts: u64,
    /// Escalation rung 2b: early fallback-path trips (QSense only).
    pub fallback_trips: u64,
    /// Escalation rung 3: bounded retire-side backpressure yields taken after
    /// a forced scan failed to get back under budget.
    pub backpressure_events: u64,
}

impl BudgetVerdict {
    /// True when the scheme never exceeded its budget (vacuously true without
    /// one). This is the bit CI asserts for the robust schemes.
    pub fn within_budget(&self) -> bool {
        self.budget_bytes == 0 || self.peak_bytes <= self.budget_bytes
    }

    /// Total escalations of any kind — "did graceful degradation actually
    /// engage, or was the run never under pressure".
    pub fn escalations(&self) -> u64 {
        self.forced_scans + self.pacer_boosts + self.fallback_trips + self.backpressure_events
    }
}

/// Scheme-wide limbo-byte accounting plus budget-enforcement state. One per
/// scheme instance; handles report through it at a bounded grain. See the
/// module docs for the design.
#[derive(Debug)]
pub struct BudgetGovernor {
    /// Budget in bytes; 0 = track (peak, estimate) but never escalate.
    budget: u64,
    /// Minimum per-handle byte drift between reports (see module docs).
    grain: usize,
    clock: Clock,
    /// Striped limbo-byte estimate. Signed for the same reason as the pacer's
    /// stripes: delta reports can transiently drive a shared stripe negative.
    stripes: [CachePadded<AtomicI64>; BUDGET_STRIPES],
    /// Bytes parked by dying handles, awaiting adoption — kept out of the
    /// stripes so the hand-off conserves the estimate exactly.
    parked: CachePadded<AtomicI64>,
    /// High-water mark of the estimate, updated on every report.
    peak: AtomicU64,
    /// `now + 1` at the moment the estimate crossed the budget (0 = currently
    /// under). The +1 disambiguates "crossed at t=0" from "not over".
    over_since: AtomicU64,
    /// Accumulated nanoseconds spent over budget across completed excursions.
    over_nanos: AtomicU64,
    forced_scans: AtomicU64,
    pacer_boosts: AtomicU64,
    fallback_trips: AtomicU64,
    backpressure_events: AtomicU64,
}

impl BudgetGovernor {
    /// Creates a governor. `budget` of `None` disables enforcement but keeps
    /// byte tracking (estimate + peak) alive at the idle grain.
    pub fn new(budget: Option<usize>, clock: Clock) -> Self {
        let budget = budget.unwrap_or(0) as u64;
        let grain = if budget > 0 {
            ((budget / 64) as usize).clamp(256, 64 * 1024)
        } else {
            64 * 1024
        };
        Self {
            budget,
            grain,
            clock,
            stripes: std::array::from_fn(|_| CachePadded::new(AtomicI64::new(0))),
            parked: CachePadded::new(AtomicI64::new(0)),
            peak: AtomicU64::new(0),
            over_since: AtomicU64::new(0),
            over_nanos: AtomicU64::new(0),
            forced_scans: AtomicU64::new(0),
            pacer_boosts: AtomicU64::new(0),
            fallback_trips: AtomicU64::new(0),
            backpressure_events: AtomicU64::new(0),
        }
    }

    /// The configured budget in bytes (0 = tracking only).
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// True when a budget is set and breaches escalate.
    pub fn enforcing(&self) -> bool {
        self.budget > 0
    }

    /// The per-handle reporting grain in bytes.
    pub fn grain(&self) -> usize {
        self.grain
    }

    /// Maps a registry shard (or a registry-less scheme's assigned stripe) to
    /// the governor stripe its handle reports into. Registry-backed schemes
    /// pass [`SlotId::shard`](crate::registry::SlotId::shard) so co-sharded
    /// handles share one accounting line.
    pub fn stripe_for(shard_index: usize) -> usize {
        shard_index % BUDGET_STRIPES
    }

    /// The scheme-wide limbo-byte estimate (stripes + parked, clamped at 0).
    /// O(#stripes) relaxed loads — report/diagnostic paths only.
    pub fn estimate(&self) -> u64 {
        let total: i64 = self
            .stripes
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .sum::<i64>()
            + self.parked.load(Ordering::Relaxed);
        total.max(0) as u64
    }

    /// High-water mark of the estimate so far.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Grain-gated retire-path hook: if the handle's byte total has drifted
    /// less than one grain since its last report, this is two subtractions and
    /// a compare; otherwise it reports and returns whether the scheme is over
    /// budget. The bool is the ladder's trigger: `true` means "escalate now".
    #[inline]
    pub fn observe(&self, stripe: usize, bytes_now: usize, reported: &mut usize) -> bool {
        if bytes_now.abs_diff(*reported) < self.grain {
            return false;
        }
        self.report(stripe, bytes_now, reported)
    }

    /// Unconditional delta-report of a handle's current byte total into its
    /// stripe (scan/flush boundaries, and `observe` past the grain). Updates
    /// the peak and the over-budget clock; returns `true` iff a budget is set
    /// and the refreshed estimate exceeds it.
    pub fn report(&self, stripe: usize, bytes_now: usize, reported: &mut usize) -> bool {
        let delta = bytes_now as i64 - *reported as i64;
        if delta != 0 {
            self.stripes[stripe % BUDGET_STRIPES].fetch_add(delta, Ordering::Relaxed);
            *reported = bytes_now;
        }
        self.refresh()
    }

    /// Recomputes the estimate, folds it into the peak and the over-budget
    /// stopwatch, and returns whether the scheme is currently over budget.
    pub fn refresh(&self) -> bool {
        let estimate = self.estimate();
        self.peak.fetch_max(estimate, Ordering::Relaxed);
        if self.budget == 0 {
            return false;
        }
        let over = estimate > self.budget;
        let mark = self.over_since.load(Ordering::Relaxed);
        if over && mark == 0 {
            // Racing markers both try to stamp; one wins, which is enough —
            // the stopwatch is diagnostics, not a safety property.
            let now = self.clock.now();
            let _ = self.over_since.compare_exchange(
                0,
                now.saturating_add(1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        } else if !over
            && mark != 0
            && self
                .over_since
                .compare_exchange(mark, 0, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            let now = self.clock.now();
            self.over_nanos
                .fetch_add(now.saturating_sub(mark - 1), Ordering::Relaxed);
        }
        over
    }

    /// Accounts bytes entering (`delta > 0`, handle drop parks leftovers) or
    /// leaving (`delta < 0`, a flush adopts the chain) the scheme's parking
    /// lot — the byte twin of `EraPacer::note_parked`, but unconditional:
    /// byte conservation is wanted even without enforcement, so leaked
    /// handles can never strand limbo invisibly.
    pub fn note_parked(&self, delta: i64) {
        if delta != 0 {
            self.parked.fetch_add(delta, Ordering::Relaxed);
            self.refresh();
        }
    }

    /// Retracts a dying handle's entire reported contribution before its
    /// leftovers are parked (the parked counter takes over via
    /// [`note_parked`](Self::note_parked)).
    pub fn note_handle_exit(&self, stripe: usize, reported: &mut usize) {
        if *reported != 0 {
            self.stripes[stripe % BUDGET_STRIPES].fetch_sub(*reported as i64, Ordering::Relaxed);
            *reported = 0;
        }
    }

    /// Counts a forced retire-path scan (ladder rung 1).
    pub fn count_forced_scan(&self) {
        self.forced_scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a byte-pressure era-pacer speed-up (ladder rung 2a, HE).
    pub fn count_pacer_boost(&self) {
        self.pacer_boosts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an early fallback-path trip (ladder rung 2b, QSense).
    pub fn count_fallback_trip(&self) {
        self.fallback_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one bounded retire-side backpressure yield (ladder rung 3).
    pub fn count_backpressure(&self) {
        self.backpressure_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the run so far. If the scheme is over budget right now the
    /// in-flight excursion is included in `time_over_budget`.
    pub fn verdict(&self) -> BudgetVerdict {
        let mut over = Duration::from_nanos(self.over_nanos.load(Ordering::Relaxed));
        let mark = self.over_since.load(Ordering::Relaxed);
        if mark != 0 {
            let now: Nanos = self.clock.now();
            over += Duration::from_nanos(now.saturating_sub(mark - 1));
        }
        BudgetVerdict {
            budget_bytes: self.budget,
            current_bytes: self.estimate(),
            peak_bytes: self.peak_bytes(),
            time_over_budget: over,
            forced_scans: self.forced_scans.load(Ordering::Relaxed),
            pacer_boosts: self.pacer_boosts.load(Ordering::Relaxed),
            fallback_trips: self.fallback_trips.load(Ordering::Relaxed),
            backpressure_events: self.backpressure_events.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn governor(budget: Option<usize>) -> (BudgetGovernor, ManualClock) {
        let manual = ManualClock::new();
        (
            BudgetGovernor::new(budget, Clock::manual(manual.clone())),
            manual,
        )
    }

    #[test]
    fn tracking_only_governor_records_peak_but_never_escalates() {
        let (gov, _clock) = governor(None);
        assert!(!gov.enforcing());
        let mut reported = 0usize;
        assert!(!gov.report(0, 1 << 20, &mut reported));
        assert_eq!(gov.estimate(), 1 << 20);
        assert_eq!(gov.peak_bytes(), 1 << 20);
        assert!(!gov.report(0, 0, &mut reported));
        assert_eq!(gov.estimate(), 0);
        assert_eq!(gov.peak_bytes(), 1 << 20, "peak is a high-water mark");
        let verdict = gov.verdict();
        assert!(verdict.within_budget());
        assert_eq!(verdict.escalations(), 0);
        assert_eq!(verdict.time_over_budget, Duration::ZERO);
    }

    #[test]
    fn grain_gates_observe_but_not_report() {
        let (gov, _clock) = governor(Some(1 << 20));
        let grain = gov.grain();
        assert_eq!(grain, (1 << 20) / 64);
        let mut reported = 0usize;
        // Below the grain: observe is a no-op and the estimate stays stale.
        assert!(!gov.observe(0, grain - 1, &mut reported));
        assert_eq!(gov.estimate(), 0);
        // At the grain: the report lands.
        assert!(!gov.observe(0, grain, &mut reported));
        assert_eq!(gov.estimate(), grain as u64);
        // Report is unconditional.
        let mut other = 0usize;
        gov.report(1, 1, &mut other);
        assert_eq!(gov.estimate(), grain as u64 + 1);
    }

    #[test]
    fn grain_clamps_to_sane_bounds() {
        let (tiny, _) = governor(Some(64));
        assert_eq!(tiny.grain(), 256, "floor keeps the hot path cheap");
        let (huge, _) = governor(Some(1 << 30));
        assert_eq!(huge.grain(), 64 * 1024, "ceiling keeps the estimate fresh");
    }

    #[test]
    fn crossing_the_budget_escalates_and_times_the_excursion() {
        let (gov, clock) = governor(Some(1_000));
        let mut reported = 0usize;
        assert!(!gov.report(0, 900, &mut reported));
        clock.advance(Duration::from_millis(1));
        assert!(gov.report(0, 1_500, &mut reported), "estimate over budget");
        clock.advance(Duration::from_millis(5));
        // Still over: the in-flight excursion shows up in the verdict.
        assert!(gov.verdict().time_over_budget >= Duration::from_millis(5));
        assert!(!gov.verdict().within_budget());
        // Recovery closes the stopwatch.
        assert!(!gov.report(0, 100, &mut reported));
        let settled = gov.verdict().time_over_budget;
        assert!(settled >= Duration::from_millis(5));
        clock.advance(Duration::from_millis(10));
        assert_eq!(
            gov.verdict().time_over_budget,
            settled,
            "stopwatch stops while under budget"
        );
        assert_eq!(gov.verdict().peak_bytes, 1_500);
    }

    #[test]
    fn parked_bytes_stay_visible_and_conserve_across_adoption() {
        let (gov, _clock) = governor(Some(1_000));
        let mut reported = 0usize;
        gov.report(0, 800, &mut reported);
        // Handle dies: stripe contribution moves to the parked counter.
        gov.note_handle_exit(0, &mut reported);
        assert_eq!(reported, 0);
        gov.note_parked(800);
        assert_eq!(
            gov.estimate(),
            800,
            "parked limbo keeps pressing on the estimate"
        );
        // Adoption debits parked; the adopter re-reports the same bytes.
        gov.note_parked(-800);
        let mut adopter = 0usize;
        gov.report(1, 800, &mut adopter);
        assert_eq!(gov.estimate(), 800, "conserved across the hand-off");
    }

    #[test]
    fn escalation_counters_land_in_the_verdict() {
        let (gov, _clock) = governor(Some(10));
        gov.count_forced_scan();
        gov.count_forced_scan();
        gov.count_pacer_boost();
        gov.count_fallback_trip();
        gov.count_backpressure();
        let verdict = gov.verdict();
        assert_eq!(verdict.forced_scans, 2);
        assert_eq!(verdict.pacer_boosts, 1);
        assert_eq!(verdict.fallback_trips, 1);
        assert_eq!(verdict.backpressure_events, 1);
        assert_eq!(verdict.escalations(), 5);
    }

    #[test]
    fn verdict_without_budget_is_vacuously_within() {
        let (gov, _clock) = governor(None);
        let mut reported = 0usize;
        gov.report(0, usize::MAX / 2, &mut reported);
        assert!(gov.verdict().within_budget());
        assert_eq!(gov.verdict().budget_bytes, 0);
    }
}
