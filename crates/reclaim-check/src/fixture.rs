//! A distilled resurrection of the **pre-versioned-link skip-list upper-level
//! linking logic** — the bug the interleaving harness originally had to force
//! by hand, kept alive here so the explorer + shadow-heap oracle can prove
//! they find it *without* a hand-written schedule.
//!
//! The model is a two-level skip list over raw `AtomicUsize` links (pointer
//! with the mark in bit 0, **no version counter** — that is the resurrected
//! flaw). `insert2` links the node at level 0 (the linearization point),
//! validates that the node is still unmarked, and then CASes it into level 1.
//! Between that validation and the CAS sits the pause point
//! `relink_fixture::insert::pre_upper_cas`. A complete `remove` of the same
//! key inside that window marks and unlinks the node at level 0 and retires
//! it — but leaves `pred.next[1]` untouched (the victim was never at level 1),
//! so the inserter's stale compare-exchange still succeeds and **re-links a
//! retired node** at level 1. The fixed production skip list defeats exactly
//! this schedule with its versioned links; this fixture deliberately does not.
//!
//! The whole module is gated on `check-oracle`: driving the buggy schedule
//! without the oracle's quarantine (poison-and-leak instead of real frees)
//! would be a genuine use-after-free, not a test.

use lockfree_ds::interleave;
use reclaim_core::{drop_fn_for, Smr, SmrConfig, SmrHandle, NO_BIRTH_ERA};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::explorer::{Scenario, ScenarioRun};

const MARK: usize = 1;

/// A fixture node: key plus one unversioned `ptr | mark` link per level.
struct FixNode {
    key: u64,
    next: [AtomicUsize; 2],
}

impl FixNode {
    fn alloc(key: u64, next0: usize) -> *mut FixNode {
        let node = Box::into_raw(Box::new(FixNode {
            key,
            next: [AtomicUsize::new(next0), AtomicUsize::new(0)],
        }));
        reclaim_core::oracle::register(node.cast(), std::mem::size_of::<FixNode>());
        node
    }
}

fn ptr_of(link: usize) -> *mut FixNode {
    (link & !MARK) as *mut FixNode
}

/// The two-level list with the resurrected linking bug, generic over the
/// reclamation scheme (the suite drives it under hazard pointers: the victim
/// is unprotected at its free, so HP legitimately frees it — the bug is in
/// the structure, not the scheme).
pub struct RelinkFixture<S: Smr> {
    head: Box<FixNode>,
    smr: Arc<S>,
}

impl<S: Smr> RelinkFixture<S> {
    /// An empty fixture list.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: Box::new(FixNode {
                key: 0,
                next: [AtomicUsize::new(0), AtomicUsize::new(0)],
            }),
            smr,
        }
    }

    /// Registers the calling thread with the reclamation scheme.
    pub fn register(&self) -> S::Handle {
        self.smr.register()
    }

    /// Walks `level` to the insertion point for `key`: returns `(pred, succ)`
    /// where `succ` is the first node with `node.key >= key` (null if none).
    fn find(&self, level: usize, key: u64) -> (*const FixNode, *mut FixNode) {
        let mut pred: *const FixNode = &*self.head;
        loop {
            // SAFETY: (fixture) execution is serialized by the explorer and
            // quarantined by the oracle; a freed node here is the bug under
            // test and is caught by the checkpoint below before any deref.
            let link = unsafe { (*pred).next[level].load(Ordering::Acquire) };
            let curr = ptr_of(link);
            if curr.is_null() {
                return (pred, curr);
            }
            reclaim_core::oracle::check_protected(curr.cast(), "relink_fixture::find");
            // SAFETY: checkpoint above turns a retired-and-freed node into a
            // deterministic oracle verdict; otherwise the node is live.
            if unsafe { (*curr).key } >= key {
                return (pred, curr);
            }
            pred = curr;
        }
    }

    /// Inserts `key` with height 2. Level 0 first (the linearization point),
    /// then the **buggy** validate-then-CAS at level 1.
    pub fn insert2(&self, key: u64, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        let (pred0, succ0) = self.find(0, key);
        if !succ0.is_null() {
            // SAFETY: `find` checkpointed `succ0`.
            if unsafe { (*succ0).key } == key {
                handle.end_op();
                return false;
            }
        }
        let node = FixNode::alloc(key, succ0 as usize);
        // SAFETY: `pred0` came from `find` under the same serialization.
        let linked = unsafe {
            (*pred0).next[0]
                .compare_exchange(
                    succ0 as usize,
                    node as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
        };
        if !linked {
            // Roll the private node back (never published).
            reclaim_core::oracle::deregister(node.cast());
            // SAFETY: `node` was just allocated by this thread and never
            // escaped; reclaiming it in place is the sanctioned rollback.
            #[allow(clippy::disallowed_methods)]
            unsafe {
                drop(Box::from_raw(node))
            };
            handle.end_op();
            return false;
        }

        // Upper level. THE RESURRECTED BUG: validate that the node is still
        // unmarked, then CAS it into level 1 — with no version on the link, a
        // complete remove() landing in the window below leaves pred1.next[1]
        // bit-identical, so the stale CAS re-links the (retired) node.
        let (pred1, succ1) = self.find(1, key);
        // SAFETY: `node` is this thread's allocation; only marks may race.
        let still_unmarked = unsafe { (*node).next[0].load(Ordering::Acquire) } & MARK == 0;
        interleave::hit("relink_fixture::insert::pre_upper_cas");
        if still_unmarked {
            // SAFETY: `node` as above; the store is private until the CAS.
            unsafe { (*node).next[1].store(succ1 as usize, Ordering::Release) };
            // SAFETY: `pred1` came from `find`. An unversioned success here
            // after a remove in the window is precisely the bug.
            let _ = unsafe {
                (*pred1).next[1].compare_exchange(
                    succ1 as usize,
                    node as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
            };
        }
        handle.end_op();
        true
    }

    /// Removes `key`: mark + unlink top-down, then retire the node.
    pub fn remove(&self, key: u64, handle: &mut S::Handle) -> bool {
        handle.begin_op();
        let (_, target) = self.find(0, key);
        // SAFETY: `find` checkpointed `target`.
        if target.is_null() || unsafe { (*target).key } != key {
            handle.end_op();
            return false;
        }
        for level in (0..2).rev() {
            let (pred, curr) = self.find(level, key);
            if curr != target {
                continue; // not linked at this level
            }
            // Logical delete: set the mark on the node's own link.
            // SAFETY: `curr` was checkpointed by `find` at this level.
            let succ = unsafe { (*curr).next[level].load(Ordering::Acquire) } & !MARK;
            // SAFETY: as above; marking is idempotent under serialization.
            unsafe { (*curr).next[level].store(succ | MARK, Ordering::Release) };
            // Physical unlink.
            // SAFETY: `pred` from the same `find`.
            let _ = unsafe {
                (*pred).next[level].compare_exchange(
                    curr as usize,
                    succ,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
            };
        }
        interleave::hit("relink_fixture::remove::pre_retire");
        // SAFETY: the node was unlinked from every level above; under the
        // resurrected bug a concurrent insert may still re-link it — which is
        // exactly the violation the oracle is here to convict.
        unsafe {
            handle.retire_sized(
                target.cast(),
                drop_fn_for::<FixNode>(),
                NO_BIRTH_ERA,
                std::mem::size_of::<FixNode>(),
            )
        };
        handle.end_op();
        true
    }

    /// Reads the level-1 chain, checkpointing every node against the oracle —
    /// the read that turns the re-linked retired node into a UAF verdict.
    pub fn keys_at_level1(&self, handle: &mut S::Handle) -> Vec<u64> {
        handle.begin_op();
        let mut keys = Vec::new();
        let mut link = self.head.next[1].load(Ordering::Acquire);
        loop {
            let curr = ptr_of(link);
            if curr.is_null() {
                break;
            }
            reclaim_core::oracle::check_protected(curr.cast(), "relink_fixture::read::level1");
            // SAFETY: checkpoint above; live nodes are safe to read under the
            // explorer's serialization.
            keys.push(unsafe { (*curr).key });
            // SAFETY: as above.
            link = unsafe { (*curr).next[1].load(Ordering::Acquire) };
        }
        handle.end_op();
        keys
    }
}

impl<S: Smr> Drop for RelinkFixture<S> {
    fn drop(&mut self) {
        // Exclusive access: free what is still linked at level 0. Retired
        // nodes were already handed to the scheme and are not reachable here
        // (the re-link bug only ever resurrects them at level 1, and the
        // oracle has convicted the schedule before teardown in that case).
        let mut link = self.head.next[0].load(Ordering::Acquire);
        loop {
            let curr = ptr_of(link);
            if curr.is_null() {
                break;
            }
            // SAFETY: teardown owns the list; each level-0 node is freed once.
            link = unsafe { (*curr).next[0].load(Ordering::Acquire) };
            reclaim_core::oracle::deregister(curr.cast());
            // SAFETY: sanctioned teardown free of a node this walk unlinked.
            #[allow(clippy::disallowed_methods)]
            unsafe {
                drop(Box::from_raw(curr))
            };
        }
    }
}

/// The scenario the acceptance test explores: two threads, one key, hazard
/// pointers with an eager scan threshold. Thread 0 inserts key 10 at height
/// 2; thread 1 removes it, flushes (freeing the retired victim under the
/// oracle's quarantine), and then reads level 1. Under the resurrected
/// unversioned CAS there is a 2-preemption schedule in which thread 0
/// re-links the retired node before the flush — the level-1 read then trips
/// the oracle's use-after-free checkpoint.
pub fn relink_scenario() -> Scenario {
    Scenario::new("relink-fixture/hp", || {
        let config = SmrConfig::default()
            .with_max_threads(4)
            .with_hp_per_thread(2)
            .with_scan_threshold(1)
            .with_quiescence_threshold(1)
            .with_fallback_threshold(4)
            .with_rooster_threads(0);
        let fixture = Arc::new(RelinkFixture::new(hazard::Hazard::new(config)));
        let inserter = Arc::clone(&fixture);
        let remover = Arc::clone(&fixture);
        ScenarioRun::new()
            .thread(move || {
                let mut handle = inserter.register();
                inserter.insert2(10, &mut handle);
                handle.flush();
            })
            .thread(move || {
                let mut handle = remover.register();
                remover.remove(10, &mut handle);
                interleave::hit("relink_fixture::sync");
                handle.flush();
                // On the buggy schedule this read reaches the freed victim.
                let _ = remover.keys_at_level1(&mut handle);
            })
    })
}
