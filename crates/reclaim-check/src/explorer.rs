//! The bounded exhaustive schedule explorer.
//!
//! A [`Scenario`] describes a small concurrent test: a builder that constructs
//! fresh shared state and returns 2–3 thread bodies (plus an optional
//! post-schedule check). The [`Explorer`] runs the scenario once per
//! *schedule*: it installs itself as the global `interleave` scheduler, so
//! every `interleave::hit` pause point parks the calling model thread until
//! the driver grants it a turn. Execution is therefore fully serialized — at
//! most one model thread runs between two pause points — and a schedule is
//! completely described by the sequence of thread ids granted at each
//! scheduling decision.
//!
//! Schedules are enumerated by iterative depth-first search over those
//! decision sequences (the CHESS recipe): run one schedule to completion,
//! record at every decision which threads were runnable, then backtrack to the
//! deepest decision with an untried alternative and re-run with that choice
//! sequence as a *prefix* (prefix replay is deterministic because the
//! scenario's only source of nondeterminism is the schedule itself). The
//! search is pruned by a **preemption bound**: alternatives that would switch
//! away from a still-runnable thread more than `preemption_bound` times are
//! skipped. Most reclamation bugs need only one or two preemptions (open a
//! window, act inside it), so a bound of 2 explores a tiny fraction of the
//! exponential schedule space while still covering the protocol races this
//! repo has historically hand-forced.
//!
//! A failing schedule is reported as a replayable [`Failure`]: the exact
//! pause-point trace plus the thread-id sequence that [`Explorer::replay`]
//! accepts to reproduce it deterministically.

use lockfree_ds::interleave;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

/// Synthetic pause point every model thread is parked at before its body runs.
///
/// Parking all threads at spawn before the first decision makes the schedule
/// the *only* source of ordering: OS spawn latency never leaks into a trace.
pub const SPAWN_POINT: &str = "<spawn>";

type Body = Box<dyn FnOnce() + Send + 'static>;

/// One instantiation of a scenario: fresh shared state captured by the thread
/// bodies, plus an optional invariant check run after all threads finished.
#[derive(Default)]
pub struct ScenarioRun {
    threads: Vec<Body>,
    check: Option<Body>,
}

impl ScenarioRun {
    /// An empty run; add model threads with [`thread`](Self::thread).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a model thread. Ids are assigned in call order starting at 0.
    pub fn thread(mut self, body: impl FnOnce() + Send + 'static) -> Self {
        self.threads.push(Box::new(body));
        self
    }

    /// Sets the post-schedule check, run on the driver after every model
    /// thread finished. A panic in the check fails the schedule like a panic
    /// in a model thread.
    pub fn check(mut self, check: impl FnOnce() + Send + 'static) -> Self {
        self.check = Some(Box::new(check));
        self
    }
}

/// A named, repeatable concurrent test the explorer can enumerate schedules
/// of. The builder must produce equivalent state every call — determinism of
/// prefix replay depends on it (no wall-clock, no RNG, fixed skip-list
/// heights).
pub struct Scenario {
    name: String,
    build: Box<dyn Fn() -> ScenarioRun + Send + Sync>,
}

impl Scenario {
    /// Creates a scenario from a state builder.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn() -> ScenarioRun + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            build: Box::new(build),
        }
    }

    /// The scenario's display name (`structure/scheme` for the suites).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// One scheduling grant: `thread` was released from pause point `point`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    /// Model thread id (position in the [`ScenarioRun`] thread list).
    pub thread: usize,
    /// The pause point the thread was parked at when granted.
    pub point: &'static str,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}@{}", self.thread, self.point)
    }
}

/// Extracts the replayable thread-id sequence from a trace (the form
/// [`Explorer::replay`] accepts).
pub fn schedule_of(trace: &[Step]) -> Vec<usize> {
    trace.iter().map(|s| s.thread).collect()
}

/// How a schedule failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread (or the post-schedule check) panicked — assertion
    /// failures and shadow-heap oracle verdicts both surface here.
    Panic,
    /// No scheduling progress within the step timeout: a model thread blocked
    /// somewhere other than a pause point.
    Hang,
    /// A replay prefix asked for a thread that was not runnable — the scenario
    /// is nondeterministic or the schedule came from a different scenario.
    Divergence,
}

/// A failing schedule, replayable via [`Explorer::replay`] with
/// [`schedule_of`]`(&failure.trace)`.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What kind of failure this is.
    pub kind: FailureKind,
    /// Scenario name.
    pub scenario: String,
    /// 0-based index of the schedule in exploration order.
    pub schedule_index: usize,
    /// The panic message / hang description.
    pub message: String,
    /// The exact pause-point schedule that produced the failure.
    pub trace: Vec<Step>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:?} in scenario `{}` (schedule #{}): {}",
            self.kind, self.scenario, self.schedule_index, self.message
        )?;
        writeln!(
            f,
            "replay schedule (thread ids): {:?}",
            schedule_of(&self.trace)
        )?;
        write!(f, "pause-point trace:")?;
        for step in &self.trace {
            write!(f, "\n  {step}")?;
        }
        Ok(())
    }
}

/// Result of an [`Explorer::explore`] run.
#[derive(Debug)]
pub struct Report {
    /// Scenario name.
    pub scenario: String,
    /// Number of schedules executed.
    pub schedules: usize,
    /// Decisions in the longest schedule (tree depth).
    pub max_decisions: usize,
    /// True if `max_schedules` was reached before the bounded space was
    /// exhausted.
    pub truncated: bool,
    /// The first failing schedule, if any (exploration stops at the first).
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics with the full replayable failure if any schedule failed.
    pub fn assert_clean(&self) {
        if let Some(failure) = &self.failure {
            panic!("{failure}");
        }
    }

    /// [`assert_clean`](Self::assert_clean) plus: the bounded schedule space
    /// was fully enumerated (not cut off by the schedule cap).
    pub fn assert_exhaustive(&self) {
        self.assert_clean();
        assert!(
            !self.truncated,
            "scenario `{}`: exploration truncated at {} schedules — raise max_schedules",
            self.scenario, self.schedules
        );
    }
}

/// One recorded scheduling decision, kept for DFS backtracking.
#[derive(Clone, Debug)]
struct Decision {
    /// Parked (runnable) threads at this decision, ascending.
    runnable: Vec<usize>,
    /// The thread actually granted.
    chosen: usize,
    /// The choice the default policy would make (run-to-completion: previous
    /// thread if still runnable, else lowest id). Child ordering in the DFS
    /// puts this first so schedule #0 is the straight-line run.
    default_choice: usize,
    /// Previously granted thread, if any.
    prev: Option<usize>,
    /// Preemptions consumed by the schedule before this decision.
    preemptions_before: usize,
}

/// Finds the deepest decision with an untried alternative within the
/// preemption bound and returns the choice prefix for the next schedule.
fn next_prefix(decisions: &[Decision], bound: usize) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        if d.runnable.len() < 2 {
            continue;
        }
        // Children ordered: default choice first, then the rest ascending.
        let mut order = Vec::with_capacity(d.runnable.len());
        order.push(d.default_choice);
        order.extend(
            d.runnable
                .iter()
                .copied()
                .filter(|&t| t != d.default_choice),
        );
        let pos = order
            .iter()
            .position(|&t| t == d.chosen)
            .expect("chosen is always drawn from runnable");
        for &cand in &order[pos + 1..] {
            let preempt = usize::from(d.prev.is_some_and(|p| p != cand && d.runnable.contains(&p)));
            if d.preemptions_before + preempt <= bound {
                let mut prefix: Vec<usize> = decisions[..i].iter().map(|e| e.chosen).collect();
                prefix.push(cand);
                return Some(prefix);
            }
        }
    }
    None
}

thread_local! {
    /// Model-thread id of the current thread, if it is one. Scheme background
    /// threads (roosters) and the driver stay `None` and pass straight through
    /// the scheduler hook.
    static MODEL_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Shared scheduler state for one schedule.
struct SchedState {
    inner: Mutex<Inner>,
    cv: Condvar,
    n: usize,
}

struct Inner {
    /// Parked model threads → the pause point each is parked at.
    parked: BTreeMap<usize, &'static str>,
    finished: Vec<bool>,
    finished_count: usize,
    /// The single outstanding grant; the granted thread clears it as it
    /// resumes, so `None` + everyone parked/finished means quiescence.
    grant: Option<usize>,
    /// When set, pause points stop parking and every waiter is released —
    /// used to drain threads after a failure.
    free_run: bool,
    /// Panic messages collected from model threads.
    panics: Vec<(usize, String)>,
}

impl SchedState {
    fn new(n: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                parked: BTreeMap::new(),
                finished: vec![false; n],
                finished_count: 0,
                grant: None,
                free_run: false,
                panics: Vec::new(),
            }),
            cv: Condvar::new(),
            n,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks the calling model thread at `point` until granted a turn.
    fn yield_at(&self, id: usize, point: &'static str) {
        let mut inner = self.lock();
        if inner.free_run {
            return;
        }
        inner.parked.insert(id, point);
        self.cv.notify_all();
        loop {
            if inner.free_run {
                inner.parked.remove(&id);
                self.cv.notify_all();
                return;
            }
            if inner.grant == Some(id) {
                inner.grant = None;
                inner.parked.remove(&id);
                return;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish(&self, id: usize, panic_message: Option<String>) {
        let mut inner = self.lock();
        if !inner.finished[id] {
            inner.finished[id] = true;
            inner.finished_count += 1;
        }
        if let Some(message) = panic_message {
            inner.panics.push((id, message));
        }
        self.cv.notify_all();
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The pause-point registry and the scheduler slot are process-global, so two
/// explorations must never overlap; every public entry point holds this lock.
fn explorer_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct ScheduleOutcome {
    decisions: Vec<Decision>,
    trace: Vec<Step>,
    failure: Option<Failure>,
}

/// The schedule enumerator. `Default` gives the configuration the CI `check`
/// job runs: preemption bound 2, at most 20 000 schedules per scenario, 10 s
/// progress timeout.
#[derive(Clone, Debug)]
pub struct Explorer {
    preemption_bound: usize,
    max_schedules: usize,
    step_timeout: Duration,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_schedules: 20_000,
            step_timeout: Duration::from_secs(10),
        }
    }
}

impl Explorer {
    /// An explorer with the default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the preemption bound (default 2): the maximum number of times a
    /// schedule may switch away from a still-runnable thread.
    pub fn with_preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Caps the number of schedules per exploration (default 20 000); hitting
    /// the cap sets [`Report::truncated`].
    pub fn with_max_schedules(mut self, max: usize) -> Self {
        self.max_schedules = max;
        self
    }

    /// Sets the no-progress timeout that turns a stuck schedule into a
    /// [`FailureKind::Hang`].
    pub fn with_step_timeout(mut self, timeout: Duration) -> Self {
        self.step_timeout = timeout;
        self
    }

    /// Enumerates all schedules of `scenario` within the preemption bound,
    /// stopping at the first failure (or at the schedule cap).
    pub fn explore(&self, scenario: &Scenario) -> Report {
        let _serial = explorer_lock();
        self.explore_locked(scenario, |_| false).0
    }

    /// Like [`explore`](Self::explore), but also stops at the first *clean*
    /// schedule whose trace satisfies `found`, returning that trace. Used to
    /// recover historically hand-forced schedules as explorer-found traces.
    ///
    /// Returns `Err` on a failing schedule, `Ok(None)` if the bounded space
    /// was exhausted (or truncated) without a match.
    pub fn explore_until(
        &self,
        scenario: &Scenario,
        found: impl Fn(&[Step]) -> bool,
    ) -> Result<Option<Vec<Step>>, Box<Failure>> {
        let _serial = explorer_lock();
        let (report, matched) = self.explore_locked(scenario, found);
        match report.failure {
            Some(failure) => Err(Box::new(failure)),
            None => Ok(matched),
        }
    }

    /// Replays one schedule: the recorded thread-id sequence is used as the
    /// full decision prefix (the default policy finishes the run if the trace
    /// ends early). Returns the (re-)observed trace, or the failure the
    /// schedule reproduces.
    pub fn replay(
        &self,
        scenario: &Scenario,
        schedule: &[usize],
    ) -> Result<Vec<Step>, Box<Failure>> {
        let _serial = explorer_lock();
        let outcome = self.run_one(scenario, schedule, 0);
        match outcome.failure {
            Some(failure) => Err(Box::new(failure)),
            None => Ok(outcome.trace),
        }
    }

    fn explore_locked(
        &self,
        scenario: &Scenario,
        found: impl Fn(&[Step]) -> bool,
    ) -> (Report, Option<Vec<Step>>) {
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0;
        let mut max_decisions = 0;
        loop {
            if schedules == self.max_schedules {
                return (
                    Report {
                        scenario: scenario.name.clone(),
                        schedules,
                        max_decisions,
                        truncated: true,
                        failure: None,
                    },
                    None,
                );
            }
            let outcome = self.run_one(scenario, &prefix, schedules);
            schedules += 1;
            max_decisions = max_decisions.max(outcome.decisions.len());
            if outcome.failure.is_some() {
                return (
                    Report {
                        scenario: scenario.name.clone(),
                        schedules,
                        max_decisions,
                        truncated: false,
                        failure: outcome.failure,
                    },
                    None,
                );
            }
            if found(&outcome.trace) {
                return (
                    Report {
                        scenario: scenario.name.clone(),
                        schedules,
                        max_decisions,
                        truncated: false,
                        failure: None,
                    },
                    Some(outcome.trace),
                );
            }
            match next_prefix(&outcome.decisions, self.preemption_bound) {
                Some(next) => prefix = next,
                None => {
                    return (
                        Report {
                            scenario: scenario.name.clone(),
                            schedules,
                            max_decisions,
                            truncated: false,
                            failure: None,
                        },
                        None,
                    )
                }
            }
        }
    }

    /// Runs one schedule: spawn the model threads, serialize them through the
    /// scheduler hook, follow `prefix` then the default policy.
    fn run_one(
        &self,
        scenario: &Scenario,
        prefix: &[usize],
        schedule_index: usize,
    ) -> ScheduleOutcome {
        // Build fresh state *before* installing the scheduler so prefill
        // traffic through pause points runs unscheduled.
        let ScenarioRun { threads, check } = (scenario.build)();
        let n = threads.len();
        assert!(n >= 1, "scenario `{}` has no model threads", scenario.name);
        let state = Arc::new(SchedState::new(n));

        #[cfg(feature = "check-oracle")]
        reclaim_core::oracle::set_context(format!("{} schedule #{schedule_index}", scenario.name));
        // Quarantine on the driver too: teardown frees (structure/scheme drop
        // in the check closure) must poison-and-leak, not recycle addresses.
        #[cfg(feature = "check-oracle")]
        let _driver_quarantine = reclaim_core::oracle::QuarantineGuard::enable();

        let _scheduler = interleave::set_scheduler({
            let state = Arc::clone(&state);
            move |point| {
                if let Some(id) = MODEL_ID.with(|c| c.get()) {
                    state.yield_at(id, point);
                }
            }
        });

        let mut handles = Vec::with_capacity(n);
        for (id, body) in threads.into_iter().enumerate() {
            let state = Arc::clone(&state);
            let handle = thread::Builder::new()
                .name(format!("model-{id}"))
                .spawn(move || {
                    MODEL_ID.with(|c| c.set(Some(id)));
                    // Freed nodes are poisoned and leaked instead of returned
                    // to the allocator, so a use-after-free is a deterministic
                    // oracle verdict rather than silent address reuse.
                    #[cfg(feature = "check-oracle")]
                    let _quarantine = reclaim_core::oracle::QuarantineGuard::enable();
                    state.yield_at(id, SPAWN_POINT);
                    let message = catch_unwind(AssertUnwindSafe(body)).err().map(panic_text);
                    state.finish(id, message);
                })
                .expect("spawn model thread");
            handles.push(handle);
        }

        let mut decisions: Vec<Decision> = Vec::new();
        let mut trace: Vec<Step> = Vec::new();
        let mut preemptions = 0;
        let mut prev: Option<usize> = None;
        let mut failure: Option<Failure> = None;
        let mut hung = false;

        loop {
            let mut inner = state.lock();
            // Wait for quiescence: no outstanding grant, everyone parked or
            // finished. Each wakeup restarts the timeout, so it measures "no
            // scheduling progress", not total runtime.
            let mut timed_out = false;
            while !(inner.grant.is_none() && inner.parked.len() + inner.finished_count == state.n) {
                let (guard, result) = state
                    .cv
                    .wait_timeout(inner, self.step_timeout)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
                if result.timed_out() {
                    timed_out = true;
                    break;
                }
            }
            if timed_out {
                let parked: Vec<String> = inner
                    .parked
                    .iter()
                    .map(|(&t, &p)| format!("t{t}@{p}"))
                    .collect();
                inner.free_run = true;
                state.cv.notify_all();
                drop(inner);
                failure = Some(Failure {
                    kind: FailureKind::Hang,
                    scenario: scenario.name.clone(),
                    schedule_index,
                    message: format!(
                        "no scheduling progress for {:?}; parked: [{}] — a model thread is blocked outside a pause point",
                        self.step_timeout,
                        parked.join(", ")
                    ),
                    trace: trace.clone(),
                });
                hung = true;
                break;
            }
            if !inner.panics.is_empty() {
                let message = inner
                    .panics
                    .iter()
                    .map(|(t, m)| format!("model thread {t}: {m}"))
                    .collect::<Vec<_>>()
                    .join("; ");
                inner.free_run = true;
                state.cv.notify_all();
                drop(inner);
                failure = Some(Failure {
                    kind: FailureKind::Panic,
                    scenario: scenario.name.clone(),
                    schedule_index,
                    message,
                    trace: trace.clone(),
                });
                break;
            }
            if inner.finished_count == state.n {
                break;
            }

            let runnable: Vec<usize> = inner.parked.keys().copied().collect();
            let default_choice = prev.filter(|p| runnable.contains(p)).unwrap_or(runnable[0]);
            let chosen = if decisions.len() < prefix.len() {
                let want = prefix[decisions.len()];
                if !runnable.contains(&want) {
                    inner.free_run = true;
                    state.cv.notify_all();
                    drop(inner);
                    failure = Some(Failure {
                        kind: FailureKind::Divergence,
                        scenario: scenario.name.clone(),
                        schedule_index,
                        message: format!(
                            "replay diverged at decision {}: schedule wants thread {want}, runnable {runnable:?}",
                            decisions.len()
                        ),
                        trace: trace.clone(),
                    });
                    break;
                }
                want
            } else {
                default_choice
            };
            let is_preempt = prev.is_some_and(|p| p != chosen && runnable.contains(&p));
            let point = *inner.parked.get(&chosen).expect("chosen is parked");
            decisions.push(Decision {
                runnable,
                chosen,
                default_choice,
                prev,
                preemptions_before: preemptions,
            });
            if is_preempt {
                preemptions += 1;
            }
            trace.push(Step {
                thread: chosen,
                point,
            });
            inner.grant = Some(chosen);
            prev = Some(chosen);
            state.cv.notify_all();
            drop(inner);
        }

        if hung {
            // The threads may be blocked for good; detaching beats hanging
            // the whole exploration (the scenario state they pin is leaked).
            drop(handles);
        } else {
            for handle in handles {
                let _ = handle.join();
            }
        }

        if failure.is_none() {
            if let Some(check) = check {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(check)) {
                    failure = Some(Failure {
                        kind: FailureKind::Panic,
                        scenario: scenario.name.clone(),
                        schedule_index,
                        message: format!("post-schedule check: {}", panic_text(payload)),
                        trace: trace.clone(),
                    });
                }
            }
        }

        #[cfg(feature = "check-oracle")]
        reclaim_core::oracle::clear_context();

        ScheduleOutcome {
            decisions,
            trace,
            failure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Two threads doing a non-atomic read-modify-write around a pause point:
    /// the textbook lost update, findable with a single preemption.
    fn racy_counter() -> Scenario {
        Scenario::new("racy-counter", || {
            let x = Arc::new(AtomicUsize::new(0));
            let mut run = ScenarioRun::new();
            for _ in 0..2 {
                let x = Arc::clone(&x);
                run = run.thread(move || {
                    let v = x.load(Ordering::SeqCst);
                    interleave::hit("racy::between_load_and_store");
                    x.store(v + 1, Ordering::SeqCst);
                });
            }
            run.check(move || assert_eq!(x.load(Ordering::SeqCst), 2, "lost update"))
        })
    }

    /// Same shape, but with atomic increments: correct under every schedule.
    fn safe_counter() -> Scenario {
        Scenario::new("safe-counter", || {
            let x = Arc::new(AtomicUsize::new(0));
            let mut run = ScenarioRun::new();
            for _ in 0..2 {
                let x = Arc::clone(&x);
                run = run.thread(move || {
                    interleave::hit("safe::before_increment");
                    x.fetch_add(1, Ordering::SeqCst);
                });
            }
            run.check(move || assert_eq!(x.load(Ordering::SeqCst), 2))
        })
    }

    #[test]
    fn finds_the_lost_update_and_the_trace_replays() {
        let explorer = Explorer::new().with_preemption_bound(1);
        let report = explorer.explore(&racy_counter());
        let failure = report
            .failure
            .expect("the lost update needs exactly one preemption");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(
            failure.message.contains("lost update"),
            "got: {}",
            failure.message
        );
        assert!(
            report.schedules > 1,
            "schedule #0 is the clean straight-line run"
        );

        // The printed schedule replays to the same verdict.
        let schedule = schedule_of(&failure.trace);
        let replayed = explorer
            .replay(&racy_counter(), &schedule)
            .expect_err("the failing schedule must reproduce");
        assert_eq!(replayed.kind, FailureKind::Panic);
        assert!(replayed.message.contains("lost update"));
        assert_eq!(
            replayed.trace, failure.trace,
            "replay walks the identical trace"
        );
    }

    #[test]
    fn zero_preemptions_miss_the_lost_update() {
        let report = Explorer::new()
            .with_preemption_bound(0)
            .explore(&racy_counter());
        // With no preemptions each thread runs to completion in turn; the
        // increments serialize and the bug stays hidden — which is exactly
        // why the bound matters.
        report.assert_exhaustive();
        assert_eq!(
            report.schedules, 2,
            "one run-to-completion order per first choice"
        );
    }

    #[test]
    fn clean_scenario_explores_exhaustively() {
        let report = Explorer::new().explore(&safe_counter());
        report.assert_exhaustive();
        assert!(
            report.schedules >= 4,
            "both interleavings of two 2-yield threads"
        );
    }

    #[test]
    fn divergent_replay_is_reported_not_hung() {
        // Thread 7 never exists, so the first decision cannot follow it.
        let failure = Explorer::new()
            .replay(&safe_counter(), &[7, 0, 1])
            .expect_err("impossible schedule");
        assert_eq!(failure.kind, FailureKind::Divergence);
        assert!(
            failure.message.contains("wants thread 7"),
            "got: {}",
            failure.message
        );
    }

    #[test]
    fn next_prefix_respects_the_preemption_bound() {
        // One decision, threads {0, 1}, thread 0 (the default) chosen, with
        // the budget already spent: switching to 1 would preempt, so there is
        // no alternative within the bound.
        let decisions = vec![Decision {
            runnable: vec![0, 1],
            chosen: 0,
            default_choice: 0,
            prev: Some(0),
            preemptions_before: 2,
        }];
        assert_eq!(next_prefix(&decisions, 2), None);
        // With headroom the sibling is offered.
        assert_eq!(next_prefix(&decisions, 3), Some(vec![1]));
    }
}
