//! `reclaim-check`: systematic concurrency checking for the reclamation
//! protocols — the verification half of the QSense reproduction.
//!
//! Stress tests cross a dangerous window once in millions of operations and
//! crash, at best, somewhere far from the cause. This crate replaces luck
//! with enumeration and crashes with verdicts:
//!
//! * [`explorer`] — a CHESS-style bounded exhaustive schedule explorer. It
//!   serializes 2–3 model threads through the `lockfree_ds::interleave` pause
//!   points and enumerates every interleaving up to a preemption bound
//!   (default 2) by iterative DFS with prefix replay. Failures come back as
//!   the exact pause-point schedule, replayable with [`Explorer::replay`].
//! * [`suites`] — small deterministic scenarios for every structure
//!   (list/skiplist/bst unlink windows, queue/stack ABA windows) under every
//!   reclamation scheme: 5 × 8 cells the CI `check` job explores clean.
//! * [`fixture`] *(feature `check-oracle`)* — the pre-versioned-link skip
//!   list linking bug resurrected in a two-level model, proving the explorer
//!   finds the historical re-link UAF without a hand-written schedule.
//!
//! With the `check-oracle` feature the explored schedules additionally run
//! against `reclaim_core::oracle`'s shadow heap: every allocation, retire and
//! free is tracked, freed nodes are poisoned and quarantined, and every guard
//! checkpoint validates live-or-protected — a silent use-after-free becomes a
//! deterministic panic naming the node, the checkpoint and the schedule (see
//! the "Verification" section of the `reclaim_core` crate docs).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod explorer;
#[cfg(feature = "check-oracle")]
pub mod fixture;
pub mod suites;

pub use explorer::{
    schedule_of, Explorer, Failure, FailureKind, Report, Scenario, ScenarioRun, Step, SPAWN_POINT,
};
