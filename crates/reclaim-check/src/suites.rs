//! Protocol scenario suites: every structure's unlink/ABA window, under every
//! reclamation scheme, as small deterministic [`Scenario`]s for the explorer.
//!
//! Each scenario is two model threads crossing the structure's documented
//! danger window (insert's validate→CAS against a concurrent remove of a
//! neighbour; the queue/stack head windows against a concurrent producer),
//! plus a post-schedule membership check. Thread bodies end with a handle
//! flush so retirement → free actually happens *inside* the explored
//! schedules (scan/quiescence thresholds are set to 1 for the same reason) —
//! under `check-oracle` every traversal and guard checkpoint then validates
//! live-or-protected against the shadow heap.
//!
//! Determinism rules (prefix replay depends on them): the skip list only ever
//! uses `insert_with_height`, no scenario reads clocks or RNG, and rooster
//! threads are disabled (they would free at wall-clock times, which is
//! invisible to the pause-point schedule but noisy for leak accounting).

use crate::explorer::{Scenario, ScenarioRun};
use lockfree_ds::{
    HarrisMichaelList, LockFreeBst, LockFreeSkipList, MichaelScottQueue, TreiberStack,
    BST_HP_SLOTS, LIST_HP_SLOTS, QUEUE_HP_SLOTS, SKIPLIST_HP_SLOTS, STACK_HP_SLOTS,
};
use reclaim_core::{Smr, SmrConfig, SmrHandle};
use std::sync::Arc;

/// Eager-reclamation config: thresholds of 1 so every retire is immediately
/// eligible, no rooster threads (determinism), `max_threads` with headroom
/// for prefill + 2 model threads + the post-schedule check.
fn config(hp_slots: usize) -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(8)
        .with_hp_per_thread(hp_slots)
        .with_scan_threshold(1)
        .with_quiescence_threshold(1)
        .with_fallback_threshold(4)
        .with_rooster_threads(0)
}

fn list_scenario<S, F>(scheme: &'static str, make: F) -> Scenario
where
    S: Smr,
    F: Fn(SmrConfig) -> Arc<S> + Send + Sync + 'static,
{
    Scenario::new(format!("list/{scheme}"), move || {
        let set = Arc::new(HarrisMichaelList::<u64, S>::new(make(config(
            LIST_HP_SLOTS,
        ))));
        let mut h = set.register();
        assert!(set.insert(5, &mut h));
        assert!(set.insert(15, &mut h));
        drop(h);
        let inserter = Arc::clone(&set);
        let pred_remover = Arc::clone(&set);
        let succ_remover = Arc::clone(&set);
        ScenarioRun::new()
            // Crosses `list::insert::pre_link_cas` with pred 5 / succ 15...
            .thread(move || {
                let mut h = inserter.register();
                assert!(inserter.insert(10, &mut h), "10 is unclaimed");
                h.flush();
            })
            // ...while the predecessor is removed and retired
            // (`list::remove::pre_unlink_cas`)...
            .thread(move || {
                let mut h = pred_remover.register();
                assert!(pred_remover.remove(&5, &mut h), "5 was prefilled");
                h.flush();
            })
            // ...and the successor too (both sides of the link window).
            .thread(move || {
                let mut h = succ_remover.register();
                assert!(succ_remover.remove(&15, &mut h), "15 was prefilled");
                h.flush();
            })
            .check(move || {
                let mut h = set.register();
                assert!(set.contains(&10, &mut h), "insert linearized");
                assert!(!set.contains(&5, &mut h), "pred remove linearized");
                assert!(!set.contains(&15, &mut h), "succ remove linearized");
                assert_eq!(set.len(&mut h), 1);
            })
    })
}

fn skiplist_scenario<S, F>(scheme: &'static str, make: F) -> Scenario
where
    S: Smr,
    F: Fn(SmrConfig) -> Arc<S> + Send + Sync + 'static,
{
    Scenario::new(format!("skiplist/{scheme}"), move || {
        let set = Arc::new(LockFreeSkipList::<u64, S>::new(make(config(
            SKIPLIST_HP_SLOTS,
        ))));
        let mut h = set.register();
        // Fixed heights: random heights would break prefix-replay determinism.
        assert!(set.insert_with_height(5, 1, &mut h));
        assert!(set.insert_with_height(20, 1, &mut h));
        drop(h);
        let inserter = Arc::clone(&set);
        let pred_remover = Arc::clone(&set);
        let self_remover = Arc::clone(&set);
        ScenarioRun::new()
            // Height 2: crosses `skiplist::insert::upper::pre_link_cas`, the
            // window of the historical re-link UAF...
            .thread(move || {
                let mut h = inserter.register();
                assert!(
                    inserter.insert_with_height(10, 2, &mut h),
                    "10 is unclaimed"
                );
                h.flush();
            })
            // ...while the level-0 predecessor is removed and retired...
            .thread(move || {
                let mut h = pred_remover.register();
                assert!(pred_remover.remove(&5, &mut h), "5 was prefilled");
                h.flush();
            })
            // ...and the new node itself races removal mid-link (the exact
            // shape of the historical bug: remove completes inside insert's
            // upper-level window; success depends on the schedule).
            .thread(move || {
                let mut h = self_remover.register();
                let _ = self_remover.remove(&10, &mut h);
                h.flush();
            })
            .check(move || {
                let mut h = set.register();
                assert!(!set.contains(&5, &mut h), "remove linearized");
                assert!(set.contains(&20, &mut h), "bystander survives");
                // 10's final presence is schedule-dependent (did the remove
                // land after the insert?); the structure must only be
                // *consistent* about it.
                let present = set.contains(&10, &mut h);
                assert_eq!(set.len(&mut h), 1 + usize::from(present));
            })
    })
}

fn bst_scenario<S, F>(scheme: &'static str, make: F) -> Scenario
where
    S: Smr,
    F: Fn(SmrConfig) -> Arc<S> + Send + Sync + 'static,
{
    Scenario::new(format!("bst/{scheme}"), move || {
        let set = Arc::new(LockFreeBst::<u64, S>::new(make(config(BST_HP_SLOTS))));
        let mut h = set.register();
        assert!(set.insert(10, &mut h));
        assert!(set.insert(20, &mut h));
        assert!(set.insert(5, &mut h));
        drop(h);
        let inserter = Arc::clone(&set);
        let leaf_remover = Arc::clone(&set);
        let far_remover = Arc::clone(&set);
        ScenarioRun::new()
            // Crosses `bst::insert::pre_link_cas` on the edge toward 20...
            .thread(move || {
                let mut h = inserter.register();
                assert!(inserter.insert(15, &mut h), "15 is unclaimed");
                h.flush();
            })
            // ...while 20's leaf + parent internal node are sibling-spliced
            // out and retired...
            .thread(move || {
                let mut h = leaf_remover.register();
                assert!(leaf_remover.remove(&20, &mut h), "20 was prefilled");
                h.flush();
            })
            // ...and a second splice reshapes the other side of the route.
            .thread(move || {
                let mut h = far_remover.register();
                assert!(far_remover.remove(&5, &mut h), "5 was prefilled");
                h.flush();
            })
            .check(move || {
                let mut h = set.register();
                assert!(set.contains(&10, &mut h), "bystander survives");
                assert!(set.contains(&15, &mut h), "insert linearized");
                assert!(!set.contains(&20, &mut h), "leaf remove linearized");
                assert!(!set.contains(&5, &mut h), "far remove linearized");
                assert_eq!(set.len(&mut h), 2);
            })
    })
}

fn queue_scenario<S, F>(scheme: &'static str, make: F) -> Scenario
where
    S: Smr,
    F: Fn(SmrConfig) -> Arc<S> + Send + Sync + 'static,
{
    Scenario::new(format!("queue/{scheme}"), move || {
        let queue = Arc::new(MichaelScottQueue::<u64, S>::new(make(config(
            QUEUE_HP_SLOTS,
        ))));
        let mut h = queue.register();
        queue.enqueue(1, &mut h);
        queue.enqueue(2, &mut h);
        drop(h);
        let popped = Arc::new(std::sync::Mutex::new(Vec::new()));
        let producer = Arc::clone(&queue);
        let consumer_a = Arc::clone(&queue);
        let consumer_b = Arc::clone(&queue);
        let popped_a = Arc::clone(&popped);
        let popped_b = Arc::clone(&popped);
        ScenarioRun::new()
            // Crosses `queue::enqueue::pre_link_cas` at the tail...
            .thread(move || {
                let mut h = producer.register();
                producer.enqueue(3, &mut h);
                h.flush();
            })
            // ...while two consumers race the head swing + retire
            // (`queue::dequeue::pre_unlink_cas`); which consumer gets which
            // value is schedule-dependent, so bodies record, check judges.
            .thread(move || {
                let mut h = consumer_a.register();
                let v = consumer_a.dequeue(&mut h).expect("two prefilled elements");
                popped_a.lock().unwrap().push(v);
                h.flush();
            })
            .thread(move || {
                let mut h = consumer_b.register();
                let v = consumer_b.dequeue(&mut h).expect("two prefilled elements");
                popped_b.lock().unwrap().push(v);
                h.flush();
            })
            .check(move || {
                let mut h = queue.register();
                let mut seen = popped.lock().unwrap().clone();
                assert_eq!(queue.len(), 1);
                seen.push(queue.dequeue(&mut h).expect("one element left"));
                assert_eq!(queue.dequeue(&mut h), None);
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2, 3], "no value lost or duplicated");
                h.flush();
            })
    })
}

fn stack_scenario<S, F>(scheme: &'static str, make: F) -> Scenario
where
    S: Smr,
    F: Fn(SmrConfig) -> Arc<S> + Send + Sync + 'static,
{
    Scenario::new(format!("stack/{scheme}"), move || {
        let stack = Arc::new(TreiberStack::<u64, S>::new(make(config(STACK_HP_SLOTS))));
        let a = Arc::clone(&stack);
        let b = Arc::clone(&stack);
        ScenarioRun::new()
            // Both threads cross `stack::push::pre_link_cas` and
            // `stack::pop::pre_unlink_cas` — the classic Treiber ABA windows.
            .thread(move || {
                let mut h = a.register();
                a.push(1, &mut h);
                assert!(a.pop(&mut h).is_some(), "own push precedes the pop");
                h.flush();
            })
            .thread(move || {
                let mut h = b.register();
                b.push(2, &mut h);
                assert!(b.pop(&mut h).is_some(), "own push precedes the pop");
                h.flush();
            })
            .check(move || {
                let mut h = stack.register();
                assert_eq!(stack.pop(&mut h), None, "two pushes, two pops");
                assert_eq!(stack.len(), 0);
            })
    })
}

/// Builds one scenario per reclamation scheme by calling a generic
/// `fn(&'static str, impl Fn(SmrConfig) -> Arc<S>) -> Scenario` builder.
macro_rules! across_schemes {
    ($out:ident, $builder:ident) => {{
        $out.push($builder("none", reclaim_core::Leaky::new));
        $out.push($builder("qsbr", qsbr::Qsbr::new));
        $out.push($builder("ebr", ebr::Ebr::new));
        $out.push($builder("he", he::He::new));
        $out.push($builder("hp", hazard::Hazard::new));
        $out.push($builder("cadence", cadence::Cadence::new));
        $out.push($builder("qsense", qsense::QSense::new));
        $out.push($builder("rc", refcount::RefCount::new));
    }};
}

/// The scenarios for one structure (`"list"`, `"skiplist"`, `"bst"`,
/// `"queue"`, `"stack"`), one per scheme.
///
/// # Panics
///
/// Panics on an unknown structure name.
pub fn scenarios_for(structure: &str) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(8);
    match structure {
        "list" => across_schemes!(out, list_scenario),
        "skiplist" => across_schemes!(out, skiplist_scenario),
        "bst" => across_schemes!(out, bst_scenario),
        "queue" => across_schemes!(out, queue_scenario),
        "stack" => across_schemes!(out, stack_scenario),
        other => panic!("unknown structure `{other}`"),
    }
    out
}

/// Every suite scenario: 5 structures × 8 schemes.
pub fn all_scenarios() -> Vec<Scenario> {
    ["list", "skiplist", "bst", "queue", "stack"]
        .into_iter()
        .flat_map(scenarios_for)
        .collect()
}
