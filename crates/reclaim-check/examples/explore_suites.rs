//! Explores every suite cell (5 structures × 8 schemes) at the default
//! preemption bound and prints one line per cell — the CI `check` job runs
//! this for a human-readable coverage table in the job log.
//!
//! Exit code is non-zero if any cell fails or is truncated, so the example
//! doubles as a standalone gate:
//!
//! ```text
//! cargo run -p reclaim-check --features check-oracle --example explore_suites
//! ```

use reclaim_check::{suites, Explorer};

fn main() {
    let explorer = Explorer::new();
    let mut failed = false;
    println!(
        "{:<20} {:>9} {:>13} {:>9}  verdict",
        "scenario", "schedules", "max-decisions", "truncated"
    );
    for scenario in suites::all_scenarios() {
        let report = explorer.explore(&scenario);
        let verdict = match (&report.failure, report.truncated) {
            (Some(_), _) => "FAIL",
            (None, true) => "TRUNCATED",
            (None, false) => "clean",
        };
        println!(
            "{:<20} {:>9} {:>13} {:>9}  {verdict}",
            scenario.name(),
            report.schedules,
            report.max_decisions,
            report.truncated,
        );
        if let Some(failure) = &report.failure {
            eprintln!("{failure}");
            failed = true;
        }
        failed |= report.truncated;
    }
    if failed {
        std::process::exit(1);
    }
}
