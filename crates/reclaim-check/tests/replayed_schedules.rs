//! The four historically hand-forced schedules (PR 4's interleaving harness)
//! re-expressed as **explorer-found traces replayed from recorded schedules**:
//!
//! 1. skip-list upper-level re-link (a complete remove inside insert's
//!    validate→CAS window at `skiplist::insert::upper::pre_link_cas`);
//! 2. list successor removal inside `list::insert::pre_link_cas`;
//! 3. list predecessor removal inside the same window;
//! 4. BST leaf/sibling splice inside `bst::insert::pre_link_cas`.
//!
//! Instead of arming traps and choreographing threads by hand, each test asks
//! the explorer to *find* a schedule in which the remover's retire crosses the
//! inserter's open window, then replays the recorded schedule and lets the
//! scenario's invariant check (and, under `check-oracle`, the shadow heap)
//! judge the outcome. The fixed structures must survive every one.

use lockfree_ds::{
    HarrisMichaelList, LockFreeBst, LockFreeSkipList, BST_HP_SLOTS, LIST_HP_SLOTS,
    SKIPLIST_HP_SLOTS,
};
use reclaim_check::{schedule_of, Explorer, Scenario, ScenarioRun, Step, SPAWN_POINT};
use reclaim_core::{SmrConfig, SmrHandle};
use std::sync::Arc;

fn config(hp_slots: usize) -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(8)
        .with_hp_per_thread(hp_slots)
        .with_scan_threshold(1)
        .with_quiescence_threshold(1)
        .with_fallback_threshold(4)
        .with_rooster_threads(0)
}

/// True if the trace contains the forced window: thread 0 parks at
/// `window_point` and, before it is granted again, thread 1 is granted at
/// `inside_point` (the grant that executes the remove's unlink + retire).
///
/// Grants are fully serialized, so every thread-1 step strictly between two
/// thread-0 steps runs while thread 0 sits parked at the later step's point.
fn window_crossed(trace: &[Step], window_point: &str, inside_point: &str) -> bool {
    let mut last_t0: Option<usize> = None;
    for (i, step) in trace.iter().enumerate() {
        if step.thread == 0 {
            if step.point == window_point {
                if let Some(a) = last_t0 {
                    if trace[a + 1..i]
                        .iter()
                        .any(|s| s.thread == 1 && s.point == inside_point)
                    {
                        return true;
                    }
                }
            }
            last_t0 = Some(i);
        }
    }
    false
}

/// Finds a schedule matching `pred`, replays it from the recorded thread-id
/// sequence, and checks the replayed trace still crosses the window.
fn find_and_replay(scenario: &Scenario, window_point: &'static str, inside_point: &'static str) {
    let explorer = Explorer::new();
    let trace = explorer
        .explore_until(scenario, |t| window_crossed(t, window_point, inside_point))
        .unwrap_or_else(|failure| panic!("{failure}"))
        .unwrap_or_else(|| {
            panic!("no schedule crosses {inside_point} through the {window_point} window within the preemption bound")
        });

    // The recorded schedule replays deterministically and stays clean — on
    // the pre-versioning structures this exact schedule was the UAF.
    let replayed = explorer
        .replay(scenario, &schedule_of(&trace))
        .unwrap_or_else(|failure| panic!("replay of the recorded schedule failed: {failure}"));
    assert_eq!(replayed, trace, "prefix replay reproduces the found trace");
    assert!(
        window_crossed(&replayed, window_point, inside_point),
        "the replayed schedule still crosses the window"
    );
}

/// Thread 0 inserts a height-2 node; thread 1 runs a complete remove of the
/// same key. The dangerous schedule parks the inserter between its upper-level
/// validation and CAS while the remove marks, sweeps and retires the node.
fn skiplist_relink_scenario() -> Scenario {
    Scenario::new("replayed/skiplist-relink", || {
        let set = Arc::new(LockFreeSkipList::<u64, hazard::Hazard>::new(
            hazard::Hazard::new(config(SKIPLIST_HP_SLOTS)),
        ));
        let mut h = set.register();
        assert!(set.insert_with_height(5, 1, &mut h));
        drop(h);
        let inserter = Arc::clone(&set);
        let remover = Arc::clone(&set);
        ScenarioRun::new()
            .thread(move || {
                let mut h = inserter.register();
                assert!(
                    inserter.insert_with_height(10, 2, &mut h),
                    "10 is unclaimed"
                );
                h.flush();
            })
            .thread(move || {
                // May run before the level-0 link: then there is nothing to
                // remove yet and the schedule is not the one we search for.
                let mut h = remover.register();
                let _ = remover.remove(&10, &mut h);
                h.flush();
            })
            .check(move || {
                let mut h = set.register();
                assert!(set.contains(&5, &mut h), "bystander survives");
                // 10's membership depends on whether the remove caught the
                // insert; the set must merely be consistent about it.
                let present = set.contains(&10, &mut h);
                assert_eq!(set.len(&mut h), 1 + usize::from(present));
            })
    })
}

#[test]
fn skiplist_relink_schedule_is_found_and_replays_clean() {
    find_and_replay(
        &skiplist_relink_scenario(),
        "skiplist::insert::upper::pre_link_cas",
        "skiplist::remove::pre_retire",
    );
}

/// List scenario: thread 0 inserts 10 between 5 and 15; thread 1 removes
/// `victim` (5 = predecessor, 15 = successor of the pending link).
fn list_scenario(victim: u64) -> Scenario {
    Scenario::new(format!("replayed/list-remove-{victim}"), move || {
        let set = Arc::new(HarrisMichaelList::<u64, hazard::Hazard>::new(
            hazard::Hazard::new(config(LIST_HP_SLOTS)),
        ));
        let mut h = set.register();
        assert!(set.insert(5, &mut h));
        assert!(set.insert(15, &mut h));
        drop(h);
        let inserter = Arc::clone(&set);
        let remover = Arc::clone(&set);
        ScenarioRun::new()
            .thread(move || {
                let mut h = inserter.register();
                assert!(inserter.insert(10, &mut h), "10 is unclaimed");
                h.flush();
            })
            .thread(move || {
                let mut h = remover.register();
                assert!(remover.remove(&victim, &mut h), "victim was prefilled");
                h.flush();
            })
            .check(move || {
                let mut h = set.register();
                assert!(set.contains(&10, &mut h), "insert survives the removal");
                assert!(!set.contains(&victim, &mut h), "victim is gone");
                assert_eq!(set.len(&mut h), 2);
            })
    })
}

#[test]
fn list_succ_removal_schedule_is_found_and_replays_clean() {
    find_and_replay(
        &list_scenario(15),
        "list::insert::pre_link_cas",
        "list::remove::pre_unlink_cas",
    );
}

#[test]
fn list_pred_removal_schedule_is_found_and_replays_clean() {
    find_and_replay(
        &list_scenario(5),
        "list::insert::pre_link_cas",
        "list::remove::pre_unlink_cas",
    );
}

/// BST scenario: thread 0 inserts 15 (routing along the edge toward 20);
/// thread 1 sibling-splices 20's leaf and parent out. The remove has no pause
/// point of its own — the whole operation runs inside the grant released from
/// its spawn park, so the window predicate keys on `SPAWN_POINT`.
fn bst_splice_scenario() -> Scenario {
    Scenario::new("replayed/bst-splice", || {
        let set = Arc::new(LockFreeBst::<u64, hazard::Hazard>::new(
            hazard::Hazard::new(config(BST_HP_SLOTS)),
        ));
        let mut h = set.register();
        assert!(set.insert(10, &mut h));
        assert!(set.insert(20, &mut h));
        drop(h);
        let inserter = Arc::clone(&set);
        let remover = Arc::clone(&set);
        ScenarioRun::new()
            .thread(move || {
                let mut h = inserter.register();
                assert!(inserter.insert(15, &mut h), "15 is unclaimed");
                h.flush();
            })
            .thread(move || {
                let mut h = remover.register();
                assert!(remover.remove(&20, &mut h), "20 was prefilled");
                h.flush();
            })
            .check(move || {
                let mut h = set.register();
                assert!(set.contains(&10, &mut h), "bystander survives");
                assert!(set.contains(&15, &mut h), "insert survives the splice");
                assert!(!set.contains(&20, &mut h), "leaf is gone");
                assert_eq!(set.len(&mut h), 2);
            })
    })
}

#[test]
fn bst_leaf_splice_schedule_is_found_and_replays_clean() {
    find_and_replay(
        &bst_splice_scenario(),
        "bst::insert::pre_link_cas",
        SPAWN_POINT,
    );
}
