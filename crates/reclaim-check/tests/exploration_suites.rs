//! Acceptance: the *current* structures explore clean — every interleaving of
//! each protocol suite up to the default preemption bound, under all eight
//! schemes. With `--features check-oracle` the same schedules additionally
//! validate every traversal/guard checkpoint against the shadow heap, so
//! "clean" means "no silent use-after-free anywhere in the bounded space",
//! not just "assertions held".

use reclaim_check::{suites, Explorer};

fn explore_structure(structure: &str) {
    for scenario in suites::scenarios_for(structure) {
        let report = Explorer::new().explore(&scenario);
        report.assert_exhaustive();
        assert!(
            report.schedules > 1,
            "{}: a protocol scenario must have more than one schedule (got {})",
            scenario.name(),
            report.schedules
        );
    }
}

#[test]
fn list_explores_clean_under_every_scheme() {
    explore_structure("list");
}

#[test]
fn skiplist_explores_clean_under_every_scheme() {
    explore_structure("skiplist");
}

#[test]
fn bst_explores_clean_under_every_scheme() {
    explore_structure("bst");
}

#[test]
fn queue_explores_clean_under_every_scheme() {
    explore_structure("queue");
}

#[test]
fn stack_explores_clean_under_every_scheme() {
    explore_structure("stack");
}
