//! Acceptance for the shadow-heap oracle half of the harness (all tests
//! require `--features check-oracle`):
//!
//! * the explorer finds the resurrected pre-versioning skip-list re-link UAF
//!   **without a hand-written schedule**, and the failing trace replays;
//! * an intentionally-seeded violation produces a panic naming the node and
//!   a replayable schedule.

#![cfg(feature = "check-oracle")]

use reclaim_check::{fixture, schedule_of, Explorer, FailureKind, Scenario, ScenarioRun};
use reclaim_core::{drop_fn_for, Smr, SmrConfig, SmrHandle, NO_BIRTH_ERA};

#[test]
fn explorer_finds_the_pre_versioning_relink_uaf() {
    let scenario = fixture::relink_scenario();
    let report = Explorer::new().explore(&scenario);
    let failure = report.failure.expect(
        "the unversioned upper-level CAS re-links a retired node within preemption bound 2",
    );
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("use after free"),
        "expected an oracle UAF verdict, got: {}",
        failure.message
    );
    assert!(
        failure.message.contains("relink_fixture::"),
        "the verdict names the checkpoint that tripped: {}",
        failure.message
    );
    assert!(
        report.schedules > 1,
        "schedule #0 (run-to-completion) is clean; the bug needs preemptions"
    );

    // The printed schedule is a complete reproduction recipe.
    let replayed = Explorer::new()
        .replay(&scenario, &schedule_of(&failure.trace))
        .expect_err("replaying the failing schedule reproduces the verdict");
    assert_eq!(replayed.kind, FailureKind::Panic);
    assert!(
        replayed.message.contains("use after free"),
        "replay reproduces the UAF verdict, got: {}",
        replayed.message
    );
    assert_eq!(
        replayed.trace, failure.trace,
        "replay walks the identical pause-point trace"
    );
}

/// A scenario with a *seeded* protocol violation: the thread retires a node,
/// forces reclamation, and then touches the node again. The oracle must
/// convict it on the schedule where the flush precedes the touch, naming the
/// node's address and state.
fn seeded_uaf_scenario() -> Scenario {
    Scenario::new("seeded-uaf/hp", || {
        ScenarioRun::new().thread(|| {
            let config = SmrConfig::default()
                .with_max_threads(2)
                .with_hp_per_thread(1)
                .with_scan_threshold(1)
                .with_rooster_threads(0);
            let scheme = hazard::Hazard::new(config);
            let mut handle = scheme.register();
            let node = Box::into_raw(Box::new(0u64));
            reclaim_core::oracle::register(node.cast(), std::mem::size_of::<u64>());
            // SAFETY: the node is unreachable (never published) and retired
            // exactly once — the *seeded* violation is the checkpoint below,
            // not the retire.
            unsafe {
                handle.retire_sized(
                    node.cast(),
                    drop_fn_for::<u64>(),
                    NO_BIRTH_ERA,
                    std::mem::size_of::<u64>(),
                )
            };
            handle.flush();
            // Seeded bug: the node is gone; any checkpointed access must panic.
            reclaim_core::oracle::check_protected(node.cast(), "seeded::use_after_flush");
        })
    })
}

#[test]
fn seeded_violation_names_the_node_and_replays() {
    let scenario = seeded_uaf_scenario();
    let report = Explorer::new().explore(&scenario);
    let failure = report
        .failure
        .expect("the seeded UAF fails on every schedule");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("use after free"),
        "verdict kind, got: {}",
        failure.message
    );
    assert!(
        failure.message.contains("node 0x"),
        "the verdict names the node address: {}",
        failure.message
    );
    assert!(
        failure.message.contains("seeded::use_after_flush"),
        "the verdict names the checkpoint: {}",
        failure.message
    );
    assert!(
        failure.message.contains("seeded-uaf/hp schedule #"),
        "the verdict carries the schedule context: {}",
        failure.message
    );
    assert!(
        !failure.trace.is_empty(),
        "the failure is a replayable schedule"
    );

    let replayed = Explorer::new()
        .replay(&scenario, &schedule_of(&failure.trace))
        .expect_err("replay reproduces the seeded verdict");
    assert!(replayed.message.contains("use after free"));
}
