//! The QSBR scheme object and per-thread handle.

use crate::epoch::{
    limbo_index, CursorCheck, EpochCursor, EpochRecord, GlobalEpoch, EPOCH_BUCKETS,
};
use reclaim_core::retired::DropFn;
use reclaim_core::stats::{StatStripe, StatsSnapshot};
use reclaim_core::{
    BudgetGovernor, BudgetVerdict, CachePadded, CapacityExhausted, Era, HandleCache,
    HandleTelemetry, ParkedChain, Registry, RetiredPtr, SegBag, SegPool, SlotId, Smr, SmrConfig,
    SmrHandle, Telemetry, NO_BIRTH_ERA,
};
use std::sync::Arc;
use std::time::Instant;

/// Quiescent-state-based reclamation (the paper's **QSBR** baseline and the fast path
/// of QSense).
pub struct Qsbr {
    config: SmrConfig,
    global_epoch: GlobalEpoch,
    /// Cooperative epoch-confirmation state: quiescent states contribute bounded
    /// slices of the "has everyone adopted the epoch?" check instead of each
    /// sweeping the whole registry (see [`EpochCursor`]).
    cursor: EpochCursor,
    registry: Registry<EpochRecord>,
    /// Counter stripe for events with no owning slot (parked-bag frees at drop).
    scheme_stats: CachePadded<StatStripe>,
    /// Limbo leftovers of threads that deregistered before their nodes became
    /// reclaimable: the next surviving handle to flush adopts the chain into its
    /// current limbo bucket, so the nodes are freed after an ordinary grace
    /// period instead of waiting for scheme drop (see [`ParkedChain`]).
    parked: ParkedChain,
    /// Segment pools of exited threads, adopted by the next registrant so
    /// handle churn is allocation-free after the first wave.
    handle_cache: HandleCache<SegPool>,
    /// Limbo-byte accounting — **tracking only**. QSBR has no escalation
    /// ladder to climb: declaring a quiescent state mid-operation would be
    /// unsound, and no hazard-gated scan exists. Under a stalled reader the
    /// estimate exceeds any budget and the verdict records exactly that —
    /// QSBR's non-robustness is the measurement, not a bug.
    governor: BudgetGovernor,
    /// Telemetry histograms (op latency, grace-drain duration, retire→free delay).
    telemetry: Arc<Telemetry>,
}

impl Qsbr {
    /// Creates a QSBR scheme with the given configuration.
    pub fn new(config: SmrConfig) -> Arc<Self> {
        let registry = Registry::new(config.max_threads, |_| EpochRecord::new());
        let handle_cache = HandleCache::with_capacity(config.max_threads);
        let governor = BudgetGovernor::new(config.limbo_budget, config.clock.clone());
        let telemetry = Arc::new(Telemetry::from_config(&config));
        Arc::new(Self {
            config,
            global_epoch: GlobalEpoch::new(),
            cursor: EpochCursor::new(),
            registry,
            scheme_stats: CachePadded::new(StatStripe::new()),
            parked: ParkedChain::new(),
            handle_cache,
            governor,
            telemetry,
        })
    }

    /// Creates a QSBR scheme with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SmrConfig::default())
    }

    /// The configuration this scheme was created with.
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }

    /// The current global epoch (exposed for tests and diagnostics).
    pub fn current_epoch(&self) -> u64 {
        self.global_epoch.load()
    }

    /// Contributes a bounded slice of the "has every registered thread adopted
    /// `epoch`?" check and advances the global epoch once the cooperative pass
    /// completes. Replaces the old full-registry sweep each quiescent state paid.
    fn poll_epoch_confirmation(&self, epoch: u64) {
        let confirmed = self.cursor.poll(epoch, self.registry.capacity(), |i| {
            // Shard-granular vacancy first: a wholly-vacant shard is classified
            // on one bitmap load and the pass jumps straight past it, so
            // confirmation cost tracks active shards, not capacity.
            let next = self.registry.skip_vacant_shards(i);
            if next > i {
                CursorCheck::VacantRun(next)
            } else if !self.registry.is_claimed(i) {
                CursorCheck::Vacant
            } else if self.registry.get(i).load() == epoch {
                CursorCheck::Confirmed
            } else {
                CursorCheck::Lagging
            }
        });
        if confirmed {
            self.global_epoch.try_advance(epoch);
        }
    }
}

impl Smr for Qsbr {
    type Handle = QsbrHandle;

    fn try_register(self: &Arc<Self>) -> Result<QsbrHandle, CapacityExhausted> {
        let slot = self.registry.try_acquire().map_err(|e| CapacityExhausted {
            scheme: "qsbr",
            capacity: e.capacity,
        })?;
        // Adopt the current global epoch immediately: a freshly registered thread
        // holds no references, so adopting (rather than lagging at a stale value) is
        // always safe and avoids spuriously blocking epoch advancement.
        let epoch = self.global_epoch.load();
        self.registry.get_mine(slot).store(epoch);
        Ok(QsbrHandle {
            budget_stripe: BudgetGovernor::stripe_for(slot.shard()),
            budget_reported: 0,
            tele: HandleTelemetry::attach(&self.telemetry),
            scheme: Arc::clone(self),
            slot,
            limbo: std::array::from_fn(|_| SegBag::new()),
            // Adopt a previous tenant's segment pool when available
            // (thread-pool churn; see `HandleCache`).
            pool: self.handle_cache.adopt().unwrap_or_default(),
            local_epoch: epoch,
            ops_since_quiescence: 0,
        })
    }

    fn name(&self) -> &'static str {
        "qsbr"
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        self.registry.merge_stats(&mut snap);
        self.scheme_stats.merge_into(&mut snap);
        snap.peak_limbo_bytes = self.governor.peak_bytes();
        snap
    }

    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Some(self.governor.verdict())
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.telemetry)
    }
}

impl Drop for Qsbr {
    fn drop(&mut self) {
        // All handles are gone, so nobody holds references to any parked node.
        // SAFETY: parked nodes were retired by departed handles and survive until a scan proves them unprotected.
        let (freed, freed_bytes) = unsafe { self.parked.drain_all() };
        self.scheme_stats.add_freed(freed as u64);
        self.scheme_stats.add_freed_bytes(freed_bytes as u64);
        self.governor.note_parked(-(freed_bytes as i64));
    }
}

/// Per-thread handle for [`Qsbr`].
pub struct QsbrHandle {
    scheme: Arc<Qsbr>,
    slot: SlotId,
    /// One limbo list per logical epoch, as in the paper (§3.1).
    limbo: [SegBag; EPOCH_BUCKETS],
    /// Recycled segments shared by all three limbo buckets: a bucket freed on
    /// epoch adoption feeds the segments the next bucket grows into, so the
    /// retire path stays allocation-free even when one bucket grows past
    /// another's high-water mark.
    pool: SegPool,
    /// Cached copy of this thread's published epoch.
    local_epoch: u64,
    ops_since_quiescence: usize,
    /// This handle's stripe in the scheme's [`BudgetGovernor`].
    budget_stripe: usize,
    /// Local-bytes figure last pushed into the governor (delta-report cursor).
    budget_reported: usize,
    /// Telemetry recording cursor (stripe + op-sampling counter).
    tele: HandleTelemetry,
}

impl QsbrHandle {
    /// Declares a quiescent state *right now*, regardless of the batching threshold.
    ///
    /// This is the paper's `quiescent_state()`:
    /// * if the local epoch lags the global epoch, adopt it and free the limbo list
    ///   that the new epoch maps to (Lemma 3: a full grace period has elapsed since
    ///   those nodes were retired);
    /// * otherwise, if every registered thread has adopted the global epoch, advance
    ///   it.
    pub fn quiesce(&mut self) {
        self.stats().add_quiescent_state();
        let global = self.scheme.global_epoch.load();
        if self.local_epoch != global {
            self.adopt(global);
        } else {
            self.scheme.poll_epoch_confirmation(global);
        }
    }

    fn stats(&self) -> &StatStripe {
        self.scheme.registry.stats(self.slot)
    }

    fn adopt(&mut self, global: u64) {
        self.scheme.registry.get_mine(self.slot).store(global);
        self.local_epoch = global;
        let bucket = limbo_index(global);
        if self.limbo[bucket].is_empty() {
            // Nothing matured in this bucket: the grace drain passes it over.
            self.stats().add_scan_skip();
        } else {
            // Grace-period drains free the whole bucket without per-node tests.
            self.stats().add_scan_wholesale();
        }
        let bytes_before = self.limbo[bucket].bytes();
        // Clone the Arc so the observer's borrow is independent of `self` (the
        // drain below needs `&mut self.limbo` and `&mut self.pool`). An empty
        // bucket frees nothing — skip the observer's clock reads for it.
        let tele = Arc::clone(&self.scheme.telemetry);
        let observer = if self.limbo[bucket].is_empty() {
            None
        } else {
            tele.scan_observer(self.tele.stripe())
        };
        // SAFETY: (Lemma 3 of the paper) every node in this bucket was retired three
        // local-epoch transitions ago; the global epoch has advanced at least twice
        // since, and each advance requires every registered thread to have passed
        // through a quiescent state, i.e. a grace period has elapsed. No thread can
        // therefore still hold a hazardous reference to these nodes.
        let freed = unsafe {
            match observer {
                Some(obs) => {
                    let freed = self.limbo[bucket].reclaim_if(&mut self.pool, |node| {
                        obs.note_free(node);
                        true
                    });
                    obs.finish();
                    freed
                }
                None => self.limbo[bucket].reclaim_all(&mut self.pool),
            }
        };
        self.stats().add_freed(freed as u64);
        self.stats().add_freed_bytes(bytes_before as u64);
        self.scheme.governor.report(
            self.budget_stripe,
            self.limbo_bytes(),
            &mut self.budget_reported,
        );
    }

    /// Total number of retired-but-unreclaimed nodes across the three limbo lists.
    pub fn limbo_size(&self) -> usize {
        self.limbo.iter().map(SegBag::len).sum()
    }

    /// Total stamped bytes across the three limbo lists.
    pub fn limbo_bytes(&self) -> usize {
        self.limbo.iter().map(SegBag::bytes).sum()
    }
}

impl SmrHandle for QsbrHandle {
    fn begin_op(&mut self) {
        // The paper batches quiescent states: only every Q-th operation boundary
        // actually declares one (§3.1, "quiescence threshold").
        self.ops_since_quiescence += 1;
        if self.ops_since_quiescence >= self.scheme.config.quiescence_threshold {
            self.ops_since_quiescence = 0;
            self.quiesce();
        }
    }

    fn end_op(&mut self) {}

    fn protect(&mut self, _index: usize, _ptr: *mut u8) {
        // QSBR needs no per-node protection: safety comes from grace periods alone.
    }

    fn clear_protections(&mut self) {}

    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.retire_sized(ptr, drop_fn, NO_BIRTH_ERA, 0) }
    }

    unsafe fn retire_sized(
        &mut self,
        ptr: *mut u8,
        drop_fn: DropFn,
        _birth_era: Era,
        size_bytes: usize,
    ) {
        self.stats().add_retired(1);
        self.stats().add_retired_bytes(size_bytes as u64);
        if size_bytes == 0 {
            self.stats().add_size_unknown_retire();
        }
        let now = self.scheme.config.clock.now();
        let bucket = limbo_index(self.local_epoch);
        // SAFETY: forwarded from the caller's contract.
        let mut node =
            unsafe { RetiredPtr::with_birth_sized(ptr, drop_fn, now, NO_BIRTH_ERA, size_bytes) };
        node.set_retire_tick(self.tele.retire_tick());
        self.limbo[bucket].push(&mut self.pool, node);
        // Track bytes so the estimate (and the over-budget stopwatch) stays
        // honest, but never escalate: a quiescent state cannot be declared
        // mid-operation, so the only lever QSBR has is waiting — which is
        // precisely the non-robustness the verdict exists to record.
        self.scheme.governor.observe(
            self.budget_stripe,
            self.limbo_bytes(),
            &mut self.budget_reported,
        );
    }

    fn flush(&mut self) {
        // Adopt limbo leftovers of exited threads into the current bucket: they
        // were retired (unlinked) before the adoption, so freeing them after this
        // bucket's next full grace period is safe. O(1) splice, no allocation.
        // The adopted bytes move from the governor's parked counter to this
        // handle's stripe (the post-quiesce report picks them up).
        let bucket = limbo_index(self.local_epoch);
        let before = self.limbo[bucket].bytes();
        self.scheme.parked.adopt_into(&mut self.limbo[bucket]);
        let adopted = self.limbo[bucket].bytes() - before;
        self.scheme.governor.note_parked(-(adopted as i64));
        // Cycle through enough quiescent states to let the epoch advance and every
        // limbo bucket be visited, assuming no other thread is blocking advancement.
        // (If one is, this frees whatever a partial cycle allows — same as QSBR's
        // normal behaviour under delays.)
        for _ in 0..2 * EPOCH_BUCKETS {
            self.quiesce();
        }
        self.scheme.governor.report(
            self.budget_stripe,
            self.limbo_bytes(),
            &mut self.budget_reported,
        );
    }

    fn local_in_limbo(&self) -> usize {
        self.limbo_size()
    }

    fn local_limbo_bytes(&self) -> usize {
        self.limbo_bytes()
    }

    fn telemetry_op_begin(&mut self) -> Option<Instant> {
        self.tele.op_begin()
    }

    fn telemetry_op_end(&mut self, started: Instant) {
        self.tele.op_end(started);
    }
}

impl Drop for QsbrHandle {
    fn drop(&mut self) {
        // Try to reclaim what a final set of quiescent states allows, then park the
        // rest on the scheme with O(1) splices (adopted by the next flushing handle
        // or freed at scheme drop, when no thread can touch them).
        self.flush();
        let mut leftovers = SegBag::new();
        for bag in &mut self.limbo {
            leftovers.splice(bag);
        }
        // The governor's parked counter takes over the byte accounting so a
        // leaked handle's limbo never goes invisible.
        let parked_bytes = leftovers.bytes();
        self.scheme
            .governor
            .note_handle_exit(self.budget_stripe, &mut self.budget_reported);
        self.scheme.governor.note_parked(parked_bytes as i64);
        self.scheme.parked.park(&mut leftovers);
        self.scheme.registry.release(self.slot);
        // Recycle the segment pool to the next registrant.
        self.scheme
            .handle_cache
            .park(std::mem::take(&mut self.pool));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::retire_box;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn epoch_advances_when_all_threads_quiesce() {
        let scheme = Qsbr::new(SmrConfig::default().with_max_threads(2));
        let mut a = scheme.register();
        let mut b = scheme.register();
        let start = scheme.current_epoch();
        // Both threads quiesce repeatedly; the epoch must move forward.
        for _ in 0..4 {
            a.quiesce();
            b.quiesce();
        }
        assert!(scheme.current_epoch() > start);
    }

    #[test]
    fn epoch_does_not_advance_past_a_lagging_thread() {
        let scheme = Qsbr::new(SmrConfig::default().with_max_threads(2));
        let mut active = scheme.register();
        let _lagging = scheme.register(); // registered at the current epoch, never quiesces
        let start = scheme.current_epoch();
        for _ in 0..10 {
            active.quiesce();
        }
        // The active thread can advance the epoch at most once on its own: the first
        // advance needs everyone at `start` (true right after registration), but the
        // next needs everyone at `start + 1`, which the lagging thread never adopts.
        assert!(scheme.current_epoch() <= start + 1);
    }

    #[test]
    fn retired_nodes_land_in_the_current_epoch_bucket() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Qsbr::new(SmrConfig::default().with_quiescence_threshold(1));
        let mut handle = scheme.register();
        let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box(&mut handle, ptr) };
        assert_eq!(handle.limbo_size(), 1);
        assert_eq!(handle.limbo[limbo_index(handle.local_epoch)].len(), 1);
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
