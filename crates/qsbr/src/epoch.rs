//! Epoch machinery: the global epoch counter and per-thread epoch records.
//!
//! Epochs are monotonically increasing `u64` values; the paper's "three logical
//! epochs" correspond to the epoch value modulo [`EPOCH_BUCKETS`] (= 3), which is also
//! the index of the limbo list a retired node goes into.

use reclaim_core::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of limbo lists per thread (and of logical epochs), as in the paper.
pub const EPOCH_BUCKETS: usize = 3;

/// Maps an epoch value to its limbo-list index.
#[inline]
pub fn limbo_index(epoch: u64) -> usize {
    (epoch % EPOCH_BUCKETS as u64) as usize
}

/// The shared global epoch (`e_G` in the paper).
#[derive(Debug, Default)]
pub struct GlobalEpoch {
    value: CachePadded<AtomicU64>,
}

impl GlobalEpoch {
    /// Creates a global epoch starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current global epoch.
    #[inline]
    pub fn load(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }

    /// Attempts to advance the global epoch from `expected` to `expected + 1`.
    /// Failure means another thread advanced it concurrently, which is fine — the
    /// caller's goal (make the epoch move) has been accomplished either way.
    pub fn try_advance(&self, expected: u64) -> bool {
        self.value
            .compare_exchange(expected, expected + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }
}

/// Per-thread epoch record (`e_p` in the paper), scanned by other threads when they
/// try to advance the global epoch.
#[derive(Debug, Default)]
pub struct EpochRecord {
    local: AtomicU64,
}

impl EpochRecord {
    /// Creates a record at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads this thread's local epoch.
    #[inline]
    pub fn load(&self) -> u64 {
        self.local.load(Ordering::SeqCst)
    }

    /// Adopts a (new) local epoch. `SeqCst` keeps the adoption totally ordered with
    /// the global-epoch reads other threads perform in their advance checks; the cost
    /// is irrelevant because this runs once per quiescent state, i.e. once per `Q`
    /// operations.
    #[inline]
    pub fn store(&self, epoch: u64) {
        self.local.store(epoch, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limbo_index_cycles_mod_3() {
        assert_eq!(limbo_index(0), 0);
        assert_eq!(limbo_index(1), 1);
        assert_eq!(limbo_index(2), 2);
        assert_eq!(limbo_index(3), 0);
        assert_eq!(limbo_index(u64::MAX), (u64::MAX % 3) as usize);
    }

    #[test]
    fn global_epoch_advances_only_from_expected_value() {
        let g = GlobalEpoch::new();
        assert_eq!(g.load(), 0);
        assert!(g.try_advance(0));
        assert_eq!(g.load(), 1);
        assert!(!g.try_advance(0), "stale expected value must fail");
        assert!(g.try_advance(1));
        assert_eq!(g.load(), 2);
    }

    #[test]
    fn epoch_record_round_trips() {
        let r = EpochRecord::new();
        assert_eq!(r.load(), 0);
        r.store(7);
        assert_eq!(r.load(), 7);
    }

    #[test]
    fn concurrent_advance_moves_epoch_exactly_once_per_value() {
        use std::sync::Arc;
        use std::thread;
        let g = Arc::new(GlobalEpoch::new());
        let winners: usize = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                thread::spawn(move || usize::from(g.try_advance(0)))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(winners, 1, "exactly one advance from 0 to 1 may succeed");
        assert_eq!(g.load(), 1);
    }
}
