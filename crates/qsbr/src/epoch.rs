//! Epoch machinery: the global epoch counter, per-thread epoch records, and the
//! amortized-O(1) epoch-confirmation cursor.
//!
//! Epochs are monotonically increasing `u64` values; the paper's "three logical
//! epochs" correspond to the epoch value modulo [`EPOCH_BUCKETS`] (= 3), which is also
//! the index of the limbo list a retired node goes into.
//!
//! ## Memory ordering
//!
//! All epoch traffic uses acquire/release, not `SeqCst`. The safety argument (the
//! paper's Lemma 3) only needs a happens-before chain, which acquire/release
//! provides:
//!
//! 1. a thread adopting epoch `e` **release-stores** its [`EpochRecord`] at a
//!    quiescent point, so everything it did before (all its accesses to shared
//!    nodes) is ordered before the store;
//! 2. the advancer **acquire-loads** every record while confirming `e`, so every
//!    thread's pre-adoption accesses happen-before the advance;
//! 3. the advance itself is an **AcqRel** compare-exchange on [`GlobalEpoch`], and
//!    any thread that later acquire-loads the advanced value inherits the whole
//!    chain — by the time it observes epoch `e + 2` and frees a limbo bucket, every
//!    registered thread's accesses from epoch `e` happen-before the frees.
//!
//! No decision here ever needs a *total* order across unrelated variables, which is
//! the only thing `SeqCst` would add.

use reclaim_core::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of limbo lists per thread (and of logical epochs), as in the paper.
pub const EPOCH_BUCKETS: usize = 3;

/// Maps an epoch value to its limbo-list index.
#[inline]
pub fn limbo_index(epoch: u64) -> usize {
    (epoch % EPOCH_BUCKETS as u64) as usize
}

/// The shared global epoch (`e_G` in the paper).
#[derive(Debug, Default)]
pub struct GlobalEpoch {
    value: CachePadded<AtomicU64>,
}

impl GlobalEpoch {
    /// Creates a global epoch starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current global epoch. The acquire pairs with the release half of
    /// [`try_advance`](Self::try_advance): observing epoch `e` implies observing
    /// every record confirmation that justified advancing to `e` (see module docs).
    #[inline]
    pub fn load(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Attempts to advance the global epoch from `expected` to `expected + 1`.
    /// Failure means another thread advanced it concurrently, which is fine — the
    /// caller's goal (make the epoch move) has been accomplished either way.
    pub fn try_advance(&self, expected: u64) -> bool {
        self.value
            .compare_exchange(expected, expected + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// Per-thread epoch record (`e_p` in the paper), scanned by other threads when they
/// try to advance the global epoch.
#[derive(Debug, Default)]
pub struct EpochRecord {
    local: AtomicU64,
}

impl EpochRecord {
    /// Creates a record at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads this thread's local epoch (acquire: pairs with the owner's release
    /// store, making the owner's pre-quiescence accesses visible to the advancer).
    #[inline]
    pub fn load(&self) -> u64 {
        self.local.load(Ordering::Acquire)
    }

    /// Adopts a (new) local epoch. Release suffices: the store is the owner's
    /// quiescent point, and release orders every preceding access to shared nodes
    /// before it — exactly the edge the grace-period argument needs (module docs).
    /// Nothing in the protocol compares this store against *other* threads'
    /// unrelated stores, so no total (`SeqCst`) order is required.
    #[inline]
    pub fn store(&self, epoch: u64) {
        self.local.store(epoch, Ordering::Release);
    }
}

/// Outcome of checking one registry slot during an epoch-confirmation pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CursorCheck {
    /// The slot is unclaimed — it cannot block the epoch and costs nothing to skip.
    Vacant,
    /// The slot — and every slot up to (but excluding) the carried index — is
    /// unclaimed: the pass jumps straight there. Produced by shard-granular
    /// vacancy tests ([`Registry::skip_vacant_shards`]
    /// (reclaim_core::registry::Registry::skip_vacant_shards)), which classify
    /// a whole vacant shard on one bitmap load, so a confirmation pass over a
    /// mostly-vacant registry costs O(active shards), not O(capacity).
    /// Soundness matches `Vacant`: a slot vacant at the check can only be
    /// claimed by a thread adopting the *current* global epoch (see the
    /// confirmed-once-stays-confirmed argument on [`EpochCursor`]).
    VacantRun(usize),
    /// The slot's thread has confirmed the epoch (adopted it, or is excluded from
    /// grace periods, e.g. evicted in QSense's extension).
    Confirmed,
    /// The slot's thread has not yet adopted the epoch; the pass cannot complete.
    Lagging,
}

/// How many *claimed* slots one [`EpochCursor::poll`] call may confirm before
/// yielding. Bounds the per-quiescent-state cost to O(1) amortized: a full
/// confirmation pass over `N` registered threads is spread over `N / 8` calls.
const CURSOR_BATCH: usize = 8;

/// Bits of [`EpochCursor`] state reserved for the pass position; the rest tag the
/// epoch the pass belongs to.
const CURSOR_POS_BITS: u32 = 16;
const CURSOR_POS_MASK: u64 = (1 << CURSOR_POS_BITS) - 1;

/// Shared cursor turning the O(N) "has every thread adopted epoch `e`?" sweep into
/// amortized-O(1) work per quiescent state.
///
/// The old protocol re-scanned the whole registry on *every* quiescent state whose
/// local epoch was current — per-Q-ops work proportional to `N`, on the fast path.
/// The cursor instead maintains one packed word `(epoch_tag << 16) | position`:
/// each poll confirms at most [`CURSOR_BATCH`] claimed slots starting at
/// `position`, publishes its progress with a CAS, and reports completion once the
/// position reaches the capacity. Threads cooperate on one pass instead of each
/// redoing it.
///
/// **Why confirmed-once stays confirmed** (the invariant that makes a monotonic
/// cursor sound): a slot is confirmed for epoch `e` only if it is vacant, excluded,
/// or its record is *at* `e`. A record at `e` can only change by adopting a newer
/// global epoch — but the global epoch cannot move past `e` before this very pass
/// completes, so within a pass a confirmed record stays at `e`. A vacant slot that
/// gets claimed mid-pass adopts the *current* global epoch at registration, i.e.
/// `e` itself (or the pass is already stale and its final CAS/advance fails).
///
/// The epoch tag keeps only the low 48 bits of the epoch; a stale CAS could be
/// confused only after 2^48 epoch advances within one racing poll, which is
/// unreachable.
#[derive(Debug, Default)]
pub struct EpochCursor {
    state: CachePadded<AtomicU64>,
}

impl EpochCursor {
    /// Creates a cursor positioned at the start of epoch 0's pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// Contributes a bounded amount of confirmation work for `global`, checking
    /// slots via `check`. Returns `true` once every slot in `0..capacity` has been
    /// confirmed for `global` (the caller should then try to advance the epoch).
    ///
    /// `check(i)` must classify slot `i` *at this moment*; see the type-level docs
    /// for why earlier confirmations remain valid.
    pub fn poll(
        &self,
        global: u64,
        capacity: usize,
        mut check: impl FnMut(usize) -> CursorCheck,
    ) -> bool {
        if capacity > CURSOR_POS_MASK as usize {
            // Degenerate fallback for registries larger than the position field
            // (> 65535 slots): one full sweep, as the pre-cursor protocol did.
            return (0..capacity).all(|i| check(i) != CursorCheck::Lagging);
        }
        let tag = global << CURSOR_POS_BITS;
        let mut state = self.state.load(Ordering::Acquire);
        if state & !CURSOR_POS_MASK != tag {
            if (state >> CURSOR_POS_BITS) > (tag >> CURSOR_POS_BITS) {
                // The stored pass belongs to a *newer* epoch than the caller's
                // (the caller read `global` before a concurrent advance). Never
                // reset a live pass back to a dead epoch — that would wipe its
                // progress for a pass whose advance could no longer succeed.
                return false;
            }
            // The stored pass belongs to an older epoch: restart it for `global`.
            match self
                .state
                .compare_exchange(state, tag, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => state = tag,
                Err(actual) => {
                    if actual & !CURSOR_POS_MASK != tag {
                        // Someone is already working on a different pass; let the
                        // threads that observed that epoch drive it.
                        return false;
                    }
                    state = actual;
                }
            }
        }
        let start = (state & CURSOR_POS_MASK) as usize;
        let mut pos = start;
        let mut budget = CURSOR_BATCH;
        while pos < capacity {
            match check(pos) {
                CursorCheck::Vacant => pos += 1,
                // Clamp below by pos + 1 so a misbehaving check cannot stall
                // the pass, and above by capacity so it terminates.
                CursorCheck::VacantRun(next) => pos = next.clamp(pos + 1, capacity),
                CursorCheck::Confirmed => {
                    pos += 1;
                    budget -= 1;
                    if budget == 0 {
                        break;
                    }
                }
                CursorCheck::Lagging => break,
            }
        }
        if pos == capacity {
            return true;
        }
        if pos > start {
            // Publish progress so the next poll resumes here. A failure means either
            // a concurrent poll already published further progress or the pass was
            // restarted for a newer epoch; both make our update obsolete.
            let _ = self.state.compare_exchange(
                state,
                tag | pos as u64,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limbo_index_cycles_mod_3() {
        assert_eq!(limbo_index(0), 0);
        assert_eq!(limbo_index(1), 1);
        assert_eq!(limbo_index(2), 2);
        assert_eq!(limbo_index(3), 0);
        assert_eq!(limbo_index(u64::MAX), (u64::MAX % 3) as usize);
    }

    #[test]
    fn global_epoch_advances_only_from_expected_value() {
        let g = GlobalEpoch::new();
        assert_eq!(g.load(), 0);
        assert!(g.try_advance(0));
        assert_eq!(g.load(), 1);
        assert!(!g.try_advance(0), "stale expected value must fail");
        assert!(g.try_advance(1));
        assert_eq!(g.load(), 2);
    }

    #[test]
    fn epoch_record_round_trips() {
        let r = EpochRecord::new();
        assert_eq!(r.load(), 0);
        r.store(7);
        assert_eq!(r.load(), 7);
    }

    #[test]
    fn concurrent_advance_moves_epoch_exactly_once_per_value() {
        use std::sync::Arc;
        use std::thread;
        let g = Arc::new(GlobalEpoch::new());
        let winners: usize = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                thread::spawn(move || usize::from(g.try_advance(0)))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(winners, 1, "exactly one advance from 0 to 1 may succeed");
        assert_eq!(g.load(), 1);
    }

    #[test]
    fn cursor_confirms_small_registries_in_one_poll() {
        let cursor = EpochCursor::new();
        assert!(cursor.poll(0, 4, |_| CursorCheck::Confirmed));
    }

    #[test]
    fn cursor_skips_vacant_slots_for_free() {
        let cursor = EpochCursor::new();
        // 60 vacant slots around 4 confirmed ones: still one poll, because only
        // claimed slots consume the batch budget.
        assert!(cursor.poll(0, 64, |i| if i % 16 == 0 {
            CursorCheck::Confirmed
        } else {
            CursorCheck::Vacant
        }));
    }

    #[test]
    fn cursor_jumps_vacant_runs_without_touching_their_slots() {
        let cursor = EpochCursor::new();
        use std::cell::Cell;
        let checks = Cell::new(0);
        // 256 slots, only 252..256 claimed: a shard-granular vacancy test jumps
        // the first 252 in one check, so the whole pass costs 5 checks.
        assert!(cursor.poll(0, 256, |i| {
            checks.set(checks.get() + 1);
            if i < 252 {
                CursorCheck::VacantRun(252)
            } else {
                CursorCheck::Confirmed
            }
        }));
        assert_eq!(checks.get(), 5, "one jump + four confirmations");
    }

    #[test]
    fn cursor_clamps_backwards_vacant_runs_to_forward_progress() {
        let cursor = EpochCursor::new();
        // A check that always reports a stale jump target must still terminate.
        assert!(cursor.poll(0, 16, |_| CursorCheck::VacantRun(0)));
    }

    #[test]
    fn cursor_spreads_a_full_registry_over_batched_polls() {
        let cursor = EpochCursor::new();
        let capacity = 4 * CURSOR_BATCH;
        let mut polls = 0;
        while !cursor.poll(0, capacity, |_| CursorCheck::Confirmed) {
            polls += 1;
            assert!(polls <= capacity, "cursor failed to make progress");
        }
        assert_eq!(polls, 3, "32 claimed slots need ceil(32/8) - 1 extra polls");
    }

    #[test]
    fn cursor_stops_at_a_lagging_slot_and_resumes() {
        let cursor = EpochCursor::new();
        let mut lagging = true;
        // Slot 2 lags: the pass cannot complete …
        for _ in 0..4 {
            assert!(!cursor.poll(0, 4, |i| if i == 2 && lagging {
                CursorCheck::Lagging
            } else {
                CursorCheck::Confirmed
            }));
        }
        // … until it catches up; progress up to slot 2 was remembered.
        lagging = false;
        assert!(cursor.poll(0, 4, |i| if i == 2 && lagging {
            CursorCheck::Lagging
        } else {
            CursorCheck::Confirmed
        }));
    }

    #[test]
    fn cursor_ignores_stale_epoch_pollers() {
        let cursor = EpochCursor::new();
        let capacity = 3 * CURSOR_BATCH;
        // Build partial progress for epoch 1.
        assert!(!cursor.poll(1, capacity, |_| CursorCheck::Confirmed));
        // A poller still holding a stale epoch value must not wipe that progress.
        assert!(!cursor.poll(0, capacity, |_| CursorCheck::Confirmed));
        // The live pass resumes where it left off: exactly two more polls finish.
        assert!(!cursor.poll(1, capacity, |_| CursorCheck::Confirmed));
        assert!(cursor.poll(1, capacity, |_| CursorCheck::Confirmed));
    }

    #[test]
    fn cursor_restarts_when_the_epoch_moves() {
        let cursor = EpochCursor::new();
        // Partial pass at epoch 0 over a large registry (needs > 1 poll).
        let capacity = 3 * CURSOR_BATCH;
        assert!(!cursor.poll(0, capacity, |_| CursorCheck::Confirmed));
        // A new epoch restarts from position 0: completing it takes a full set of
        // polls again.
        let mut polls = 1;
        while !cursor.poll(1, capacity, |_| CursorCheck::Confirmed) {
            polls += 1;
            assert!(polls <= capacity);
        }
        assert_eq!(polls, 3);
    }
}
